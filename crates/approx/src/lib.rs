//! `reason-approx` — neural-guided approximate inference with anytime
//! bounds.
//!
//! The REASON paper accelerates *exact* probabilistic-logical kernels
//! (WMC over compiled circuits, CDCL search); its related work flags
//! the complementary direction this crate reproduces: trading exactness
//! for scale. Two lines of work anchor the design (both in PAPERS.md):
//!
//! * **A-NeSI** (van Krieken et al.) — approximate weighted model
//!   counting by sampling, plus a *prediction network* trained on
//!   exact-engine labels that amortizes repeated queries.
//! * **Guided logical inference** (Valentin et al.) — a learned proxy
//!   steers the symbolic search while the solver keeps soundness.
//!
//! The crate sits strictly *between* the exact substrates: everything
//! here is validated against `reason_pc::compile_cnf` (exact WMC) and
//! `reason_sat::weighted_count` (enumeration) on tractable instances,
//! then scales past them on instances where exact compilation blows up.
//!
//! # Layout
//!
//! * [`bounds`] — anytime confidence brackets and convergence traces;
//!   every estimator reports through them.
//! * [`montecarlo`] — seeded direct sampling: WMC by assignment
//!   sampling, circuit marginals by forward/ancestral sampling.
//! * [`importance`] — defensive importance sampling with learned
//!   proposals: mean-field or mixture-of-mean-fields, adapted by
//!   cross-entropy EM or read off the exact engine's marginals.
//! * [`prediction`] — the A-NeSI-style prediction network, trained on
//!   exact-engine queries and frozen into a `reason_neural` MLP.
//! * [`guided`] — proxy-scored CDCL branching through `reason_sat`'s
//!   pluggable [`reason_sat::BranchingHeuristic`] trait.
//!
//! [`ApproxEngine`] bundles the estimators behind one seeded
//! configuration; `reason_system::BatchExecutor` runs it as a symbolic
//! lane, and `reason-eval approx` sweeps it against the exact engine.
//!
//! # Example
//!
//! ```
//! use reason_approx::{ApproxConfig, ApproxEngine};
//! use reason_pc::{compile_cnf, Evidence, WmcWeights};
//! use reason_sat::gen::random_ksat;
//!
//! let cnf = random_ksat(12, 34, 3, 7);
//! let weights = WmcWeights::uniform(12);
//!
//! // Exact weighted model count via knowledge compilation...
//! let circuit = compile_cnf(&cnf, &weights).unwrap();
//! let exact = circuit.probability(&Evidence::empty(12));
//!
//! // ...and the anytime approximation: the bracket contains the exact
//! // answer and the estimate lands within a few percent.
//! let est = ApproxEngine::new(ApproxConfig::default()).wmc(&cnf, &weights);
//! assert!(est.lower <= exact && exact <= est.upper);
//! assert!(est.rel_error(exact) < 0.05);
//! ```

pub mod bounds;
pub mod guided;
pub mod importance;
pub mod montecarlo;
pub mod prediction;

pub use bounds::{AnytimeEstimate, BoundsPoint, ConvergenceTrace, RunningMean, DEFAULT_Z};
pub use guided::{solve_guided, ProxyBranching};
pub use importance::{
    adapt_mixture, adapt_proposal, is_wmc, is_wmc_mixture, AdaptConfig, MixtureProposal, Proposal,
    DEFENSIVE_ALPHA, PROPOSAL_CLAMP,
};
pub use montecarlo::{mc_circuit_marginal, mc_wmc, SampleConfig};
pub use prediction::{PredictConfig, PredictionNet};

use rand::prelude::*;
use reason_pc::WmcWeights;
use reason_sat::Cnf;

/// Which estimator an [`ApproxEngine`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Direct Monte-Carlo sampling from the weight distribution.
    MonteCarlo,
    /// Importance sampling with a cross-entropy-adapted proposal.
    Importance,
}

impl Method {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::MonteCarlo => "monte-carlo",
            Method::Importance => "importance",
        }
    }
}

/// Configuration of an [`ApproxEngine`]: estimator choice, sampling
/// budget, adaptation schedule, and the seed that makes every run
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// The estimator.
    pub method: Method,
    /// Sampling budget and checkpointing.
    pub sampling: SampleConfig,
    /// Proposal adaptation schedule (importance method only).
    pub adapt: AdaptConfig,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            method: Method::Importance,
            sampling: SampleConfig::default(),
            adapt: AdaptConfig::default(),
        }
    }
}

impl ApproxConfig {
    /// The default configuration with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        ApproxConfig { sampling: SampleConfig::seeded(seed), ..ApproxConfig::default() }
    }
}

/// The approximate-inference engine: one configuration, one `wmc` call
/// per query, deterministic per seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxEngine {
    config: ApproxConfig,
}

impl ApproxEngine {
    /// An engine with the given configuration.
    pub fn new(config: ApproxConfig) -> Self {
        ApproxEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ApproxConfig {
        &self.config
    }

    /// Estimates the weighted model count of `cnf` under `weights` with
    /// anytime bounds. The importance method first learns a mixture
    /// proposal by cross-entropy EM (seeded from the sampling seed),
    /// then estimates under the defensive mixture; the Monte-Carlo
    /// method samples the weights directly.
    pub fn wmc(&self, cnf: &Cnf, weights: &WmcWeights) -> AnytimeEstimate {
        self.wmc_with_proposal(cnf, weights).0
    }

    /// [`ApproxEngine::wmc`], also returning the learned proposal (when
    /// the method uses one) so callers can reuse it — e.g. as guided
    /// branching scores ([`ProxyBranching::from_mixture`]).
    pub fn wmc_with_proposal(
        &self,
        cnf: &Cnf,
        weights: &WmcWeights,
    ) -> (AnytimeEstimate, Option<MixtureProposal>) {
        match self.config.method {
            Method::MonteCarlo => (mc_wmc(cnf, weights, &self.config.sampling), None),
            Method::Importance => {
                // Adaptation draws from its own stream so the estimation
                // stream stays aligned with `SampleConfig::seed`.
                let mut rng = StdRng::seed_from_u64(self.config.sampling.seed ^ 0x5EED_ADA9);
                let mix = adapt_mixture(cnf, weights, &self.config.adapt, &mut rng);
                let est = is_wmc_mixture(cnf, weights, &mix, &self.config.sampling);
                (est, Some(mix))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_sat::gen::random_ksat;
    use reason_sat::weighted_count;

    #[test]
    fn both_methods_bracket_exact_on_tractable_seeds() {
        for seed in 0..4 {
            let cnf = random_ksat(11, 30, 3, 40 + seed);
            let probs: Vec<f64> = (0..11).map(|v| 0.3 + 0.04 * v as f64).collect();
            let exact = weighted_count(&cnf, &probs);
            let w = WmcWeights::new(probs);
            for method in [Method::MonteCarlo, Method::Importance] {
                let cfg = ApproxConfig { method, ..ApproxConfig::seeded(seed) };
                let est = ApproxEngine::new(cfg).wmc(&cnf, &w);
                assert!(
                    est.contains(exact),
                    "{} seed {seed}: [{}, {}] vs {exact}",
                    method.name(),
                    est.lower,
                    est.upper
                );
            }
        }
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let cnf = random_ksat(10, 28, 3, 3);
        let w = WmcWeights::uniform(10);
        let engine = ApproxEngine::new(ApproxConfig::seeded(11));
        let a = engine.wmc(&cnf, &w);
        let b = engine.wmc(&cnf, &w);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.lower, b.lower);
        assert_eq!(a.upper, b.upper);
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(Method::MonteCarlo.name(), "monte-carlo");
        assert_eq!(Method::Importance.name(), "importance");
    }
}
