//! Anytime confidence bounds and convergence tracking.
//!
//! Every estimator in this crate produces a stream of i.i.d. sample
//! values whose expectation is the quantity of interest (a probability:
//! a weighted model count, a marginal, a conditional). [`RunningMean`]
//! accumulates the stream with Welford's algorithm; at configurable
//! checkpoints the estimator records a [`BoundsPoint`] — the running
//! estimate bracketed by a `z·SE` envelope plus a `1/n` cushion that
//! keeps zero-variance prefixes (e.g. no satisfying sample seen yet)
//! from collapsing to a false-certainty interval. The resulting
//! [`ConvergenceTrace`] is the *anytime* contract: stop at any
//! checkpoint and the current bracket is a valid confidence interval
//! for the target.
//!
//! Bounds are clamped to `[0, 1]` — everything estimated in this crate
//! is a probability.

/// Streaming mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMean {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one sample value.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples absorbed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The running sample mean (0 before any sample).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean, `sqrt(var / n)`.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }
}

/// One checkpoint of an anytime estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsPoint {
    /// Samples consumed when the checkpoint was taken.
    pub samples: u64,
    /// The running estimate.
    pub estimate: f64,
    /// Lower confidence bound (clamped to 0).
    pub lower: f64,
    /// Upper confidence bound (clamped to 1).
    pub upper: f64,
}

impl BoundsPoint {
    /// Interval width relative to the estimate (infinite at estimate 0).
    pub fn rel_width(&self) -> f64 {
        if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            (self.upper - self.lower) / self.estimate
        }
    }
}

/// The checkpoint history of one estimator run.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTrace {
    points: Vec<BoundsPoint>,
}

impl ConvergenceTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a checkpoint from the accumulator state: estimate
    /// `mean ± (z·SE + 1/n)`, everything clamped to `[0, 1]`.
    ///
    /// The estimate itself is clamped too: importance-sampling sample
    /// values are capped likelihood ratios in `[0, 1/α]`, so a running
    /// mean can transiently exceed 1 on high-mass formulas — without
    /// the clamp such a checkpoint would invert the bracket
    /// (`upper < estimate`) and break the anytime contract.
    pub fn record(&mut self, stats: &RunningMean, z: f64) {
        let n = stats.count().max(1) as f64;
        let envelope = z * stats.std_error() + 1.0 / n;
        let estimate = stats.mean().clamp(0.0, 1.0);
        self.points.push(BoundsPoint {
            samples: stats.count(),
            estimate,
            lower: (stats.mean() - envelope).clamp(0.0, estimate),
            upper: (stats.mean() + envelope).clamp(estimate, 1.0),
        });
    }

    /// All checkpoints, in sample order.
    pub fn points(&self) -> &[BoundsPoint] {
        &self.points
    }

    /// The latest checkpoint, if any.
    pub fn last(&self) -> Option<&BoundsPoint> {
        self.points.last()
    }

    /// The first checkpoint whose relative interval width falls at or
    /// below `tol`, as `(index, point)` — the estimator's convergence
    /// time at that tolerance.
    pub fn converged_at(&self, tol: f64) -> Option<(usize, &BoundsPoint)> {
        self.points.iter().enumerate().find(|(_, p)| p.rel_width() <= tol)
    }
}

/// The final product of an anytime estimator: a point estimate, its
/// confidence bracket, and the full convergence history.
#[derive(Debug, Clone)]
pub struct AnytimeEstimate {
    /// The point estimate (sample mean at the final checkpoint).
    pub estimate: f64,
    /// Final lower confidence bound.
    pub lower: f64,
    /// Final upper confidence bound.
    pub upper: f64,
    /// Total samples consumed.
    pub samples: u64,
    /// Checkpoint history.
    pub trace: ConvergenceTrace,
}

impl AnytimeEstimate {
    /// Builds the estimate from a finished accumulator and its trace
    /// (the final checkpoint must already be recorded).
    pub fn from_trace(trace: ConvergenceTrace) -> Self {
        let last = *trace.last().expect("trace must contain at least one checkpoint");
        AnytimeEstimate {
            estimate: last.estimate,
            lower: last.lower,
            upper: last.upper,
            samples: last.samples,
            trace,
        }
    }

    /// `true` if the final bracket contains `truth`.
    pub fn contains(&self, truth: f64) -> bool {
        (self.lower..=self.upper).contains(&truth)
    }

    /// Relative error against a known exact value (absolute error when
    /// the exact value is 0).
    pub fn rel_error(&self, exact: f64) -> f64 {
        if exact == 0.0 {
            self.estimate.abs()
        } else {
            (self.estimate - exact).abs() / exact
        }
    }
}

/// The default confidence multiplier: a 4-sigma envelope, wide enough
/// that seeded test runs keep the exact answer inside the bracket.
pub const DEFAULT_Z: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [0.2, 0.8, 0.5, 0.1, 0.9, 0.4];
        let mut rm = RunningMean::new();
        for &x in &xs {
            rm.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((rm.mean() - mean).abs() < 1e-12);
        assert!((rm.variance() - var).abs() < 1e-12);
        assert_eq!(rm.count(), 6);
    }

    #[test]
    fn degenerate_accumulators_are_safe() {
        let rm = RunningMean::new();
        assert_eq!(rm.mean(), 0.0);
        assert_eq!(rm.variance(), 0.0);
        assert_eq!(rm.std_error(), 0.0);
        let mut one = RunningMean::new();
        one.push(0.7);
        assert_eq!(one.variance(), 0.0);
    }

    #[test]
    fn bounds_bracket_the_mean_and_stay_in_unit_interval() {
        let mut rm = RunningMean::new();
        let mut trace = ConvergenceTrace::new();
        for i in 0..100 {
            rm.push(if i % 3 == 0 { 1.0 } else { 0.0 });
            if (i + 1) % 25 == 0 {
                trace.record(&rm, DEFAULT_Z);
            }
        }
        for p in trace.points() {
            assert!(p.lower <= p.estimate && p.estimate <= p.upper);
            assert!((0.0..=1.0).contains(&p.lower) && (0.0..=1.0).contains(&p.upper));
        }
        let est = AnytimeEstimate::from_trace(trace);
        assert_eq!(est.samples, 100);
        assert!(est.contains(1.0 / 3.0));
    }

    #[test]
    fn over_unit_means_keep_the_bracket_ordered() {
        // Capped importance weights can push a running mean past 1; the
        // recorded checkpoint must stay a valid [0,1] bracket around a
        // clamped estimate.
        let mut rm = RunningMean::new();
        for _ in 0..20 {
            rm.push(1.3);
        }
        let mut trace = ConvergenceTrace::new();
        trace.record(&rm, DEFAULT_Z);
        let p = trace.last().unwrap();
        assert_eq!(p.estimate, 1.0);
        assert!(p.lower <= p.estimate && p.estimate <= p.upper);
        assert!((0.0..=1.0).contains(&p.lower) && (0.0..=1.0).contains(&p.upper));
    }

    #[test]
    fn zero_variance_prefix_keeps_honest_upper_bound() {
        // 50 straight zeros: SE is 0, but the 1/n cushion keeps the
        // upper bound open.
        let mut rm = RunningMean::new();
        for _ in 0..50 {
            rm.push(0.0);
        }
        let mut trace = ConvergenceTrace::new();
        trace.record(&rm, DEFAULT_Z);
        let p = trace.last().unwrap();
        assert_eq!(p.estimate, 0.0);
        assert!(p.upper >= 0.02, "upper bound must not collapse: {}", p.upper);
    }

    #[test]
    fn convergence_detection_walks_the_trace() {
        let mut rm = RunningMean::new();
        let mut trace = ConvergenceTrace::new();
        for i in 0..4000 {
            rm.push(if i % 2 == 0 { 1.0 } else { 0.0 });
            if (i + 1) % 500 == 0 {
                trace.record(&rm, DEFAULT_Z);
            }
        }
        let (idx, p) = trace.converged_at(0.2).expect("must converge at 20% width");
        assert!(p.rel_width() <= 0.2);
        // Earlier checkpoints were wider.
        for earlier in &trace.points()[..idx] {
            assert!(earlier.rel_width() > 0.2);
        }
    }

    #[test]
    fn rel_error_handles_zero_exact() {
        let mut rm = RunningMean::new();
        rm.push(0.5);
        rm.push(0.5);
        let mut trace = ConvergenceTrace::new();
        trace.record(&rm, DEFAULT_Z);
        let est = AnytimeEstimate::from_trace(trace);
        assert!((est.rel_error(0.5) - 0.0).abs() < 1e-12);
        assert_eq!(est.rel_error(0.0), 0.5);
    }
}
