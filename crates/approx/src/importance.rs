//! Importance sampling with learned proposals.
//!
//! The variance of direct Monte-Carlo WMC ([`crate::montecarlo`]) is
//! `Z(1-Z)/n` — hopeless when the satisfying mass `Z` is small. The
//! importance sampler draws from a *proposal* `q` (a fully-factored
//! product of per-variable Bernoullis, the mean-field family A-NeSI's
//! prediction networks also output) and averages the likelihood ratio
//! `1[φ(x)] · p(x)/q(x)`, which is unbiased for `Z` under any proposal
//! with full support.
//!
//! Proposals can be *learned* three ways, in increasing order of
//! external machinery:
//!
//! 1. [`adapt_proposal`] — self-normalized cross-entropy adaptation:
//!    iterate sampling and refit `q` to the weighted satisfying
//!    samples. No oracle needed; this is the default inside
//!    [`crate::ApproxEngine`].
//! 2. [`Proposal::from_circuit`] — exact posterior marginals read off a
//!    compiled circuit: the best mean-field proposal the exact engine
//!    can teach, used to validate the adaptive path.
//! 3. [`crate::prediction`] — an MLP trained on exact-engine queries
//!    whose outputs are converted to per-variable scores
//!    ([`crate::guided`]) and proposals.

use rand::prelude::*;
use reason_pc::{Circuit, Evidence, WmcWeights};
use reason_sat::Cnf;

use crate::bounds::AnytimeEstimate;
use crate::montecarlo::{run_estimator, SampleConfig};

/// Default clamp keeping proposal probabilities away from 0/1 so
/// likelihood ratios stay bounded and every assignment keeps support.
pub const PROPOSAL_CLAMP: f64 = 0.02;

/// A fully-factored proposal distribution: independent per-variable
/// Bernoulli probabilities `q[v] = q(X_v = 1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    q: Vec<f64>,
}

impl Proposal {
    /// A proposal from explicit marginals, clamped to
    /// `[PROPOSAL_CLAMP, 1 - PROPOSAL_CLAMP]`.
    pub fn from_marginals(marginals: Vec<f64>) -> Self {
        assert!(marginals.iter().all(|p| p.is_finite()), "marginals must be finite");
        Proposal {
            q: marginals
                .into_iter()
                .map(|p| p.clamp(PROPOSAL_CLAMP, 1.0 - PROPOSAL_CLAMP))
                .collect(),
        }
    }

    /// The identity proposal `q = p`: importance sampling with it
    /// degenerates to direct Monte-Carlo.
    pub fn from_weights(weights: &WmcWeights) -> Self {
        Proposal::from_marginals((0..weights.len()).map(|v| weights.prob(v)).collect())
    }

    /// The mean-field posterior: exact per-variable marginals
    /// `p(X_v = 1 | φ)` computed on a compiled circuit — the proposal
    /// the exact engine teaches.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let empty = Evidence::empty(circuit.num_vars());
        Proposal::from_marginals(
            (0..circuit.num_vars()).map(|v| circuit.marginal(&empty, v)[1]).collect(),
        )
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// `true` when the proposal covers no variables.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// `q(X_v = 1)`.
    pub fn prob(&self, v: usize) -> f64 {
        self.q[v]
    }

    /// Draws one assignment into `model`.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, model: &mut [bool]) {
        assert_eq!(model.len(), self.q.len(), "model arity mismatch");
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = rng.gen_bool(self.q[v]);
        }
    }

    /// Log likelihood ratio `log p(x) - log q(x)` of an assignment.
    pub fn log_ratio(&self, x: &[bool], weights: &WmcWeights) -> f64 {
        assert_eq!(x.len(), self.q.len(), "assignment arity mismatch");
        let mut lr = 0.0;
        for (v, &b) in x.iter().enumerate() {
            let (p, q) = (weights.prob(v), self.q[v]);
            let (pn, qn) = if b { (p, q) } else { (1.0 - p, 1.0 - q) };
            // q is clamped away from 0; p may be exactly 0 (impossible
            // assignment), which correctly yields -inf.
            lr += pn.ln() - qn.ln();
        }
        lr
    }
}

/// A mixture of mean-field components: `q(x) = Σ_k π_k q_k(x)`.
///
/// A single mean-field proposal cannot represent a multi-modal
/// posterior (e.g. a formula satisfied by two clusters of assignments
/// with opposite polarities); the mixture family can place one
/// component per mode. [`adapt_mixture`] learns both the components and
/// the mixing weights by cross-entropy EM.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureProposal {
    pi: Vec<f64>,
    comps: Vec<Proposal>,
}

impl MixtureProposal {
    /// A one-component mixture (degenerates to the plain proposal).
    pub fn single(proposal: Proposal) -> Self {
        MixtureProposal { pi: vec![1.0], comps: vec![proposal] }
    }

    /// A mixture from explicit components and unnormalized mixing
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, no component is given, component
    /// arities differ, or the mixing mass is not positive.
    pub fn new(pi: Vec<f64>, comps: Vec<Proposal>) -> Self {
        assert!(!comps.is_empty(), "mixture needs at least one component");
        assert_eq!(pi.len(), comps.len(), "mixing weight arity mismatch");
        assert!(comps.iter().all(|c| c.len() == comps[0].len()), "component arity mismatch");
        let total: f64 = pi.iter().sum();
        assert!(total > 0.0 && pi.iter().all(|p| *p >= 0.0), "mixing weights must be positive");
        MixtureProposal { pi: pi.into_iter().map(|p| p / total).collect(), comps }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.comps[0].len()
    }

    /// `true` when the mixture covers no variables.
    pub fn is_empty(&self) -> bool {
        self.comps[0].is_empty()
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.comps.len()
    }

    /// Draws one assignment: pick a component by mixing weight, then
    /// sample its Bernoullis.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, model: &mut [bool]) {
        let k = rand::dist::sample_categorical(rng, &self.pi);
        self.comps[k].sample_into(rng, model);
    }

    /// Log-density of an assignment under the mixture.
    pub fn log_pdf(&self, x: &[bool]) -> f64 {
        let mut acc = f64::NEG_INFINITY;
        for (pi, comp) in self.pi.iter().zip(&self.comps) {
            acc = log_add_exp(acc, pi.ln() + log_pdf(x, |v| comp.prob(v)));
        }
        acc
    }

    /// The mixture's per-variable marginals `Σ_k π_k q_k(v)` — the
    /// scores guided branching consumes.
    pub fn marginals(&self) -> Vec<f64> {
        (0..self.len())
            .map(|v| self.pi.iter().zip(&self.comps).map(|(pi, c)| pi * c.prob(v)).sum())
            .collect()
    }
}

/// Cross-entropy adaptation schedule for [`adapt_proposal`] /
/// [`adapt_mixture`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptConfig {
    /// Adaptation rounds.
    pub rounds: usize,
    /// Samples drawn per round.
    pub batch: u64,
    /// Step size toward the refit marginals in `(0, 1]`.
    pub step: f64,
    /// Mixture components learned by [`adapt_mixture`] (1 = plain
    /// mean-field cross-entropy).
    pub components: usize,
    /// Bootstrap the mixture components from CDCL-enumerated models
    /// (blocking-clause enumeration) before cross-entropy refinement.
    /// Essential when the satisfying mass is tiny: random sampling may
    /// never find the modes the solver walks straight to.
    pub seed_with_models: bool,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig { rounds: 10, batch: 1024, step: 0.7, components: 8, seed_with_models: true }
    }
}

/// How far model-seeded components lean toward their model: component
/// marginals start at `blend·model + (1-blend)·prior`.
const MODEL_SEED_BLEND: f64 = 0.75;

/// Enumerates up to `k` distinct models of `cnf` by iterated CDCL
/// solving with blocking clauses — the symbolic engine teaching the
/// sampler where the satisfying mass lives.
fn enumerate_models(cnf: &Cnf, k: usize) -> Vec<Vec<bool>> {
    let mut working = cnf.clone();
    let mut models = Vec::with_capacity(k);
    for _ in 0..k {
        let mut solver = reason_sat::CdclSolver::new(&working);
        match solver.solve() {
            reason_sat::Solution::Sat(model) => {
                // Block this exact model before asking for the next one.
                working.add_clause(
                    model
                        .iter()
                        .enumerate()
                        .map(|(v, &b)| {
                            let var = reason_sat::Var::new(v);
                            if b {
                                var.neg()
                            } else {
                                var.pos()
                            }
                        })
                        .collect(),
                );
                models.push(model);
            }
            reason_sat::Solution::Unsat => break,
        }
    }
    models
}

/// Learns a mean-field proposal by cross-entropy iteration — the
/// single-component case of [`adapt_mixture`], sharing its round logic
/// (`ce_em_round`): each round draws a batch from the *defensive
/// mixture* `α·p + (1-α)·q` (so a collapsed proposal can always
/// rediscover satisfying modes through the prior component),
/// self-normalizes the satisfying samples by their importance weight
/// `p/mix`, and moves each `q[v]` toward the weighted mean of `x_v`
/// among them. Rounds that see no satisfying sample leave the proposal
/// unchanged.
///
/// Starting point is the identity proposal `q = p`, so on formulas with
/// large satisfying mass adaptation is a no-op by construction.
pub fn adapt_proposal<R: Rng + ?Sized>(
    cnf: &Cnf,
    weights: &WmcWeights,
    cfg: &AdaptConfig,
    rng: &mut R,
) -> Proposal {
    assert!(cfg.rounds > 0 && cfg.batch > 0, "adaptation schedule must be positive");
    assert!((0.0..=1.0).contains(&cfg.step) && cfg.step > 0.0, "step must be in (0, 1]");
    let mut mix = MixtureProposal::single(Proposal::from_weights(weights));
    for _ in 0..cfg.rounds {
        mix = ce_em_round(cnf, weights, mix, cfg.batch, cfg.step, rng);
    }
    mix.comps.into_iter().next().expect("single-component mixture")
}

/// Learns a [`MixtureProposal`] by cross-entropy EM
/// (`ce_em_round` per round).
///
/// Components are anchored at distinct CDCL-enumerated models when
/// [`AdaptConfig::seed_with_models`] is set (without this, tiny
/// satisfying mass can hide every mode from sampling); remaining — or
/// all, when disabled — components start as jittered copies of the
/// prior, since identical components would receive identical
/// responsibilities forever.
pub fn adapt_mixture<R: Rng + ?Sized>(
    cnf: &Cnf,
    weights: &WmcWeights,
    cfg: &AdaptConfig,
    rng: &mut R,
) -> MixtureProposal {
    assert!(cfg.rounds > 0 && cfg.batch > 0, "adaptation schedule must be positive");
    assert!((0.0..=1.0).contains(&cfg.step) && cfg.step > 0.0, "step must be in (0, 1]");
    assert!(cfg.components > 0, "need at least one mixture component");
    let n = cnf.num_vars();
    let k = cfg.components;

    let seeds: Vec<Vec<bool>> =
        if cfg.seed_with_models { enumerate_models(cnf, k) } else { Vec::new() };
    let comps: Vec<Proposal> = (0..k)
        .map(|c| {
            Proposal::from_marginals(
                (0..n)
                    .map(|v| match seeds.get(c) {
                        Some(model) => {
                            let target = f64::from(u8::from(model[v]));
                            MODEL_SEED_BLEND * target + (1.0 - MODEL_SEED_BLEND) * weights.prob(v)
                        }
                        None => weights.prob(v) + rng.gen_range(-0.15..0.15),
                    })
                    .collect(),
            )
        })
        .collect();
    let mut mix = MixtureProposal::new(vec![1.0; k], comps);
    for _ in 0..cfg.rounds {
        mix = ce_em_round(cnf, weights, mix, cfg.batch, cfg.step, rng);
    }
    mix
}

/// One cross-entropy EM round: draw `batch` samples from the defensive
/// mixture, importance-weight the satisfying ones by `p/mix`
/// ([`defensive_weight`]), soft-assign each to the mixture components
/// (E-step: responsibilities `∝ π_k q_k(x)`), and refit every
/// component's marginals and mixing weight from its weighted samples
/// (M-step, smoothed by `step`). Returns the mixture unchanged when no
/// satisfying sample appears.
fn ce_em_round<R: Rng + ?Sized>(
    cnf: &Cnf,
    weights: &WmcWeights,
    mix: MixtureProposal,
    batch: u64,
    step: f64,
    rng: &mut R,
) -> MixtureProposal {
    let n = cnf.num_vars();
    let k = mix.num_components();
    let mut model = vec![false; n];
    let mut sat_samples: Vec<(Vec<bool>, f64)> = Vec::new();
    for _ in 0..batch {
        defensive_sample_into(rng, weights, &mix, &mut model);
        if cnf.eval(&model) {
            let w = defensive_weight(&model, weights, &mix);
            sat_samples.push((model.clone(), w));
        }
    }
    if sat_samples.is_empty() {
        return mix;
    }

    // E-step: responsibilities r_ik ∝ π_k q_k(x_i).
    // M-step accumulators: per-component mass and weighted x means.
    let mut comp_mass = vec![0.0f64; k];
    let mut comp_mean = vec![vec![0.0f64; n]; k];
    for (x, w) in &sat_samples {
        let log_rs: Vec<f64> =
            (0..k).map(|c| mix.pi[c].ln() + log_pdf(x, |v| mix.comps[c].prob(v))).collect();
        let m = log_rs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let rs: Vec<f64> = log_rs.iter().map(|lr| (lr - m).exp()).collect();
        let total: f64 = rs.iter().sum();
        for c in 0..k {
            let r = w * rs[c] / total;
            comp_mass[c] += r;
            for (v, &b) in x.iter().enumerate() {
                if b {
                    comp_mean[c][v] += r;
                }
            }
        }
    }

    let round_mass: f64 = comp_mass.iter().sum();
    let new_comps: Vec<Proposal> = (0..k)
        .map(|c| {
            if comp_mass[c] <= 0.0 {
                return mix.comps[c].clone();
            }
            Proposal::from_marginals(
                (0..n)
                    .map(|v| {
                        let refit = comp_mean[c][v] / comp_mass[c];
                        (1.0 - step) * mix.comps[c].prob(v) + step * refit
                    })
                    .collect(),
            )
        })
        .collect();
    // Smoothed mixing weights; the floor keeps every component alive
    // so later rounds can recapture a lost mode.
    let new_pi: Vec<f64> = (0..k)
        .map(|c| {
            let refit = comp_mass[c] / round_mass;
            ((1.0 - step) * mix.pi[c] + step * refit).max(0.02)
        })
        .collect();
    MixtureProposal::new(new_pi, new_comps)
}

/// Defensive-mixture coefficient: the estimation distribution is
/// `α·p + (1-α)·q`, never the raw proposal. Mixing in the prior keeps
/// every likelihood ratio below `1/α`, so a proposal that missed a
/// satisfying mode cannot silently bias the estimate — the prior
/// component still visits the mode, and the empirical variance (hence
/// the anytime envelope) stays honest.
pub const DEFENSIVE_ALPHA: f64 = 0.25;

/// Numerically stable `log(exp(a) + exp(b))`.
fn log_add_exp(a: f64, b: f64) -> f64 {
    let m = a.max(b);
    if m == f64::NEG_INFINITY {
        f64::NEG_INFINITY
    } else {
        m + ((a - m).exp() + (b - m).exp()).ln()
    }
}

/// Log-density of an assignment under independent Bernoulli marginals.
fn log_pdf(x: &[bool], prob: impl Fn(usize) -> f64) -> f64 {
    x.iter().enumerate().map(|(v, &b)| if b { prob(v).ln() } else { (1.0 - prob(v)).ln() }).sum()
}

/// Draws one assignment from the defensive mixture `α·p + (1-α)·q`:
/// the prior stream w.p. [`DEFENSIVE_ALPHA`], the proposal otherwise.
fn defensive_sample_into<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &WmcWeights,
    proposal: &MixtureProposal,
    model: &mut [bool],
) {
    if rng.gen_bool(DEFENSIVE_ALPHA) {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = rng.gen_bool(weights.prob(v));
        }
    } else {
        proposal.sample_into(rng, model);
    }
}

/// The capped importance weight `p(x) / (α·p(x) + (1-α)·q(x))` of an
/// assignment (at most `1/α`); callers gate on satisfaction.
fn defensive_weight(x: &[bool], weights: &WmcWeights, proposal: &MixtureProposal) -> f64 {
    let lp = log_pdf(x, |v| weights.prob(v));
    let log_mix =
        log_add_exp(DEFENSIVE_ALPHA.ln() + lp, (1.0 - DEFENSIVE_ALPHA).ln() + proposal.log_pdf(x));
    (lp - log_mix).exp()
}

/// Importance-sampling WMC estimate under `proposal`, with anytime
/// bounds: draws from the defensive mixture `α·p + (1-α)·q`
/// ([`DEFENSIVE_ALPHA`]) and averages `1[φ(x)] · p(x) / mix(x)`, which
/// is unbiased for `Z` with likelihood ratios capped at `1/α`.
///
/// With the identity proposal (`q = p`) the mixture collapses to `p`
/// and the estimator degenerates to direct Monte-Carlo.
///
/// ```
/// use reason_approx::{is_wmc, Proposal, SampleConfig};
/// use reason_pc::WmcWeights;
/// use reason_sat::Cnf;
///
/// let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
/// let w = WmcWeights::uniform(2);
/// let est = is_wmc(&cnf, &w, &Proposal::from_weights(&w), &SampleConfig::default());
/// assert!(est.contains(0.75));
/// ```
pub fn is_wmc(
    cnf: &Cnf,
    weights: &WmcWeights,
    proposal: &Proposal,
    cfg: &SampleConfig,
) -> AnytimeEstimate {
    is_wmc_mixture(cnf, weights, &MixtureProposal::single(proposal.clone()), cfg)
}

/// [`is_wmc`] over a [`MixtureProposal`]: the estimation distribution
/// is `α·p + (1-α)·q` with `q` the learned mixture.
pub fn is_wmc_mixture(
    cnf: &Cnf,
    weights: &WmcWeights,
    proposal: &MixtureProposal,
    cfg: &SampleConfig,
) -> AnytimeEstimate {
    assert_eq!(weights.len(), cnf.num_vars(), "weights arity mismatch");
    assert_eq!(proposal.len(), cnf.num_vars(), "proposal arity mismatch");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = vec![false; cnf.num_vars()];
    run_estimator(cfg, || {
        defensive_sample_into(&mut rng, weights, proposal, &mut model);
        if cnf.eval(&model) {
            defensive_weight(&model, weights, proposal)
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_pc::compile_cnf;
    use reason_sat::gen::random_ksat;
    use reason_sat::weighted_count;

    fn variance_of(est: &AnytimeEstimate) -> f64 {
        let p = est.trace.last().unwrap();
        // Reconstruct SE from the recorded envelope: width/2 = z*SE + 1/n.
        let half = (p.upper - p.lower) / 2.0;
        (half - 1.0 / p.samples as f64).max(0.0)
    }

    #[test]
    fn identity_proposal_is_unbiased_on_seeded_instances() {
        for seed in 0..5 {
            let cnf = random_ksat(10, 26, 3, 200 + seed);
            let w = WmcWeights::uniform(10);
            let exact = weighted_count(&cnf, &[0.5; 10]);
            let est = is_wmc(&cnf, &w, &Proposal::from_weights(&w), &SampleConfig::seeded(seed));
            assert!(est.contains(exact), "seed {seed}: [{}, {}] vs {exact}", est.lower, est.upper);
        }
    }

    #[test]
    fn circuit_taught_proposal_cuts_variance_on_constrained_instances() {
        // A heavily constrained formula: Z is small, so direct MC wastes
        // most samples. The exact-engine proposal concentrates on the
        // satisfying region and must shrink the confidence envelope.
        let mut clauses = vec![vec![1], vec![2], vec![-1, 3], vec![-2, 4]];
        clauses.push(vec![5, 6]);
        let cnf = Cnf::from_clauses(6, clauses);
        let probs = vec![0.15, 0.2, 0.3, 0.25, 0.4, 0.35];
        let exact = weighted_count(&cnf, &probs);
        let w = WmcWeights::new(probs);
        let circuit = compile_cnf(&cnf, &w).unwrap();

        let cfg = SampleConfig::seeded(3);
        let naive = is_wmc(&cnf, &w, &Proposal::from_weights(&w), &cfg);
        let taught = is_wmc(&cnf, &w, &Proposal::from_circuit(&circuit), &cfg);
        assert!(taught.contains(exact));
        assert!(naive.contains(exact));
        assert!(
            variance_of(&taught) < variance_of(&naive) * 0.8,
            "taught envelope {} should beat naive {}",
            variance_of(&taught),
            variance_of(&naive)
        );
        assert!(taught.rel_error(exact) < 0.05);
    }

    #[test]
    fn adapted_mixture_brackets_exact_and_meets_error_budget() {
        // The acceptance-criterion workload: seeded tractable instances,
        // default budgets, learned mixture proposals — bounds must
        // contain the exact WMC and relative error must fall below 5%.
        for seed in 0..5 {
            let cnf = random_ksat(12, 30, 3, 300 + seed);
            let probs: Vec<f64> = (0..12).map(|v| 0.3 + 0.04 * v as f64).collect();
            let exact = weighted_count(&cnf, &probs);
            if exact == 0.0 {
                continue;
            }
            let w = WmcWeights::new(probs);
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let mix = adapt_mixture(&cnf, &w, &AdaptConfig::default(), &mut rng);
            let est = is_wmc_mixture(&cnf, &w, &mix, &SampleConfig::seeded(seed));
            assert!(est.contains(exact), "seed {seed}: [{}, {}] vs {exact}", est.lower, est.upper);
            assert!(
                est.rel_error(exact) < 0.05,
                "seed {seed}: rel error {} at estimate {} vs exact {exact}",
                est.rel_error(exact),
                est.estimate
            );
        }
    }

    #[test]
    fn mean_field_adaptation_still_brackets_exact() {
        // The single-component path stays available (and unbiased); its
        // error budget is looser than the mixture's on multi-modal
        // posteriors.
        for seed in 0..5 {
            let cnf = random_ksat(12, 30, 3, 300 + seed);
            let probs: Vec<f64> = (0..12).map(|v| 0.3 + 0.04 * v as f64).collect();
            let exact = weighted_count(&cnf, &probs);
            if exact == 0.0 {
                continue;
            }
            let w = WmcWeights::new(probs);
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let proposal = adapt_proposal(&cnf, &w, &AdaptConfig::default(), &mut rng);
            let est = is_wmc(&cnf, &w, &proposal, &SampleConfig::seeded(seed));
            assert!(est.contains(exact), "seed {seed}: [{}, {}] vs {exact}", est.lower, est.upper);
        }
    }

    #[test]
    fn mixture_machinery_is_consistent() {
        let w = WmcWeights::new(vec![0.3, 0.7, 0.5]);
        let single = MixtureProposal::single(Proposal::from_weights(&w));
        assert_eq!(single.num_components(), 1);
        // Single-component mixture pdf equals the component pdf.
        let x = [true, false, true];
        let comp = Proposal::from_weights(&w);
        assert!((single.log_pdf(&x) - log_pdf(&x, |v| comp.prob(v))).abs() < 1e-9);
        // Marginals of a two-component mixture are the convex blend.
        let mix = MixtureProposal::new(
            vec![1.0, 3.0],
            vec![
                Proposal::from_marginals(vec![0.2, 0.2, 0.2]),
                Proposal::from_marginals(vec![0.6, 0.6, 0.6]),
            ],
        );
        for &m in &mix.marginals() {
            assert!((m - (0.25 * 0.2 + 0.75 * 0.6)).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptation_survives_unsat_formulas() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1]]);
        let w = WmcWeights::uniform(2);
        let mut rng = StdRng::seed_from_u64(0);
        let proposal = adapt_proposal(&cnf, &w, &AdaptConfig::default(), &mut rng);
        // No satisfying sample ever appears: proposal stays at identity.
        assert_eq!(proposal, Proposal::from_weights(&w));
        let est = is_wmc(&cnf, &w, &proposal, &SampleConfig::default());
        assert_eq!(est.estimate, 0.0);
        assert!(est.upper > 0.0);
    }

    #[test]
    fn log_ratio_is_zero_for_identity_proposal() {
        let w = WmcWeights::new(vec![0.3, 0.6, 0.5]);
        let p = Proposal::from_weights(&w);
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|v| bits >> v & 1 == 1).collect();
            assert!(p.log_ratio(&x, &w).abs() < 1e-12);
        }
    }

    #[test]
    fn proposal_clamps_extreme_marginals() {
        let p = Proposal::from_marginals(vec![0.0, 1.0, 0.5]);
        assert_eq!(p.prob(0), PROPOSAL_CLAMP);
        assert_eq!(p.prob(1), 1.0 - PROPOSAL_CLAMP);
        assert_eq!(p.prob(2), 0.5);
    }
}
