//! Seeded Monte-Carlo estimators: direct sampling for weighted model
//! counts and ancestral sampling over `reason-pc` circuits.
//!
//! These are the baseline estimators the importance sampler
//! ([`crate::importance`]) is measured against: unbiased, trivially
//! correct, and exactly as slow as the variance of the indicator
//! demands. Both walk the shared anytime-bounds machinery of
//! [`crate::bounds`], so a Monte-Carlo run can be stopped at any
//! checkpoint with a valid confidence bracket.

use rand::prelude::*;
use reason_pc::{sample as circuit_sample, Circuit, WmcWeights};
use reason_sat::Cnf;

use crate::bounds::{AnytimeEstimate, ConvergenceTrace, RunningMean, DEFAULT_Z};

/// Sampling budget and determinism knobs shared by the estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleConfig {
    /// Total samples to draw.
    pub samples: u64,
    /// Checkpoint interval for the convergence trace.
    pub checkpoint: u64,
    /// RNG seed; equal seeds reproduce estimates bit-for-bit.
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig { samples: 16384, checkpoint: 512, seed: 0 }
    }
}

impl SampleConfig {
    /// The default budget with an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        SampleConfig { seed, ..SampleConfig::default() }
    }
}

/// Runs a generic indicator/weight stream through the anytime-bounds
/// machinery: `draw` produces one sample value per call.
pub(crate) fn run_estimator<F: FnMut() -> f64>(cfg: &SampleConfig, mut draw: F) -> AnytimeEstimate {
    assert!(cfg.samples > 0, "sample budget must be positive");
    let checkpoint = cfg.checkpoint.clamp(1, cfg.samples);
    let mut stats = RunningMean::new();
    let mut trace = ConvergenceTrace::new();
    for i in 0..cfg.samples {
        stats.push(draw());
        if (i + 1) % checkpoint == 0 {
            trace.record(&stats, DEFAULT_Z);
        }
    }
    if !cfg.samples.is_multiple_of(checkpoint) {
        trace.record(&stats, DEFAULT_Z);
    }
    AnytimeEstimate::from_trace(trace)
}

/// Estimates the weighted model count `Z = Pr_p[φ]` by direct sampling:
/// draw assignments from the weight distribution itself and average the
/// satisfaction indicator. Unbiased; variance `Z(1-Z)/n`.
///
/// ```
/// use reason_approx::{mc_wmc, SampleConfig};
/// use reason_pc::WmcWeights;
/// use reason_sat::Cnf;
///
/// // x0 | x1 under uniform weights: Z = 0.75.
/// let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
/// let est = mc_wmc(&cnf, &WmcWeights::uniform(2), &SampleConfig::default());
/// assert!(est.contains(0.75));
/// assert!((est.estimate - 0.75).abs() < 0.05);
/// ```
pub fn mc_wmc(cnf: &Cnf, weights: &WmcWeights, cfg: &SampleConfig) -> AnytimeEstimate {
    assert_eq!(weights.len(), cnf.num_vars(), "weights arity mismatch");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = vec![false; cnf.num_vars()];
    run_estimator(cfg, || {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = rng.gen_bool(weights.prob(v));
        }
        f64::from(u8::from(cnf.eval(&model)))
    })
}

/// Estimates `p(X_var = value)` under a circuit's distribution by
/// forward/ancestral sampling ([`reason_pc::sample()`]): the Monte-Carlo
/// counterpart of the circuit's exact linear-time marginal.
///
/// # Panics
///
/// Panics if `var` is out of range for the circuit.
pub fn mc_circuit_marginal(
    circuit: &Circuit,
    var: usize,
    value: usize,
    cfg: &SampleConfig,
) -> AnytimeEstimate {
    assert!(var < circuit.num_vars(), "variable out of range");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    run_estimator(cfg, || {
        let s = circuit_sample(circuit, &mut rng);
        f64::from(u8::from(s[var] == value))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_pc::{random_mixture_circuit, Evidence, StructureConfig};
    use reason_sat::gen::random_ksat;
    use reason_sat::weighted_count;

    #[test]
    fn mc_wmc_is_deterministic_per_seed() {
        let cnf = random_ksat(10, 26, 3, 5);
        let w = WmcWeights::uniform(10);
        let a = mc_wmc(&cnf, &w, &SampleConfig::seeded(9));
        let b = mc_wmc(&cnf, &w, &SampleConfig::seeded(9));
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.samples, b.samples);
        let c = mc_wmc(&cnf, &w, &SampleConfig::seeded(10));
        assert_ne!(a.estimate, c.estimate, "different seeds should differ");
    }

    #[test]
    fn mc_wmc_brackets_the_exact_count_on_seeded_instances() {
        for seed in 0..6 {
            let cnf = random_ksat(10, 24, 3, 100 + seed);
            let probs: Vec<f64> = (0..10).map(|v| 0.3 + 0.05 * v as f64).collect();
            let exact = weighted_count(&cnf, &probs);
            let w = WmcWeights::new(probs);
            let est = mc_wmc(&cnf, &w, &SampleConfig::seeded(seed));
            assert!(
                est.contains(exact),
                "seed {seed}: [{}, {}] misses exact {exact}",
                est.lower,
                est.upper
            );
        }
    }

    #[test]
    fn mc_wmc_handles_unsat_without_false_certainty() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1]]);
        let est = mc_wmc(&cnf, &WmcWeights::uniform(2), &SampleConfig::default());
        assert_eq!(est.estimate, 0.0);
        assert!(est.contains(0.0));
        assert!(est.upper > 0.0, "upper bound must stay open");
    }

    #[test]
    fn trace_tightens_with_more_samples() {
        let cnf = random_ksat(8, 20, 3, 77);
        let est = mc_wmc(&cnf, &WmcWeights::uniform(8), &SampleConfig::default());
        let pts = est.trace.points();
        assert!(pts.len() >= 10);
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(last.upper - last.lower < first.upper - first.lower);
    }

    #[test]
    fn ancestral_marginal_matches_exact_circuit_marginal() {
        let circuit = random_mixture_circuit(&StructureConfig {
            num_vars: 6,
            depth: 3,
            num_components: 2,
            seed: 4,
        });
        let exact = circuit.marginal(&Evidence::empty(6), 2)[1];
        let est = mc_circuit_marginal(&circuit, 2, 1, &SampleConfig::seeded(1));
        assert!(est.contains(exact), "[{}, {}] misses {exact}", est.lower, est.upper);
        assert!((est.estimate - exact).abs() < 0.05);
    }

    #[test]
    fn ancestral_marginal_checkpoint_count_matches_budget() {
        let circuit = random_mixture_circuit(&StructureConfig {
            num_vars: 4,
            depth: 2,
            num_components: 2,
            seed: 8,
        });
        let cfg = SampleConfig { samples: 1000, checkpoint: 300, seed: 0 };
        let est = mc_circuit_marginal(&circuit, 0, 1, &cfg);
        // 3 full checkpoints + 1 remainder checkpoint at n = 1000.
        assert_eq!(est.trace.points().len(), 4);
        assert_eq!(est.samples, 1000);
    }
}
