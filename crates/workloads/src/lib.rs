//! `reason-workloads` — the six neuro-symbolic workloads and ten datasets
//! of the REASON evaluation (paper Table I, Sec. VII-A).
//!
//! The paper's applications wrap production LLMs around symbolic and
//! probabilistic engines. Here each workload is modeled by (a) a *neural
//! proxy* describing the LLM-side work (token counts against
//! [`reason_neural::LlmProxy`]) and (b) the *real reasoning kernels* —
//! SAT solving, FOL proving, circuit marginals, constrained HMM decoding —
//! run exactly, on synthetic task generators with known ground truth so
//! reasoning accuracy is measurable (paper Table IV).
//!
//! | Workload | Paper system | Kernels | Datasets |
//! |---|---|---|---|
//! | [`models::alphageometry`] | AlphaGeometry \[15\] | FOL → grounding → SAT (cube-and-conquer) | IMO, MiniF2F |
//! | [`models::r2guard`] | R²-Guard \[22\] | rule CNF → compiled PC, WMC | TwinSafety, XSTest |
//! | [`models::gelato`] | GeLaTo \[29\] | HMM × keyword-DFA constrained generation | CommonGen, News |
//! | [`models::ctrlg`] | Ctrl-G \[23\] | HMM text infilling under DFA constraints | CoAuthor |
//! | [`models::neuropc`] | NeuroPC \[30\] | MLP features → PC classification | AwA2 |
//! | [`models::linc`] | LINC \[31\] | FOL resolution proving | FOLIO, ProofWriter |
//!
//! [`spec`] carries the dataset/scale/seed vocabulary; [`scaling`]
//! implements the Fig. 2 scaling analyses.
//!
//! Everything is seeded and synthetic-with-ground-truth by construction:
//! a [`TaskSpec`] fully determines a task, so experiments, benches, and
//! the threaded executor can regenerate identical batches anywhere.
//!
//! # Example
//!
//! ```
//! use reason_workloads::{model_for, Dataset, Scale, TaskSpec, Workload};
//!
//! let spec = TaskSpec::new(Dataset::TwinSafety, Scale::Small, 0);
//! assert_eq!(spec.dataset.workload(), Workload::R2Guard);
//! // Each workload model reports its symbolic kernel profiles…
//! assert!(!model_for(Workload::R2Guard).kernel_profiles(&spec).is_empty());
//! // …and its neural-side token counts.
//! let (prompt, output) = model_for(Workload::R2Guard).neural_tokens(&spec);
//! assert!(prompt > 0 && output > 0);
//! ```

pub mod models;
pub mod scaling;
pub mod spec;

pub use models::alphageometry::AlphaGeometry;
pub use models::ctrlg::CtrlG;
pub use models::gelato::GeLaTo;
pub use models::linc::Linc;
pub use models::neuropc::NeuroPc;
pub use models::r2guard::R2Guard;
pub use spec::{Dataset, Scale, TaskSpec, Workload};

use reason_sim::KernelProfile;

/// Result of running one task's reasoning with exact kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    /// Did the reasoning produce the ground-truth answer?
    pub correct: bool,
    /// Task-specific quality metric (accuracy contribution, BLEU proxy,
    /// success flag — the Table IV "Metrics" column).
    pub score: f64,
    /// Reasoning-kernel footprint in bytes (Table IV memory column).
    pub kernel_bytes: usize,
}

/// A workload model: generates tasks, solves them exactly, and describes
/// the per-task kernel mix for the baseline device models.
pub trait WorkloadModel {
    /// The workload this model implements.
    fn workload(&self) -> Workload;

    /// Solves one task with exact reasoning. `optimized` enables the
    /// REASON algorithm pipeline (pruning); Table IV compares both
    /// settings.
    fn run_task(&self, spec: &TaskSpec, optimized: bool) -> TaskResult;

    /// The symbolic/probabilistic kernel profiles of one task, consumed
    /// by the GPU/CPU/TPU/DPU baseline models.
    fn kernel_profiles(&self, spec: &TaskSpec) -> Vec<KernelProfile>;

    /// Neural-side work: (prompt tokens, generated tokens) per task for
    /// the LLM proxy.
    fn neural_tokens(&self, spec: &TaskSpec) -> (u64, u64);
}

/// The model implementing a given workload.
pub fn model_for(workload: Workload) -> Box<dyn WorkloadModel> {
    match workload {
        Workload::AlphaGeometry => Box::new(AlphaGeometry),
        Workload::R2Guard => Box::new(R2Guard),
        Workload::GeLaTo => Box::new(GeLaTo),
        Workload::CtrlG => Box::new(CtrlG),
        Workload::NeuroPc => Box::new(NeuroPc),
        Workload::Linc => Box::new(Linc),
    }
}

/// Mean score over a batch of tasks (accuracy / AUPRC proxy / success
/// rate, per workload semantics).
pub fn batch_score(model: &dyn WorkloadModel, specs: &[TaskSpec], optimized: bool) -> f64 {
    if specs.is_empty() {
        return 0.0;
    }
    specs.iter().map(|s| model.run_task(s, optimized).score).sum::<f64>() / specs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_model() {
        for w in Workload::all() {
            let m = model_for(w);
            assert_eq!(m.workload(), w);
        }
    }

    #[test]
    fn batch_score_empty_is_zero() {
        let m = model_for(Workload::R2Guard);
        assert_eq!(batch_score(m.as_ref(), &[], true), 0.0);
    }
}
