//! Datasets, scales, and task specifications (paper Sec. VII-A).

use std::fmt;

/// The ten evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// IMO geometry problems (AlphaGeometry).
    Imo,
    /// MiniF2F formal mathematics (AlphaGeometry).
    MiniF2F,
    /// TwinSafety unsafety detection (R²-Guard).
    TwinSafety,
    /// XSTest exaggerated-safety suite (R²-Guard).
    XsTest,
    /// CommonGen constrained generation (GeLaTo).
    CommonGen,
    /// News constrained generation (GeLaTo).
    News,
    /// CoAuthor interactive writing (Ctrl-G).
    CoAuthor,
    /// AwA2 attribute classification (NeuroPC).
    AwA2,
    /// FOLIO natural-language FOL reasoning (LINC).
    Folio,
    /// ProofWriter deductive reasoning (LINC).
    ProofWriter,
}

impl Dataset {
    /// All ten datasets, in the paper's column order (Fig. 11).
    pub fn all() -> [Dataset; 10] {
        [
            Dataset::Imo,
            Dataset::MiniF2F,
            Dataset::TwinSafety,
            Dataset::XsTest,
            Dataset::CommonGen,
            Dataset::News,
            Dataset::CoAuthor,
            Dataset::AwA2,
            Dataset::Folio,
            Dataset::ProofWriter,
        ]
    }

    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Imo => "IMO",
            Dataset::MiniF2F => "MiniF2F",
            Dataset::TwinSafety => "TwinS",
            Dataset::XsTest => "XSTest",
            Dataset::CommonGen => "ComGen",
            Dataset::News => "News",
            Dataset::CoAuthor => "CoAuthor",
            Dataset::AwA2 => "AwA2",
            Dataset::Folio => "FOLIO",
            Dataset::ProofWriter => "Proof",
        }
    }

    /// The workload evaluated on this dataset (paper Table IV rows).
    pub fn workload(self) -> Workload {
        match self {
            Dataset::Imo | Dataset::MiniF2F => Workload::AlphaGeometry,
            Dataset::TwinSafety | Dataset::XsTest => Workload::R2Guard,
            Dataset::CommonGen | Dataset::News => Workload::GeLaTo,
            Dataset::CoAuthor => Workload::CtrlG,
            Dataset::AwA2 => Workload::NeuroPc,
            Dataset::Folio | Dataset::ProofWriter => Workload::Linc,
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The six neuro-symbolic workloads (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Math theorem proving & reasoning.
    AlphaGeometry,
    /// Unsafety detection with probabilistic rule circuits.
    R2Guard,
    /// Constrained text generation.
    GeLaTo,
    /// Interactive text editing / infilling.
    CtrlG,
    /// Compositional classification through probabilistic circuits.
    NeuroPc,
    /// Logical/deductive reasoning with FOL provers.
    Linc,
}

impl Workload {
    /// All six workloads in the paper's order.
    pub fn all() -> [Workload; 6] {
        [
            Workload::AlphaGeometry,
            Workload::R2Guard,
            Workload::GeLaTo,
            Workload::CtrlG,
            Workload::NeuroPc,
            Workload::Linc,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::AlphaGeometry => "AlphaGeometry",
            Workload::R2Guard => "R2-Guard",
            Workload::GeLaTo => "GeLaTo",
            Workload::CtrlG => "Ctrl-G",
            Workload::NeuroPc => "NeuroPC",
            Workload::Linc => "LINC",
        }
    }

    /// Fraction of end-to-end runtime spent in symbolic/probabilistic
    /// kernels on a GPU platform (paper Fig. 3(a) measurements).
    pub fn symbolic_runtime_share(self) -> f64 {
        match self {
            Workload::AlphaGeometry => 0.638,
            Workload::R2Guard => 0.627,
            Workload::GeLaTo => 0.366,
            Workload::CtrlG => 0.639,
            Workload::NeuroPc => 0.505,
            Workload::Linc => 0.348,
        }
    }

    /// Reasoning-kernel invocations per task (the agentic loop length:
    /// deduction steps, guard queries, decode steps). Calibrated so the
    /// REASON accelerator completes a task's symbolic stage in the
    /// paper's sub-second regime.
    pub fn reasoning_steps(self) -> u64 {
        match self {
            Workload::AlphaGeometry => 25_000,
            Workload::R2Guard => 3_000,
            Workload::GeLaTo => 4_000,
            Workload::CtrlG => 3_500,
            Workload::NeuroPc => 2_500,
            Workload::Linc => 20_000,
        }
    }

    /// Measured sparsity of this workload's symbolic/probabilistic
    /// structures (paper Sec. III-B: 82–89%).
    pub fn sparsity(self) -> f64 {
        match self {
            Workload::AlphaGeometry => 0.82,
            Workload::R2Guard => 0.87,
            Workload::GeLaTo => 0.75,
            Workload::CtrlG => 0.83,
            Workload::NeuroPc => 0.89,
            Workload::Linc => 0.83,
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Task scale (paper Fig. 3(b) small/large splits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The small task split.
    Small,
    /// The large task split.
    Large,
}

impl Scale {
    /// Multiplier applied to the workload's structural size knobs.
    pub fn factor(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Large => 3,
        }
    }
}

/// One reasoning task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskSpec {
    /// The dataset this task is drawn from.
    pub dataset: Dataset,
    /// The task scale split.
    pub scale: Scale,
    /// Generator seed (task identity).
    pub seed: u64,
}

impl TaskSpec {
    /// A task from `dataset` at `scale` with generator `seed`.
    pub fn new(dataset: Dataset, scale: Scale, seed: u64) -> Self {
        TaskSpec { dataset, scale, seed }
    }

    /// A batch of `n` tasks with consecutive seeds.
    pub fn batch(dataset: Dataset, scale: Scale, n: usize) -> Vec<TaskSpec> {
        (0..n as u64).map(|seed| TaskSpec::new(dataset, scale, seed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_datasets_map_to_six_workloads() {
        let mut workloads: Vec<Workload> = Dataset::all().iter().map(|d| d.workload()).collect();
        workloads.sort_by_key(|w| w.name());
        workloads.dedup();
        assert_eq!(workloads.len(), 6);
    }

    #[test]
    fn shares_are_probabilities() {
        for w in Workload::all() {
            assert!((0.0..=1.0).contains(&w.symbolic_runtime_share()));
            assert!((0.0..=1.0).contains(&w.sparsity()));
        }
    }

    #[test]
    fn batch_seeds_are_distinct() {
        let batch = TaskSpec::batch(Dataset::Imo, Scale::Small, 5);
        assert_eq!(batch.len(), 5);
        let seeds: std::collections::HashSet<u64> = batch.iter().map(|t| t.seed).collect();
        assert_eq!(seeds.len(), 5);
    }
}
