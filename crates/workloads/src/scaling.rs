//! Scaling analyses behind paper Fig. 2.
//!
//! Fig. 2(a-c): task accuracy of compositional (LLM + symbolic) versus
//! monolithic LLMs across model sizes, on three task families of
//! different difficulty. Fig. 2(d): runtime of neuro-symbolic models
//! versus RL-based chain-of-thought reasoning as task complexity grows —
//! CoT models re-query the LLM hundreds of times per decision, while
//! neuro-symbolic models delegate to cheap symbolic engines.

use reason_neural::LlmProxy;

/// One accuracy-vs-size curve point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Model-size label ("7B", …).
    pub model: String,
    /// Compositional (LLM + symbolic) accuracy, percent.
    pub compositional_pct: f64,
    /// Monolithic LLM accuracy, percent.
    pub monolithic_pct: f64,
}

/// The model-size axis of Fig. 2.
pub const MODEL_SIZES: [&str; 5] = ["7B", "8B", "13B", "70B", "GPT"];

/// Task families of Fig. 2(a-c) with their difficulty knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskFamily {
    /// Complex reasoning (Textedit, CLUTRR, ProofWriter).
    ComplexReasoning,
    /// Mathematical reasoning (GSM8K, SVAMP, TabMWP).
    MathReasoning,
    /// Question answering (AmbigNQ, TriviaQA, HotpotQA).
    QuestionAnswering,
}

impl TaskFamily {
    /// Difficulty parameter for the accuracy proxy.
    pub fn difficulty(self) -> f64 {
        match self {
            TaskFamily::ComplexReasoning => 2.6,
            TaskFamily::MathReasoning => 2.2,
            TaskFamily::QuestionAnswering => 1.4,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskFamily::ComplexReasoning => "Complex Reasoning",
            TaskFamily::MathReasoning => "Math Reasoning",
            TaskFamily::QuestionAnswering => "Question Answering",
        }
    }
}

/// Computes the accuracy-vs-size curves for one task family.
pub fn accuracy_scaling(family: TaskFamily) -> Vec<ScalingPoint> {
    MODEL_SIZES
        .iter()
        .map(|&m| {
            let proxy = LlmProxy::preset(m);
            ScalingPoint {
                model: m.to_string(),
                compositional_pct: 100.0 * proxy.accuracy_proxy(family.difficulty(), true),
                monolithic_pct: 100.0 * proxy.accuracy_proxy(family.difficulty(), false),
            }
        })
        .collect()
}

/// One runtime-vs-complexity point of Fig. 2(d).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimePoint {
    /// Task complexity (problem index in the paper's IMO set).
    pub complexity: usize,
    /// Neuro-symbolic task runtime, minutes.
    pub neuro_symbolic_min: f64,
    /// RL-based CoT task runtime, minutes.
    pub cot_min: f64,
}

/// Computes the Fig. 2(d) runtime comparison on a desktop-GPU cost basis.
///
/// The neuro-symbolic system issues one LLM proposal round per complexity
/// unit plus symbolic search (cheap); the CoT model issues hundreds of
/// chained LLM queries whose count grows with complexity.
pub fn runtime_scaling(max_complexity: usize) -> Vec<RuntimePoint> {
    let llm = LlmProxy::preset("70B");
    // A6000-class device.
    let (flops, bw) = (38.7e12, 768e9);
    (1..=max_complexity)
        .map(|c| {
            let proposals = 4 + 2 * c as u64;
            let ns_llm = llm.cost(256, 128, flops, bw).seconds * proposals as f64;
            let symbolic = 0.4 * (1.6f64).powi(c as i32 / 3); // search grows, but off-LLM
            let cot_queries = 150 + 130 * c as u64;
            let cot = llm.cost(512, 256, flops, bw).seconds * cot_queries as f64;
            RuntimePoint {
                complexity: c,
                neuro_symbolic_min: (ns_llm + symbolic) / 60.0,
                cot_min: cot / 60.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositional_dominates_every_size() {
        for family in
            [TaskFamily::ComplexReasoning, TaskFamily::MathReasoning, TaskFamily::QuestionAnswering]
        {
            for p in accuracy_scaling(family) {
                assert!(
                    p.compositional_pct > p.monolithic_pct,
                    "{} {}: {} <= {}",
                    family.name(),
                    p.model,
                    p.compositional_pct,
                    p.monolithic_pct
                );
            }
        }
    }

    #[test]
    fn small_compositional_beats_large_monolithic() {
        // Fig. 2's second headline: a 7B compositional model matches or
        // exceeds much larger monolithic LLMs.
        let pts = accuracy_scaling(TaskFamily::MathReasoning);
        let comp_7b = pts[0].compositional_pct;
        let mono_70b = pts[3].monolithic_pct;
        assert!(comp_7b > mono_70b);
    }

    #[test]
    fn accuracy_grows_with_scale() {
        let pts = accuracy_scaling(TaskFamily::ComplexReasoning);
        for w in pts.windows(2) {
            assert!(w[1].compositional_pct >= w[0].compositional_pct);
            assert!(w[1].monolithic_pct >= w[0].monolithic_pct);
        }
    }

    #[test]
    fn cot_runtime_grows_much_faster() {
        let pts = runtime_scaling(8);
        for p in &pts {
            assert!(p.cot_min > p.neuro_symbolic_min, "complexity {}", p.complexity);
        }
        // Paper: >2x efficiency gap.
        let last = pts.last().unwrap();
        assert!(last.cot_min / last.neuro_symbolic_min > 2.0);
    }
}
