//! AlphaGeometry-like workload: symbolic deduction with SAT solving.
//!
//! The paper's AlphaGeometry couples an LLM proposer with a symbolic
//! deduction engine (FOL + SAT + DAG search). The synthetic analogue:
//! deduction problems encoded propositionally — a planted implication
//! chain from premises to a goal, buried under consistent distractor
//! clauses. Proving the goal means showing `axioms ∧ ¬goal` unsatisfiable
//! (refutation), solved here with cube-and-conquer CDCL, the exact
//! machinery of paper Sec. II-C. Ground truth is known by construction;
//! the LLM proposer's imperfection is modeled as a seeded per-task
//! failure to supply the right auxiliary facts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reason_sat::{Clause, Cnf, CubeAndConquer, CubeConfig, Lit, Preprocessor, Var};
use reason_sim::KernelProfile;

use crate::spec::{Dataset, TaskSpec, Workload};
use crate::{TaskResult, WorkloadModel};

/// The AlphaGeometry-like model.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlphaGeometry;

/// One generated deduction task.
#[derive(Debug, Clone)]
pub struct DeductionTask {
    /// `axioms ∧ ¬goal`: UNSAT iff the goal is provable.
    pub refutation_cnf: Cnf,
    /// Ground truth: is the goal provable from the axioms?
    pub provable: bool,
    /// Did the simulated LLM proposer supply the needed construction?
    pub proposer_ok: bool,
}

impl AlphaGeometry {
    /// Generates a deduction task.
    pub fn generate(&self, spec: &TaskSpec) -> DeductionTask {
        let mut rng = StdRng::seed_from_u64(hash_spec(spec));
        let chain_len = 6 * spec.scale.factor();
        let distractors = 30 * spec.scale.factor();
        let num_vars = chain_len + 1 + distractors / 2;
        let mut cnf = Cnf::new(num_vars);

        // Premise.
        cnf.add_clause(Clause::new(vec![Var::new(0).pos()]));
        // Implication chain x0 -> x1 -> ... -> x_chain_len; provable tasks
        // keep it intact, unprovable tasks break one link.
        let provable = rng.gen_bool(0.5);
        let broken_link = if provable { usize::MAX } else { rng.gen_range(0..chain_len) };
        for i in 0..chain_len {
            if i == broken_link {
                continue;
            }
            cnf.add_clause(Clause::new(vec![Var::new(i).neg(), Var::new(i + 1).pos()]));
        }
        // Distractor clauses over the upper variable range, kept trivially
        // satisfiable (always contain a fresh positive literal) so they
        // never interfere with the chain's truth.
        for d in 0..distractors {
            let fresh = Var::new(chain_len + 1 + d % (distractors / 2).max(1));
            let a = Var::new(rng.gen_range(0..num_vars));
            let b = Var::new(rng.gen_range(0..num_vars));
            cnf.add_clause(Clause::new(vec![
                fresh.pos(),
                Lit::new(a, rng.gen_bool(0.5)),
                Lit::new(b, rng.gen_bool(0.5)),
            ]));
        }
        // Refutation: assert ¬goal.
        cnf.add_clause(Clause::new(vec![Var::new(chain_len).neg()]));

        // Paper Table IV: IMO accuracy 83%, MiniF2F 81% — the proposer,
        // not the deduction engine, is the error source.
        let proposer_rate = match spec.dataset {
            Dataset::Imo => 0.83,
            _ => 0.81,
        };
        DeductionTask { refutation_cnf: cnf, provable, proposer_ok: rng.gen_bool(proposer_rate) }
    }
}

fn hash_spec(spec: &TaskSpec) -> u64 {
    spec.seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(spec.dataset.name().len() as u64)
        .wrapping_add(spec.scale.factor() as u64 * 77)
}

impl WorkloadModel for AlphaGeometry {
    fn workload(&self) -> Workload {
        Workload::AlphaGeometry
    }

    fn run_task(&self, spec: &TaskSpec, optimized: bool) -> TaskResult {
        let task = self.generate(spec);
        let (cnf, bytes) = if optimized {
            let pre = Preprocessor::new().run(&task.refutation_cnf);
            let bytes = pre.stats.bytes_after;
            match pre.decided {
                Some(sat) => {
                    let proved = !sat;
                    let correct = task.proposer_ok && (proved == task.provable);
                    return TaskResult {
                        correct,
                        score: f64::from(u8::from(correct)),
                        kernel_bytes: bytes,
                    };
                }
                None => (pre.cnf, bytes),
            }
        } else {
            let bytes = task.refutation_cnf.footprint_bytes();
            (task.refutation_cnf.clone(), bytes)
        };
        let outcome = CubeAndConquer::new(&cnf, CubeConfig::default()).solve();
        let proved = !outcome.solution.is_sat();
        let correct = task.proposer_ok && (proved == task.provable);
        TaskResult { correct, score: f64::from(u8::from(correct)), kernel_bytes: bytes }
    }

    fn kernel_profiles(&self, spec: &TaskSpec) -> Vec<KernelProfile> {
        let f = spec.scale.factor();
        vec![KernelProfile::logic_bcp(60_000 * f), KernelProfile::sparse_matvec(1024 * f, 0.05)]
    }

    fn neural_tokens(&self, spec: &TaskSpec) -> (u64, u64) {
        let f = spec.scale.factor() as u64;
        (384 * f, 24 * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scale;
    use reason_sat::CdclSolver;

    fn spec(seed: u64) -> TaskSpec {
        TaskSpec::new(Dataset::Imo, Scale::Small, seed)
    }

    #[test]
    fn ground_truth_matches_sat_answer() {
        for seed in 0..12 {
            let task = AlphaGeometry.generate(&spec(seed));
            let sat = CdclSolver::new(&task.refutation_cnf).solve().is_sat();
            assert_eq!(!sat, task.provable, "seed {seed}: refutation must mirror provability");
        }
    }

    #[test]
    fn optimization_does_not_change_the_deduction() {
        for seed in 0..10 {
            let base = AlphaGeometry.run_task(&spec(seed), false);
            let opt = AlphaGeometry.run_task(&spec(seed), true);
            assert_eq!(base.correct, opt.correct, "seed {seed}");
        }
    }

    #[test]
    fn pruning_reduces_memory() {
        let mut saved = 0usize;
        let mut total = 0usize;
        for seed in 0..10 {
            let base = AlphaGeometry.run_task(&spec(seed), false);
            let opt = AlphaGeometry.run_task(&spec(seed), true);
            total += base.kernel_bytes;
            saved += base.kernel_bytes.saturating_sub(opt.kernel_bytes);
        }
        assert!(saved * 10 > total, "expect >10% average footprint reduction");
    }

    #[test]
    fn accuracy_lands_near_table4() {
        let specs = TaskSpec::batch(Dataset::Imo, Scale::Small, 120);
        let acc = crate::batch_score(&AlphaGeometry, &specs, true);
        assert!((0.65..0.95).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn deterministic_generation() {
        let a = AlphaGeometry.generate(&spec(3));
        let b = AlphaGeometry.generate(&spec(3));
        assert_eq!(a.refutation_cnf, b.refutation_cnf);
        assert_eq!(a.provable, b.provable);
    }
}
