//! R²-Guard-like workload: probabilistic rule circuits for unsafety
//! detection.
//!
//! R²-Guard (paper Table I) fuses LLM category detectors with logical
//! safety rules through probabilistic inference. The analogue here:
//! category variables carry "detector" marginals; safety knowledge is a
//! CNF over categories; the rule set is knowledge-compiled into a
//! deterministic probabilistic circuit ([`reason_pc::compile_cnf`]); the
//! unsafety score is the weighted model count of rule violation. Exact
//! enumeration provides ground truth, so the effect of circuit pruning on
//! detection quality (paper Table IV: AUPRC 0.758 → 0.752) is measured,
//! not assumed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reason_pc::{compile_cnf, prune_by_flow, sample, Circuit, Evidence, WmcWeights};
use reason_sat::{Clause, Cnf, Lit, Var};
use reason_sim::KernelProfile;

use crate::spec::{TaskSpec, Workload};
use crate::{TaskResult, WorkloadModel};

/// The R²-Guard-like model.
#[derive(Debug, Clone, Copy, Default)]
pub struct R2Guard;

/// One generated guard task.
#[derive(Debug, Clone)]
pub struct GuardTask {
    /// Safety rules over category variables (CNF must hold for safety).
    pub rules: Cnf,
    /// Detector marginals per category.
    pub weights: WmcWeights,
    /// Compiled rule circuit.
    pub circuit: Circuit,
    /// Exact probability that the rules are violated.
    pub exact_violation: f64,
    /// Ground-truth label: unsafe iff violation probability > 0.5.
    pub unsafe_label: bool,
}

impl R2Guard {
    /// Generates a guard task.
    ///
    /// # Panics
    ///
    /// Panics only if the generated rule set is unsatisfiable, which the
    /// construction prevents (every clause contains a positive literal).
    pub fn generate(&self, spec: &TaskSpec) -> GuardTask {
        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0xA24B_AED4_963E_E407));
        let categories = 6 + 2 * spec.scale.factor();
        let num_rules = 5 * spec.scale.factor();
        let mut rules = Cnf::new(categories);
        for _ in 0..num_rules {
            // Rules like "category A implies not (B and C)" in clause form;
            // always include one positive literal so the rule set stays
            // satisfiable.
            let width = rng.gen_range(2..=3);
            let mut vars: Vec<usize> = (0..categories).collect();
            for k in 0..width {
                let pick = rng.gen_range(k..categories);
                vars.swap(k, pick);
            }
            let lits: Vec<Lit> = vars[..width]
                .iter()
                .enumerate()
                .map(|(k, &v)| Lit::new(Var::new(v), k != 0 && rng.gen_bool(0.85)))
                .collect();
            rules.add_clause(Clause::new(lits));
        }
        // Detector marginals: skewed toward "benign" with occasional
        // high-risk spikes, mirroring XSTest-style inputs.
        let probs: Vec<f64> = (0..categories)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    rng.gen_range(0.5..0.95)
                } else {
                    rng.gen_range(0.02..0.3)
                }
            })
            .collect();
        let weights = WmcWeights::new(probs);
        let circuit = compile_cnf(&rules, &weights).expect("rule sets are satisfiable");
        let exact_safe = brute_wmc(&rules, &weights);
        let exact_violation = 1.0 - exact_safe;
        GuardTask { rules, weights, circuit, exact_violation, unsafe_label: exact_violation > 0.5 }
    }
}

fn brute_wmc(cnf: &Cnf, weights: &WmcWeights) -> f64 {
    let n = cnf.num_vars();
    let mut total = 0.0;
    let mut model = vec![false; n];
    for bits in 0u64..(1 << n) {
        for (v, slot) in model.iter_mut().enumerate() {
            *slot = bits >> v & 1 == 1;
        }
        if cnf.eval(&model) {
            let mut w = 1.0;
            for (v, &b) in model.iter().enumerate() {
                w *= if b { weights.prob(v) } else { 1.0 - weights.prob(v) };
            }
            total += w;
        }
    }
    total
}

impl WorkloadModel for R2Guard {
    fn workload(&self) -> Workload {
        Workload::R2Guard
    }

    fn run_task(&self, spec: &TaskSpec, optimized: bool) -> TaskResult {
        let task = self.generate(spec);
        let n = task.rules.num_vars();
        let (circuit, bytes) = if optimized {
            // Calibration data for flow pruning comes from the circuit's
            // own distribution (deployment traffic proxy).
            let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5ca1ab1e);
            let data: Vec<Vec<usize>> = (0..40).map(|_| sample(&task.circuit, &mut rng)).collect();
            let report = prune_by_flow(&task.circuit, &data, 0.25);
            let bytes = report.bytes_after;
            (report.circuit, bytes)
        } else {
            let bytes = task.circuit.footprint_bytes();
            (task.circuit.clone(), bytes)
        };
        let p_safe = circuit.probability(&Evidence::empty(n));
        let predicted_unsafe = (1.0 - p_safe) > 0.5;
        let correct = predicted_unsafe == task.unsafe_label;
        TaskResult { correct, score: f64::from(u8::from(correct)), kernel_bytes: bytes }
    }

    fn kernel_profiles(&self, spec: &TaskSpec) -> Vec<KernelProfile> {
        let f = spec.scale.factor();
        vec![KernelProfile::pc_marginal(120_000 * f), KernelProfile::logic_bcp(8_000 * f)]
    }

    fn neural_tokens(&self, spec: &TaskSpec) -> (u64, u64) {
        let f = spec.scale.factor() as u64;
        (256 * f, 8 * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Dataset, Scale};

    fn spec(seed: u64) -> TaskSpec {
        TaskSpec::new(Dataset::TwinSafety, Scale::Small, seed)
    }

    #[test]
    fn compiled_circuit_matches_exact_wmc() {
        for seed in 0..8 {
            let task = R2Guard.generate(&spec(seed));
            let n = task.rules.num_vars();
            let p = task.circuit.probability(&Evidence::empty(n));
            assert!(
                (p - (1.0 - task.exact_violation)).abs() < 1e-9,
                "seed {seed}: circuit {p} vs exact {}",
                1.0 - task.exact_violation
            );
        }
    }

    #[test]
    fn unpruned_detection_is_exact() {
        let specs = TaskSpec::batch(Dataset::TwinSafety, Scale::Small, 30);
        let acc = crate::batch_score(&R2Guard, &specs, false);
        assert_eq!(acc, 1.0, "exact inference must match exact ground truth");
    }

    #[test]
    fn pruned_detection_stays_close_to_exact() {
        let specs = TaskSpec::batch(Dataset::TwinSafety, Scale::Small, 40);
        let acc = crate::batch_score(&R2Guard, &specs, true);
        // Paper Table IV: AUPRC 0.758 → 0.752 (≈1% degradation).
        assert!(acc >= 0.85, "pruned accuracy {acc} collapsed");
    }

    #[test]
    fn pruning_saves_memory() {
        let base = R2Guard.run_task(&spec(1), false);
        let opt = R2Guard.run_task(&spec(1), true);
        assert!(opt.kernel_bytes < base.kernel_bytes);
    }

    #[test]
    fn labels_are_balanced_enough() {
        let mut unsafe_count = 0;
        for seed in 0..40 {
            if R2Guard.generate(&spec(seed)).unsafe_label {
                unsafe_count += 1;
            }
        }
        assert!(unsafe_count > 2, "need some unsafe labels, got {unsafe_count}");
        assert!(unsafe_count < 38, "need some safe labels, got {unsafe_count}");
    }
}
