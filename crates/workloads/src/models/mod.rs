//! The six workload models (paper Table I).

pub mod alphageometry;
pub mod ctrlg;
pub mod gelato;
pub mod linc;
pub mod neuropc;
pub mod r2guard;
