//! LINC-like workload: first-order logical reasoning with a resolution
//! prover.
//!
//! LINC (paper Table I, \[31\]) has an LLM translate natural-language
//! premises into FOL and delegates the reasoning to a symbolic prover.
//! The analogue: synthetic FOLIO/ProofWriter-style rule bases — typed
//! implication rules, facts, and distractors over a small constant domain
//! — with goals that are provable or unprovable by construction. The
//! reasoning engine is the resolution prover of [`reason_fol`]; the
//! LLM translation step contributes a seeded error rate (paper Table IV:
//! FOLIO 92%, ProofWriter 84%).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reason_fol::{clausify, ground_clauses, parse_formula, prove, Formula, ProofResult};
use reason_sat::Preprocessor;
use reason_sim::KernelProfile;

use crate::spec::{Dataset, TaskSpec, Workload};
use crate::{TaskResult, WorkloadModel};

/// The LINC-like model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Linc;

/// One generated FOL reasoning task.
#[derive(Debug, Clone)]
pub struct FolTask {
    /// Premises (axioms).
    pub axioms: Vec<Formula>,
    /// The conclusion to assess.
    pub goal: Formula,
    /// Ground truth: does the conclusion follow?
    pub entailed: bool,
    /// Did the simulated LLM translate the premises correctly?
    pub translation_ok: bool,
}

impl Linc {
    /// Generates a task: a predicate chain `p0 → p1 → … → pk` over a
    /// constant, universally quantified, with distractor rules about
    /// other predicates.
    pub fn generate(&self, spec: &TaskSpec) -> FolTask {
        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0xFEED_FACE_CAFE_BEEF));
        let chain = 3 + spec.scale.factor();
        let entailed = rng.gen_bool(0.5);
        let broken = if entailed { usize::MAX } else { rng.gen_range(0..chain) };
        let mut axioms = Vec::new();
        axioms.push(parse_formula("p0(alice)").expect("static formula"));
        for i in 0..chain {
            if i == broken {
                continue;
            }
            let rule = format!("forall X. (p{i}(X) -> p{}(X))", i + 1);
            axioms.push(parse_formula(&rule).expect("generated rule parses"));
        }
        // Distractors: rules about unrelated predicates and facts about a
        // second constant.
        for d in 0..2 * spec.scale.factor() {
            let rule = format!("forall X. (q{d}(X) -> q{}(X))", d + 1);
            axioms.push(parse_formula(&rule).expect("generated rule parses"));
        }
        axioms.push(parse_formula("q0(bob)").expect("static formula"));
        let goal = parse_formula(&format!("p{chain}(alice)")).expect("goal parses");

        let translation_rate = match spec.dataset {
            Dataset::Folio => 0.92,
            _ => 0.84,
        };
        FolTask { axioms, goal, entailed, translation_ok: rng.gen_bool(translation_rate) }
    }
}

impl WorkloadModel for Linc {
    fn workload(&self) -> Workload {
        Workload::Linc
    }

    fn run_task(&self, spec: &TaskSpec, optimized: bool) -> TaskResult {
        let task = self.generate(spec);
        let proved = matches!(prove(&task.axioms, &task.goal, 50_000), ProofResult::Proved { .. });
        let reasoning_correct = proved == task.entailed;
        let correct = reasoning_correct && task.translation_ok;

        // Memory metric: the clausified problem, optionally reduced by the
        // grounded preprocessing pipeline (function-free by construction).
        let mut formulas = task.axioms.clone();
        formulas.push(Formula::not(task.goal.clone()));
        let clauses = clausify(&formulas);
        let grounding = ground_clauses(&clauses, &[]).expect("tasks are function-free");
        let kernel_bytes = if optimized {
            Preprocessor::new().run(&grounding.cnf).stats.bytes_after
        } else {
            grounding.cnf.footprint_bytes()
        };
        TaskResult { correct, score: f64::from(u8::from(correct)), kernel_bytes }
    }

    fn kernel_profiles(&self, spec: &TaskSpec) -> Vec<KernelProfile> {
        let f = spec.scale.factor();
        vec![KernelProfile::logic_bcp(25_000 * f), KernelProfile::sparse_matvec(768 * f, 0.08)]
    }

    fn neural_tokens(&self, spec: &TaskSpec) -> (u64, u64) {
        let f = spec.scale.factor() as u64;
        (320 * f, 16 * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scale;

    fn spec(seed: u64) -> TaskSpec {
        TaskSpec::new(Dataset::Folio, Scale::Small, seed)
    }

    #[test]
    fn prover_matches_ground_truth() {
        for seed in 0..10 {
            let task = Linc.generate(&spec(seed));
            let proved =
                matches!(prove(&task.axioms, &task.goal, 50_000), ProofResult::Proved { .. });
            assert_eq!(proved, task.entailed, "seed {seed}");
        }
    }

    #[test]
    fn accuracy_reflects_translation_rate() {
        let specs = TaskSpec::batch(Dataset::Folio, Scale::Small, 80);
        let acc = crate::batch_score(&Linc, &specs, false);
        // Paper Table IV: FOLIO 92%.
        assert!((0.8..1.0).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn preprocessing_reduces_grounded_footprint() {
        let base = Linc.run_task(&spec(4), false);
        let opt = Linc.run_task(&spec(4), true);
        assert!(opt.kernel_bytes < base.kernel_bytes);
        assert_eq!(base.correct, opt.correct, "optimization must not change answers");
    }

    #[test]
    fn deterministic_generation() {
        let a = Linc.generate(&spec(9));
        let b = Linc.generate(&spec(9));
        assert_eq!(a.entailed, b.entailed);
        assert_eq!(a.axioms.len(), b.axioms.len());
    }
}
