//! Ctrl-G-like workload: interactive text infilling under constraints.
//!
//! Ctrl-G (paper Table I, \[23\]) performs text editing with guaranteed
//! logical constraints over an HMM proxy of the LM. The analogue: the
//! output must *begin with a given prefix* (the text being continued) and
//! *contain a keyword* (the edit instruction). Both constraints compose
//! as a product DFA, and decoding runs on the HMM×DFA product space —
//! the paper's dominant probabilistic kernel for this workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reason_hmm::{prune_transitions, sample::sample_sequence, Dfa, Hmm};
use reason_sim::KernelProfile;

use crate::spec::{TaskSpec, Workload};
use crate::{TaskResult, WorkloadModel};

/// The Ctrl-G-like model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtrlG;

/// One generated infilling task.
#[derive(Debug, Clone)]
pub struct InfillTask {
    /// The language-model proxy.
    pub hmm: Hmm,
    /// Required output prefix (the user's existing text).
    pub prefix: Vec<usize>,
    /// Required keyword anywhere in the output.
    pub keyword: Vec<usize>,
    /// Total output length.
    pub length: usize,
}

/// Builds the DFA accepting sequences that start with `prefix` AND contain
/// `keyword` — the product of a prefix acceptor and a KMP keyword
/// automaton.
pub fn prefix_and_keyword_dfa(prefix: &[usize], keyword: &[usize], num_symbols: usize) -> Dfa {
    let kw = Dfa::contains_keyword(keyword, num_symbols);
    // Prefix acceptor: states 0..=prefix.len() counting matched symbols,
    // plus a dead state; accepting once the full prefix has been read.
    let p = prefix.len();
    let dead_p = p + 1;
    // Product state = prefix_state * kw_states + kw_state.
    let kq = kw.num_states();
    let total = (p + 2) * kq;
    let mut transitions = vec![vec![0usize; num_symbols]; total];
    let mut accepting = vec![false; total];
    for ps in 0..=p + 1 {
        for ks in 0..kq {
            let s = ps * kq + ks;
            for sym in 0..num_symbols {
                let np = if ps < p {
                    if prefix[ps] == sym {
                        ps + 1
                    } else {
                        dead_p
                    }
                } else {
                    ps // p = matched (absorbing), dead_p = dead (absorbing)
                };
                let nk = kw.step(ks, sym);
                transitions[s][sym] = np * kq + nk;
            }
            accepting[s] = ps == p && kw.is_accepting(ks);
        }
    }
    // Start state: (prefix progress 0, keyword automaton start 0) = index 0.
    Dfa::new(0, transitions, accepting)
}

impl CtrlG {
    /// Generates a task.
    pub fn generate(&self, spec: &TaskSpec) -> InfillTask {
        let mut rng =
            StdRng::seed_from_u64(spec.seed.wrapping_mul(0xC0FF_EE00_DEAD_BEEF).wrapping_add(7));
        let f = spec.scale.factor();
        let states = 4 + f;
        let symbols = 6 + 2 * f;
        let hmm = Hmm::random(states, symbols, rng.gen());
        let prefix: Vec<usize> = (0..2).map(|_| rng.gen_range(0..symbols)).collect();
        let keyword: Vec<usize> = (0..2).map(|_| rng.gen_range(0..symbols)).collect();
        InfillTask { hmm, prefix, keyword, length: 8 + 3 * f }
    }
}

impl WorkloadModel for CtrlG {
    fn workload(&self) -> Workload {
        Workload::CtrlG
    }

    fn run_task(&self, spec: &TaskSpec, optimized: bool) -> TaskResult {
        let task = self.generate(spec);
        let (hmm, bytes) = if optimized {
            let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xF00D);
            let data: Vec<Vec<usize>> = (0..20)
                .map(|_| sample_sequence(&task.hmm, task.length, &mut rng).observations)
                .collect();
            let report = prune_transitions(&task.hmm, &data, 0.012);
            (report.hmm, report.bytes_after)
        } else {
            let bytes = task.hmm.footprint_bytes();
            (task.hmm.clone(), bytes)
        };
        let dfa = prefix_and_keyword_dfa(&task.prefix, &task.keyword, hmm.num_symbols());
        let result = hmm.constrained_decode(&dfa, task.length);
        let ok = !result.best_sequence.is_empty()
            && result.best_sequence.starts_with(&task.prefix)
            && dfa.accepts(&result.best_sequence);
        // Success rate is the paper's CoAuthor metric (Table IV: 87%).
        TaskResult { correct: ok, score: f64::from(u8::from(ok)), kernel_bytes: bytes }
    }

    fn kernel_profiles(&self, spec: &TaskSpec) -> Vec<KernelProfile> {
        let f = spec.scale.factor();
        vec![KernelProfile::bayesian_update(768 * f, 1), KernelProfile::pc_marginal(60_000 * f)]
    }

    fn neural_tokens(&self, spec: &TaskSpec) -> (u64, u64) {
        let f = spec.scale.factor() as u64;
        (128 * f, 24 * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Dataset, Scale};

    fn spec(seed: u64) -> TaskSpec {
        TaskSpec::new(Dataset::CoAuthor, Scale::Small, seed)
    }

    #[test]
    fn product_dfa_semantics() {
        let dfa = prefix_and_keyword_dfa(&[1, 2], &[0, 0], 4);
        assert!(dfa.accepts(&[1, 2, 0, 0, 3]));
        assert!(dfa.accepts(&[1, 2, 3, 0, 0]));
        assert!(!dfa.accepts(&[2, 1, 0, 0]), "wrong prefix");
        assert!(!dfa.accepts(&[1, 2, 3, 0, 1]), "keyword missing");
        // Keyword overlapping the prefix counts.
        let dfa = prefix_and_keyword_dfa(&[0, 0], &[0, 0], 4);
        assert!(dfa.accepts(&[0, 0, 1]));
    }

    #[test]
    fn decoded_sequences_honor_both_constraints() {
        for seed in 0..10 {
            let r = CtrlG.run_task(&spec(seed), false);
            assert!(r.correct, "seed {seed}");
        }
    }

    #[test]
    fn pruned_model_keeps_high_success_rate() {
        let specs = TaskSpec::batch(Dataset::CoAuthor, Scale::Small, 25);
        let rate = crate::batch_score(&CtrlG, &specs, true);
        // Paper Table IV: success 87% → 86%.
        assert!(rate >= 0.8, "success rate {rate}");
    }

    #[test]
    fn deterministic_tasks() {
        let a = CtrlG.generate(&spec(5));
        let b = CtrlG.generate(&spec(5));
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.keyword, b.keyword);
    }
}
