//! NeuroPC-like workload: neural features + probabilistic-circuit
//! classification.
//!
//! NeuroPC (paper Table I, \[30\]) pairs a DNN attribute detector with a
//! probabilistic circuit that reasons over attributes to produce
//! interpretable class predictions (AwA2-style zero-shot attribute
//! classification). The analogue: a ground-truth naive-Bayes generative
//! model over (class, attributes); samples pass through an MLP-flavored
//! noisy observation channel; a circuit with the generative structure
//! classifies by exact conditional inference. Flow pruning is applied in
//! the optimized configuration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reason_pc::{prune_by_flow, Circuit, CircuitBuilder, Evidence};
use reason_sim::KernelProfile;

use crate::spec::{TaskSpec, Workload};
use crate::{TaskResult, WorkloadModel};

/// The NeuroPC-like model.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeuroPc;

/// One generated classification task.
#[derive(Debug, Clone)]
pub struct ClassifyTask {
    /// The classifier circuit: variable 0 = class, variables 1.. =
    /// binary attributes.
    pub circuit: Circuit,
    /// Observed (noisy) attribute values for a batch of instances.
    pub observations: Vec<Vec<usize>>,
    /// Ground-truth class per instance.
    pub labels: Vec<usize>,
}

impl NeuroPc {
    /// Number of classes.
    pub const CLASSES: usize = 4;

    /// Generates a task.
    pub fn generate(&self, spec: &TaskSpec) -> ClassifyTask {
        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0xBADC_0FFE_E0DD_F00D));
        let attributes = 6 + 2 * spec.scale.factor();
        let batch = 12;
        // Ground-truth class-conditional attribute probabilities, kept
        // away from 0.5 so classes are separable (AwA2 accuracy ≈ 87%).
        // Each class mixes a dominant and a rare attribute *profile*: the
        // rare-profile sum edges carry little flow and are what adaptive
        // pruning removes (paper Table IV: 43% memory reduction on AwA2).
        let profiles: Vec<[Vec<f64>; 2]> = (0..Self::CLASSES)
            .map(|_| {
                let dominant: Vec<f64> = (0..attributes)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            rng.gen_range(0.75..0.95)
                        } else {
                            rng.gen_range(0.05..0.25)
                        }
                    })
                    .collect();
                // The rare profile perturbs the dominant one.
                let rare: Vec<f64> = dominant
                    .iter()
                    .map(|&p| (p + rng.gen_range(-0.15..0.15)).clamp(0.05, 0.95))
                    .collect();
                [dominant, rare]
            })
            .collect();
        let cond: Vec<Vec<f64>> = profiles.iter().map(|p| p[0].clone()).collect();
        let prior = vec![1.0 / Self::CLASSES as f64; Self::CLASSES];

        // The classifier circuit mirrors the generative model:
        // Σ_c prior_c · [class=c] · Σ_profile w · Π_a Cat(attr_a; ·).
        let mut arities = vec![Self::CLASSES];
        arities.extend(std::iter::repeat_n(2, attributes));
        let mut b = CircuitBuilder::new(arities);
        let mut components = Vec::with_capacity(Self::CLASSES);
        for (c, class_profiles) in profiles.iter().enumerate() {
            let alts: Vec<_> = class_profiles
                .iter()
                .map(|probs| {
                    let kids: Vec<_> = probs
                        .iter()
                        .enumerate()
                        .map(|(a, &p)| b.categorical(1 + a, &[1.0 - p, p]))
                        .collect();
                    b.product(kids)
                })
                .collect();
            let mix = b.sum(alts, vec![0.9, 0.1]);
            let ind = b.indicator(0, c);
            components.push(b.product(vec![ind, mix]));
        }
        let root = b.sum(components, prior);
        let circuit = b.build(root).expect("naive Bayes circuit is valid");

        // Sample labeled instances and push them through a noisy
        // "feature extractor" (attribute flips at 8%).
        let mut observations = Vec::with_capacity(batch);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch {
            let class = rng.gen_range(0..Self::CLASSES);
            let attrs: Vec<usize> = cond[class]
                .iter()
                .map(|&p| {
                    let truth = rng.gen_bool(p);
                    let observed = if rng.gen_bool(0.08) { !truth } else { truth };
                    usize::from(observed)
                })
                .collect();
            observations.push(attrs);
            labels.push(class);
        }
        ClassifyTask { circuit, observations, labels }
    }

    fn classify(circuit: &Circuit, attrs: &[usize]) -> usize {
        let mut ev = Evidence::empty(circuit.num_vars());
        for (a, &v) in attrs.iter().enumerate() {
            ev.set(1 + a, v);
        }
        let posterior = circuit.marginal(&ev, 0);
        posterior
            .iter()
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |acc, (c, &p)| if p > acc.1 { (c, p) } else { acc })
            .0
    }
}

impl WorkloadModel for NeuroPc {
    fn workload(&self) -> Workload {
        Workload::NeuroPc
    }

    fn run_task(&self, spec: &TaskSpec, optimized: bool) -> TaskResult {
        let task = self.generate(spec);
        let (circuit, bytes) = if optimized {
            // Calibration: the observed attribute batch itself, completed
            // with MPE class assignments.
            let data: Vec<Vec<usize>> = task
                .observations
                .iter()
                .map(|attrs| {
                    let mut row = vec![Self::classify(&task.circuit, attrs)];
                    row.extend(attrs.iter().copied());
                    row
                })
                .collect();
            let report = prune_by_flow(&task.circuit, &data, 0.15);
            (report.circuit, report.bytes_after)
        } else {
            let bytes = task.circuit.footprint_bytes();
            (task.circuit.clone(), bytes)
        };
        let correct_count = task
            .observations
            .iter()
            .zip(&task.labels)
            .filter(|(attrs, &label)| Self::classify(&circuit, attrs) == label)
            .count();
        let accuracy = correct_count as f64 / task.labels.len() as f64;
        TaskResult { correct: accuracy >= 0.75, score: accuracy, kernel_bytes: bytes }
    }

    fn kernel_profiles(&self, spec: &TaskSpec) -> Vec<KernelProfile> {
        let f = spec.scale.factor();
        vec![KernelProfile::pc_marginal(80_000 * f)]
    }

    fn neural_tokens(&self, spec: &TaskSpec) -> (u64, u64) {
        // DNN, not LLM: small fixed encode cost.
        (64 * spec.scale.factor() as u64, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Dataset, Scale};

    fn spec(seed: u64) -> TaskSpec {
        TaskSpec::new(Dataset::AwA2, Scale::Small, seed)
    }

    #[test]
    fn classification_accuracy_is_high() {
        let specs = TaskSpec::batch(Dataset::AwA2, Scale::Small, 15);
        let acc = crate::batch_score(&NeuroPc, &specs, false);
        // Paper Table IV: 87%.
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn pruning_roughly_preserves_accuracy() {
        let specs = TaskSpec::batch(Dataset::AwA2, Scale::Small, 15);
        let base = crate::batch_score(&NeuroPc, &specs, false);
        let opt = crate::batch_score(&NeuroPc, &specs, true);
        assert!(opt >= base - 0.1, "pruning destroyed accuracy: {base} -> {opt}");
    }

    #[test]
    fn pruning_reduces_bytes() {
        let base = NeuroPc.run_task(&spec(2), false);
        let opt = NeuroPc.run_task(&spec(2), true);
        assert!(opt.kernel_bytes < base.kernel_bytes);
    }

    #[test]
    fn circuit_is_a_normalized_distribution() {
        let task = NeuroPc.generate(&spec(0));
        let p = task.circuit.probability(&Evidence::empty(task.circuit.num_vars()));
        assert!((p - 1.0).abs() < 1e-9);
    }
}
