//! GeLaTo-like workload: keyword-constrained generation with HMMs.
//!
//! GeLaTo (paper Table I) distills an LM into an HMM and intersects it
//! with lexical constraints to guarantee constraint satisfaction. The
//! analogue: a seeded HMM "language model", a keyword that must appear in
//! the output (CommonGen-style), the product-space decode of
//! [`reason_hmm::constrain`], and a BLEU-proxy score from per-token
//! likelihood. Transition pruning (paper Sec. IV-B) is applied in the
//! optimized configuration and its fluency cost measured.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reason_hmm::{prune_transitions, sample::sample_sequence, Dfa, Hmm};
use reason_sim::KernelProfile;

use crate::spec::{Dataset, TaskSpec, Workload};
use crate::{TaskResult, WorkloadModel};

/// The GeLaTo-like model.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeLaTo;

/// One generated constrained-generation task.
#[derive(Debug, Clone)]
pub struct GenerationTask {
    /// The language-model proxy.
    pub hmm: Hmm,
    /// The keyword that must appear contiguously in the output.
    pub keyword: Vec<usize>,
    /// Output length.
    pub length: usize,
}

impl GeLaTo {
    /// Generates a task.
    pub fn generate(&self, spec: &TaskSpec) -> GenerationTask {
        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let f = spec.scale.factor();
        let states = 4 + 2 * f;
        let symbols = 8 + 2 * f;
        let hmm = Hmm::random(states, symbols, rng.gen());
        let kw_len = match spec.dataset {
            Dataset::News => 3,
            _ => 2,
        };
        let keyword: Vec<usize> = (0..kw_len).map(|_| rng.gen_range(0..symbols)).collect();
        GenerationTask { hmm, keyword, length: 8 + 4 * f }
    }

    fn fluency_score(hmm: &Hmm, seq: &[usize]) -> f64 {
        // BLEU proxy: geometric-mean token likelihood, scaled to ~CommonGen
        // BLEU magnitudes (paper Table IV: 30.3).
        let ll = hmm.log_likelihood(seq);
        let per_token = (ll / seq.len() as f64).exp();
        100.0 * per_token
    }
}

impl WorkloadModel for GeLaTo {
    fn workload(&self) -> Workload {
        Workload::GeLaTo
    }

    fn run_task(&self, spec: &TaskSpec, optimized: bool) -> TaskResult {
        let task = self.generate(spec);
        let (hmm, bytes) = if optimized {
            let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xDECAF);
            let data: Vec<Vec<usize>> = (0..20)
                .map(|_| sample_sequence(&task.hmm, task.length, &mut rng).observations)
                .collect();
            let report = prune_transitions(&task.hmm, &data, 0.012);
            (report.hmm, report.bytes_after)
        } else {
            let bytes = task.hmm.footprint_bytes();
            (task.hmm.clone(), bytes)
        };
        let dfa = Dfa::contains_keyword(&task.keyword, hmm.num_symbols());
        let result = hmm.constrained_decode(&dfa, task.length);
        let satisfied = !result.best_sequence.is_empty() && dfa.accepts(&result.best_sequence);
        let score = if satisfied {
            // Fluency measured under the *unpruned* model: pruning may
            // only cost fluency, never fake it.
            Self::fluency_score(&task.hmm, &result.best_sequence)
        } else {
            0.0
        };
        TaskResult { correct: satisfied, score, kernel_bytes: bytes }
    }

    fn kernel_profiles(&self, spec: &TaskSpec) -> Vec<KernelProfile> {
        let f = spec.scale.factor();
        vec![KernelProfile::bayesian_update(512 * f, 1), KernelProfile::pc_marginal(40_000 * f)]
    }

    fn neural_tokens(&self, spec: &TaskSpec) -> (u64, u64) {
        let f = spec.scale.factor() as u64;
        (96 * f, 24 * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scale;

    fn spec(seed: u64) -> TaskSpec {
        TaskSpec::new(Dataset::CommonGen, Scale::Small, seed)
    }

    #[test]
    fn constraints_are_always_satisfied() {
        // GeLaTo's selling point (paper Table I): guaranteed constraint
        // satisfaction.
        for seed in 0..10 {
            let r = GeLaTo.run_task(&spec(seed), false);
            assert!(r.correct, "seed {seed}: constraint violated");
        }
    }

    #[test]
    fn pruned_model_still_satisfies_constraints() {
        for seed in 0..10 {
            let r = GeLaTo.run_task(&spec(seed), true);
            assert!(r.correct, "seed {seed}");
        }
    }

    #[test]
    fn pruning_costs_little_fluency() {
        let specs = TaskSpec::batch(Dataset::CommonGen, Scale::Small, 20);
        let base = crate::batch_score(&GeLaTo, &specs, false);
        let opt = crate::batch_score(&GeLaTo, &specs, true);
        // Paper Table IV: BLEU 30.3 → 30.2.
        assert!(opt >= base * 0.9, "fluency collapsed: {base} -> {opt}");
    }

    #[test]
    fn pruning_reduces_model_bytes() {
        let base = GeLaTo.run_task(&spec(0), false);
        let opt = GeLaTo.run_task(&spec(0), true);
        assert!(opt.kernel_bytes <= base.kernel_bytes);
    }

    #[test]
    fn scores_have_bleu_like_magnitudes() {
        let specs = TaskSpec::batch(Dataset::CommonGen, Scale::Small, 10);
        let score = crate::batch_score(&GeLaTo, &specs, false);
        assert!(score > 1.0 && score < 100.0, "score {score}");
    }
}
