//! First-order logic substrate for the REASON reproduction.
//!
//! FOL is the symbolic language of the paper's logical-reasoning kernels
//! (Sec. II-C): predicates, functions, constants, variables, and
//! quantifiers combined with the usual connectives. Systems like
//! AlphaGeometry and LINC (paper Table I) run deduction over such formulas;
//! REASON's compiler normalizes them to CNF before DAG construction
//! (Sec. IV-A, "Step-1 Normalization").
//!
//! Modules:
//!
//! * [`term`] — terms ([`Term`]) and atoms ([`Atom`]) with substitutions.
//! * [`formula`] — the formula AST and finite-model evaluation
//!   ([`Interpretation`]), used both by workloads and as a semantics oracle
//!   for the transformation tests.
//! * [`transform`] — implication elimination, negation normal form, prenex
//!   form, Skolemization, and CNF distribution.
//! * [`unify`] — Robinson unification with occurs check.
//! * [`resolution`] — a refutation prover (given-clause loop with
//!   factoring, tautology deletion, and subsumption).
//! * [`ground`] — finite-domain grounding of function-free clause sets to
//!   propositional [`reason_sat::Cnf`].
//!
//! # Naming convention
//!
//! Prolog-style: identifiers starting with an uppercase letter are
//! variables; lowercase identifiers are constants, functions, and
//! predicates.
//!
//! # Example
//!
//! ```
//! use reason_fol::{parse_formula, prove, ProofResult};
//!
//! let axioms = vec![
//!     parse_formula("forall X. (man(X) -> mortal(X))").unwrap(),
//!     parse_formula("man(socrates)").unwrap(),
//! ];
//! let goal = parse_formula("mortal(socrates)").unwrap();
//! match prove(&axioms, &goal, 1000) {
//!     ProofResult::Proved { .. } => {}
//!     other => panic!("expected a proof, got {other:?}"),
//! }
//! ```

pub mod formula;
pub mod ground;
pub mod parser;
pub mod resolution;
pub mod term;
pub mod transform;
pub mod unify;

pub use formula::{Formula, Interpretation};
pub use ground::{ground_clauses, GroundError, Grounding};
pub use parser::{parse_formula, ParseError};
pub use resolution::{prove, FolClause, FolLit, ProofResult};
pub use term::{Atom, Term};
pub use transform::{clausify, to_cnf_clauses, to_nnf, to_prenex};
pub use unify::{unify_atoms, unify_terms, Substitution};
