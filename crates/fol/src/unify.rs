//! Robinson unification with occurs check.

use std::collections::HashMap;

use crate::term::{Atom, Term};

/// A substitution: a finite map from variable names to terms.
///
/// Bindings may chain (`X -> Y`, `Y -> a`); [`Substitution::apply`]
/// resolves chains fully.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: HashMap<String, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Substitution::default()
    }

    /// Binds `var` to `term`.
    pub fn bind(&mut self, var: impl Into<String>, term: Term) {
        self.map.insert(var.into(), term);
    }

    /// The binding for `var`, if any (not chain-resolved).
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.map.get(var)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Applies the substitution to a term (resolving chains).
    pub fn apply(&self, term: &Term) -> Term {
        term.substitute(&self.map)
    }

    /// Applies the substitution to an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        atom.substitute(&self.map)
    }

    /// Fully resolves a variable through chained bindings.
    fn walk(&self, term: &Term) -> Term {
        let mut t = term.clone();
        while let Term::Var(v) = &t {
            match self.map.get(v) {
                Some(next) => t = next.clone(),
                None => break,
            }
        }
        t
    }
}

/// Computes a most general unifier of two terms, extending `subst`.
///
/// Returns `false` (leaving `subst` in a partially extended state) when the
/// terms do not unify; callers should treat `subst` as poisoned on failure.
fn unify_into(a: &Term, b: &Term, subst: &mut Substitution) -> bool {
    let a = subst.walk(a);
    let b = subst.walk(b);
    match (&a, &b) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        (Term::Var(x), t) | (t, Term::Var(x)) => {
            // Occurs check against the current substitution.
            if occurs(x, t, subst) {
                return false;
            }
            subst.bind(x.clone(), t.clone());
            true
        }
        (Term::App(f, fa), Term::App(g, ga)) => {
            f == g
                && fa.len() == ga.len()
                && fa.iter().zip(ga).all(|(x, y)| unify_into(x, y, subst))
        }
    }
}

fn occurs(var: &str, term: &Term, subst: &Substitution) -> bool {
    match subst.walk(term) {
        Term::Var(v) => v == var,
        Term::App(_, args) => args.iter().any(|a| occurs(var, a, subst)),
    }
}

/// Computes the most general unifier of two terms.
///
/// ```
/// use reason_fol::{unify_terms, Term};
/// let a = Term::app("f", vec![Term::var("X"), Term::constant("b")]);
/// let b = Term::app("f", vec![Term::constant("a"), Term::var("Y")]);
/// let s = unify_terms(&a, &b).unwrap();
/// assert_eq!(s.apply(&a), s.apply(&b));
/// ```
pub fn unify_terms(a: &Term, b: &Term) -> Option<Substitution> {
    let mut s = Substitution::new();
    if unify_into(a, b, &mut s) {
        Some(s)
    } else {
        None
    }
}

/// Computes the most general unifier of two atoms (same predicate and
/// arity required).
pub fn unify_atoms(a: &Atom, b: &Atom) -> Option<Substitution> {
    if a.pred != b.pred || a.args.len() != b.args.len() {
        return None;
    }
    let mut s = Substitution::new();
    for (x, y) in a.args.iter().zip(&b.args) {
        if !unify_into(x, y, &mut s) {
            return None;
        }
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unifies_simple_variables() {
        let s = unify_terms(&Term::var("X"), &Term::constant("a")).unwrap();
        assert_eq!(s.apply(&Term::var("X")), Term::constant("a"));
    }

    #[test]
    fn unifier_actually_unifies() {
        let a = Term::app("f", vec![Term::var("X"), Term::app("g", vec![Term::var("X")])]);
        let b = Term::app("f", vec![Term::constant("c"), Term::var("Y")]);
        let s = unify_terms(&a, &b).unwrap();
        assert_eq!(s.apply(&a), s.apply(&b));
    }

    #[test]
    fn occurs_check_rejects_cyclic() {
        let a = Term::var("X");
        let b = Term::app("f", vec![Term::var("X")]);
        assert!(unify_terms(&a, &b).is_none());
        // Indirect cycle: X = f(Y), Y = X.
        let a = Term::app("p", vec![Term::var("X"), Term::var("Y")]);
        let b = Term::app("p", vec![Term::app("f", vec![Term::var("Y")]), Term::var("X")]);
        assert!(unify_terms(&a, &b).is_none());
    }

    #[test]
    fn mismatched_functions_fail() {
        assert!(unify_terms(&Term::constant("a"), &Term::constant("b")).is_none());
        let f = Term::app("f", vec![Term::var("X")]);
        let g = Term::app("g", vec![Term::var("X")]);
        assert!(unify_terms(&f, &g).is_none());
    }

    #[test]
    fn atom_unification() {
        let a = Atom::new("p", vec![Term::var("X"), Term::constant("b")]);
        let b = Atom::new("p", vec![Term::constant("a"), Term::var("Y")]);
        let s = unify_atoms(&a, &b).unwrap();
        assert_eq!(s.apply_atom(&a), s.apply_atom(&b));
        // Different predicates never unify.
        let c = Atom::new("q", vec![Term::var("X"), Term::constant("b")]);
        assert!(unify_atoms(&a, &c).is_none());
    }

    #[test]
    fn chained_bindings_resolve() {
        let a = Term::app("f", vec![Term::var("X"), Term::var("X")]);
        let b = Term::app("f", vec![Term::var("Y"), Term::constant("a")]);
        let s = unify_terms(&a, &b).unwrap();
        assert_eq!(s.apply(&Term::var("X")), Term::constant("a"));
        assert_eq!(s.apply(&Term::var("Y")), Term::constant("a"));
    }
}
