//! Formula normalization: NNF, prenex form, Skolemization, CNF.
//!
//! This is the paper's "Step-1 Normalization: predicates are transformed to
//! CNF, removing quantifiers and forming disjunctions of literals"
//! (Sec. IV-A). The pipeline is
//!
//! 1. universal closure of free variables,
//! 2. implication/biconditional elimination + negation normal form,
//! 3. standardization apart + prenex form,
//! 4. Skolemization of existentials,
//! 5. distribution of ∨ over ∧ into clauses.

use std::collections::HashMap;

use crate::formula::Formula;
use crate::resolution::{FolClause, FolLit};
use crate::term::Term;

/// Rewrites to negation normal form: no `->`/`<->`, negation only on atoms.
pub fn to_nnf(f: &Formula) -> Formula {
    fn pos(f: &Formula) -> Formula {
        match f {
            Formula::Atom(_) => f.clone(),
            Formula::Not(x) => neg(x),
            Formula::And(a, b) => Formula::and(pos(a), pos(b)),
            Formula::Or(a, b) => Formula::or(pos(a), pos(b)),
            Formula::Implies(a, b) => Formula::or(neg(a), pos(b)),
            Formula::Iff(a, b) => {
                Formula::and(Formula::or(neg(a), pos(b)), Formula::or(neg(b), pos(a)))
            }
            Formula::Forall(v, x) => Formula::forall(v.clone(), pos(x)),
            Formula::Exists(v, x) => Formula::exists(v.clone(), pos(x)),
        }
    }
    fn neg(f: &Formula) -> Formula {
        match f {
            Formula::Atom(_) => Formula::not(f.clone()),
            Formula::Not(x) => pos(x),
            Formula::And(a, b) => Formula::or(neg(a), neg(b)),
            Formula::Or(a, b) => Formula::and(neg(a), neg(b)),
            Formula::Implies(a, b) => Formula::and(pos(a), neg(b)),
            Formula::Iff(a, b) => {
                Formula::or(Formula::and(pos(a), neg(b)), Formula::and(pos(b), neg(a)))
            }
            Formula::Forall(v, x) => Formula::exists(v.clone(), neg(x)),
            Formula::Exists(v, x) => Formula::forall(v.clone(), neg(x)),
        }
    }
    pos(f)
}

/// A quantifier prefix entry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Quant {
    Forall(String),
    Exists(String),
}

/// Converts to prenex form: all quantifiers pulled to an outer prefix over
/// a quantifier-free matrix. The input is closed (free variables are
/// universally closed first); bound variables are standardized apart.
pub fn to_prenex(f: &Formula) -> Formula {
    let nnf = to_nnf(&f.universal_closure());
    let mut counter = 0usize;
    let (prefix, matrix) = pull(&nnf, &mut HashMap::new(), &mut counter);
    let mut out = matrix;
    for q in prefix.into_iter().rev() {
        out = match q {
            Quant::Forall(v) => Formula::forall(v, out),
            Quant::Exists(v) => Formula::exists(v, out),
        };
    }
    out
}

fn fresh(counter: &mut usize) -> String {
    let name = format!("V{counter}");
    *counter += 1;
    name
}

fn pull(
    f: &Formula,
    rename: &mut HashMap<String, String>,
    counter: &mut usize,
) -> (Vec<Quant>, Formula) {
    match f {
        Formula::Atom(a) => {
            let subst: HashMap<String, Term> =
                rename.iter().map(|(k, v)| (k.clone(), Term::var(v.clone()))).collect();
            (Vec::new(), Formula::Atom(a.substitute(&subst)))
        }
        Formula::Not(x) => {
            // NNF: x is an atom.
            let (q, m) = pull(x, rename, counter);
            debug_assert!(q.is_empty(), "NNF negation wraps atoms only");
            (q, Formula::not(m))
        }
        Formula::And(a, b) | Formula::Or(a, b) => {
            let (mut qa, ma) = pull(a, rename, counter);
            let (qb, mb) = pull(b, rename, counter);
            qa.extend(qb);
            let m = if matches!(f, Formula::And(_, _)) {
                Formula::and(ma, mb)
            } else {
                Formula::or(ma, mb)
            };
            (qa, m)
        }
        Formula::Forall(v, x) => {
            let nv = fresh(counter);
            let saved = rename.insert(v.clone(), nv.clone());
            let (mut q, m) = pull(x, rename, counter);
            restore(rename, v, saved);
            q.insert(0, Quant::Forall(nv));
            (q, m)
        }
        Formula::Exists(v, x) => {
            let nv = fresh(counter);
            let saved = rename.insert(v.clone(), nv.clone());
            let (mut q, m) = pull(x, rename, counter);
            restore(rename, v, saved);
            q.insert(0, Quant::Exists(nv));
            (q, m)
        }
        Formula::Implies(_, _) | Formula::Iff(_, _) => {
            unreachable!("NNF removed implications")
        }
    }
}

fn restore(rename: &mut HashMap<String, String>, var: &str, saved: Option<String>) {
    match saved {
        Some(v) => {
            rename.insert(var.to_string(), v);
        }
        None => {
            rename.remove(var);
        }
    }
}

/// Skolemizes a formula: existential variables become Skolem functions of
/// the enclosing universals; the result keeps only universal quantifiers
/// (equisatisfiable with the input). `skolem_counter` provides globally
/// fresh function names across a multi-formula problem.
pub fn skolemize(f: &Formula, skolem_counter: &mut usize) -> Formula {
    let prenex = to_prenex(f);
    // Decompose the prefix.
    let mut prefix = Vec::new();
    let mut body = &prenex;
    loop {
        match body {
            Formula::Forall(v, x) => {
                prefix.push(Quant::Forall(v.clone()));
                body = x;
            }
            Formula::Exists(v, x) => {
                prefix.push(Quant::Exists(v.clone()));
                body = x;
            }
            _ => break,
        }
    }
    let mut universals: Vec<String> = Vec::new();
    let mut subst: HashMap<String, Term> = HashMap::new();
    for q in &prefix {
        match q {
            Quant::Forall(v) => universals.push(v.clone()),
            Quant::Exists(v) => {
                let name = format!("sk{}", *skolem_counter);
                *skolem_counter += 1;
                let args: Vec<Term> = universals.iter().map(|u| Term::var(u.clone())).collect();
                subst.insert(v.clone(), Term::app(name, args));
            }
        }
    }
    let matrix = substitute_formula(body, &subst);
    let mut out = matrix;
    for u in universals.into_iter().rev() {
        out = Formula::forall(u, out);
    }
    out
}

fn substitute_formula(f: &Formula, subst: &HashMap<String, Term>) -> Formula {
    match f {
        Formula::Atom(a) => Formula::Atom(a.substitute(subst)),
        Formula::Not(x) => Formula::not(substitute_formula(x, subst)),
        Formula::And(a, b) => {
            Formula::and(substitute_formula(a, subst), substitute_formula(b, subst))
        }
        Formula::Or(a, b) => {
            Formula::or(substitute_formula(a, subst), substitute_formula(b, subst))
        }
        Formula::Implies(a, b) => {
            Formula::implies(substitute_formula(a, subst), substitute_formula(b, subst))
        }
        Formula::Iff(a, b) => {
            Formula::iff(substitute_formula(a, subst), substitute_formula(b, subst))
        }
        Formula::Forall(v, x) => Formula::forall(v.clone(), substitute_formula(x, subst)),
        Formula::Exists(v, x) => Formula::exists(v.clone(), substitute_formula(x, subst)),
    }
}

/// Converts one formula to CNF clauses (paper "Step-1 Normalization").
///
/// `skolem_counter` must be shared across all formulas of one problem so
/// Skolem names stay distinct.
pub fn to_cnf_clauses(f: &Formula, skolem_counter: &mut usize) -> Vec<FolClause> {
    let sk = skolemize(f, skolem_counter);
    // Strip universal prefix.
    let mut body = &sk;
    while let Formula::Forall(_, x) = body {
        body = x;
    }
    distribute(body)
}

fn distribute(f: &Formula) -> Vec<FolClause> {
    match f {
        Formula::Atom(a) => vec![FolClause::new(vec![FolLit::pos(a.clone())])],
        Formula::Not(x) => match x.as_ref() {
            Formula::Atom(a) => vec![FolClause::new(vec![FolLit::neg(a.clone())])],
            _ => unreachable!("NNF matrix: negation wraps atoms only"),
        },
        Formula::And(a, b) => {
            let mut out = distribute(a);
            out.extend(distribute(b));
            out
        }
        Formula::Or(a, b) => {
            let ca = distribute(a);
            let cb = distribute(b);
            let mut out = Vec::with_capacity(ca.len() * cb.len());
            for x in &ca {
                for y in &cb {
                    let mut lits = x.lits.clone();
                    lits.extend(y.lits.clone());
                    out.push(FolClause::new(lits));
                }
            }
            out
        }
        _ => unreachable!("matrix is quantifier-free"),
    }
}

/// Clausifies a whole problem: every formula is normalized with a shared
/// Skolem counter, clause duplicates are removed, and tautologies dropped.
pub fn clausify(formulas: &[Formula]) -> Vec<FolClause> {
    let mut counter = 0usize;
    let mut out: Vec<FolClause> = Vec::new();
    for f in formulas {
        for c in to_cnf_clauses(f, &mut counter) {
            let c = c.normalized();
            if !c.is_tautology() && !out.contains(&c) {
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Interpretation;
    use crate::parser::parse_formula;

    fn check_equivalent(original: &str, seed_count: u64) {
        let f = parse_formula(original).unwrap();
        let nnf = to_nnf(&f);
        let prenex = to_prenex(&f);
        for seed in 0..seed_count {
            for domain in 1..=3 {
                let interp = Interpretation::random_for(&f, domain, seed);
                let expect = interp.eval_closed(&f.universal_closure());
                assert_eq!(
                    interp.eval_closed(&nnf.universal_closure()),
                    interp.eval_closed(&f.universal_closure()),
                    "NNF changed semantics of {original} (domain {domain}, seed {seed})"
                );
                assert_eq!(
                    interp.eval_closed(&prenex),
                    expect,
                    "prenex changed semantics of {original} (domain {domain}, seed {seed})"
                );
            }
        }
    }

    #[test]
    fn nnf_and_prenex_preserve_semantics() {
        check_equivalent("forall X. (p(X) -> exists Y. q(X, Y))", 8);
        check_equivalent("~(forall X. (p(X) & ~q(X)))", 8);
        check_equivalent("(a <-> b) -> (exists X. p(X))", 8);
        check_equivalent("forall X. exists Y. (p(X) | ~q(Y)) & r(X)", 6);
    }

    #[test]
    fn nnf_has_no_implications_or_deep_negations() {
        fn well_formed(f: &Formula) -> bool {
            match f {
                Formula::Atom(_) => true,
                Formula::Not(x) => matches!(x.as_ref(), Formula::Atom(_)),
                Formula::And(a, b) | Formula::Or(a, b) => well_formed(a) && well_formed(b),
                Formula::Forall(_, x) | Formula::Exists(_, x) => well_formed(x),
                Formula::Implies(_, _) | Formula::Iff(_, _) => false,
            }
        }
        let f = parse_formula("~(a -> (b <-> ~c))").unwrap();
        assert!(well_formed(&to_nnf(&f)));
    }

    #[test]
    fn prenex_is_prenex() {
        fn quantifier_free(f: &Formula) -> bool {
            match f {
                Formula::Forall(_, _) | Formula::Exists(_, _) => false,
                Formula::Atom(_) => true,
                Formula::Not(x) => quantifier_free(x),
                Formula::And(a, b) | Formula::Or(a, b) => quantifier_free(a) && quantifier_free(b),
                Formula::Implies(a, b) | Formula::Iff(a, b) => {
                    quantifier_free(a) && quantifier_free(b)
                }
            }
        }
        let f = parse_formula("(forall X. p(X)) & (exists Y. q(Y))").unwrap();
        let mut body = to_prenex(&f);
        while let Formula::Forall(_, x) | Formula::Exists(_, x) = body {
            body = *x;
        }
        assert!(quantifier_free(&body));
    }

    #[test]
    fn skolemization_implies_original() {
        // ∀-closure of the Skolemized form entails the original: check
        // skolemized ⊨ original on random interpretations of the
        // skolemized symbols.
        let inputs = [
            "forall X. exists Y. q(X, Y)",
            "exists Y. forall X. r(X, Y)",
            "forall X. (p(X) -> exists Y. (q(X, Y) & p(Y)))",
        ];
        for input in inputs {
            let f = parse_formula(input).unwrap();
            let mut counter = 0;
            let sk = skolemize(&f, &mut counter);
            for seed in 0..10 {
                for domain in 1..=3 {
                    let interp = Interpretation::random_for(&sk, domain, seed);
                    if interp.eval_closed(&sk) {
                        assert!(
                            interp.eval_closed(&f.universal_closure()),
                            "skolemized true but original false: {input} (domain {domain}, seed {seed})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn skolem_constants_for_outer_existentials() {
        let f = parse_formula("exists X. p(X)").unwrap();
        let mut counter = 0;
        let sk = skolemize(&f, &mut counter);
        // No universals in scope: Skolem term is a constant.
        assert_eq!(format!("{sk}"), "p(sk0)");
    }

    #[test]
    fn cnf_clauses_shape() {
        let f = parse_formula("forall X. (p(X) -> (q(X) & r(X)))").unwrap();
        let clauses = clausify(&[f]);
        // (~p | q) and (~p | r).
        assert_eq!(clauses.len(), 2);
        assert!(clauses.iter().all(|c| c.lits.len() == 2));
    }

    #[test]
    fn clausify_drops_tautologies_and_duplicates() {
        let f = parse_formula("(p | ~p) & (q | q)").unwrap();
        let clauses = clausify(&[f]);
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].lits.len(), 1);
    }
}
