//! Terms, atoms, and substitutions.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A first-order term: a variable, or a function application (constants
/// are zero-arity applications).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable (uppercase identifier by convention).
    Var(String),
    /// A function application; constants have no arguments.
    App(String, Vec<Term>),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// A constant term.
    pub fn constant(name: impl Into<String>) -> Self {
        Term::App(name.into(), Vec::new())
    }

    /// A function application.
    pub fn app(name: impl Into<String>, args: Vec<Term>) -> Self {
        Term::App(name.into(), args)
    }

    /// `true` for variables.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Collects free variables into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// `true` when variable `v` occurs in this term.
    pub fn contains_var(&self, v: &str) -> bool {
        match self {
            Term::Var(x) => x == v,
            Term::App(_, args) => args.iter().any(|a| a.contains_var(v)),
        }
    }

    /// Applies a substitution (deep, with path shortening through chained
    /// bindings).
    pub fn substitute(&self, subst: &HashMap<String, Term>) -> Term {
        match self {
            Term::Var(v) => match subst.get(v) {
                Some(t) => t.substitute(subst),
                None => self.clone(),
            },
            Term::App(f, args) => {
                Term::App(f.clone(), args.iter().map(|a| a.substitute(subst)).collect())
            }
        }
    }

    /// The depth of the term (variables and constants have depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) => 1,
            Term::App(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::App(name, args) => {
                write!(f, "{name}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

/// An atomic formula: a predicate applied to terms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(pred: impl Into<String>, args: Vec<Term>) -> Self {
        Atom { pred: pred.into(), args }
    }

    /// Collects free variables into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        for a in &self.args {
            a.collect_vars(out);
        }
    }

    /// Applies a substitution to all arguments.
    pub fn substitute(&self, subst: &HashMap<String, Term>) -> Atom {
        Atom {
            pred: self.pred.clone(),
            args: self.args.iter().map(|a| a.substitute(subst)).collect(),
        }
    }

    /// `true` when the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        let mut vars = BTreeSet::new();
        self.collect_vars(&mut vars);
        vars.is_empty()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Term::App(self.pred.clone(), self.args.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round() {
        let t = Term::app("f", vec![Term::var("X"), Term::constant("a")]);
        assert_eq!(format!("{t}"), "f(X, a)");
        let atom = Atom::new("p", vec![t]);
        assert_eq!(format!("{atom}"), "p(f(X, a))");
    }

    #[test]
    fn substitution_is_deep() {
        let mut s = HashMap::new();
        s.insert("X".to_string(), Term::var("Y"));
        s.insert("Y".to_string(), Term::constant("a"));
        let t = Term::app("f", vec![Term::var("X")]);
        assert_eq!(t.substitute(&s), Term::app("f", vec![Term::constant("a")]));
    }

    #[test]
    fn collect_vars_and_ground() {
        let atom = Atom::new("p", vec![Term::var("X"), Term::app("f", vec![Term::var("Y")])]);
        let mut vars = BTreeSet::new();
        atom.collect_vars(&mut vars);
        assert_eq!(vars.len(), 2);
        assert!(!atom.is_ground());
        let ground = Atom::new("p", vec![Term::constant("a")]);
        assert!(ground.is_ground());
    }

    #[test]
    fn depth_and_contains() {
        let t = Term::app("f", vec![Term::app("g", vec![Term::var("X")])]);
        assert_eq!(t.depth(), 3);
        assert!(t.contains_var("X"));
        assert!(!t.contains_var("Y"));
    }
}
