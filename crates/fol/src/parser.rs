//! A small parser for first-order formulas.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! formula  := iff
//! iff      := implies ( "<->" implies )*
//! implies  := or ( "->" implies )?           (right associative)
//! or       := and ( "|" and )*
//! and      := unary ( "&" unary )*
//! unary    := "~" unary | "forall" VAR "." unary | "exists" VAR "." unary | primary
//! primary  := "(" formula ")" | atom
//! atom     := pred ( "(" term ("," term)* ")" )?
//! term     := VAR | name ( "(" term ("," term)* ")" )?
//! ```
//!
//! Identifiers starting with an uppercase letter are variables; lowercase
//! identifiers are predicates, functions, and constants.

use std::fmt;

use crate::formula::Formula;
use crate::term::{Atom, Term};

/// Errors produced by [`parse_formula`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a formula from text.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
///
/// ```
/// use reason_fol::parse_formula;
/// let f = parse_formula("forall X. (student(X) -> exists Y. (mentor(Y) & has_mentor(X, Y)))").unwrap();
/// assert_eq!(f.free_vars().len(), 0);
/// ```
pub fn parse_formula(text: &str) -> Result<Formula, ParseError> {
    let mut p = Parser { tokens: tokenize(text)?, pos: 0 };
    let f = p.formula()?;
    match p.peek() {
        None => Ok(f),
        Some(t) => Err(ParseError {
            message: format!("unexpected trailing token {:?}", t.kind),
            position: t.position,
        }),
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenKind {
    Ident(String),
    Variable(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Forall,
    Exists,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Token {
    kind: TokenKind,
    position: usize,
}

fn tokenize(text: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token { kind: TokenKind::LParen, position: start });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, position: start });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, position: start });
                i += 1;
            }
            '.' => {
                out.push(Token { kind: TokenKind::Dot, position: start });
                i += 1;
            }
            '~' | '!' => {
                out.push(Token { kind: TokenKind::Not, position: start });
                i += 1;
            }
            '&' => {
                out.push(Token { kind: TokenKind::And, position: start });
                i += 1;
            }
            '|' => {
                out.push(Token { kind: TokenKind::Or, position: start });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token { kind: TokenKind::Implies, position: start });
                    i += 2;
                } else {
                    return Err(ParseError { message: "expected ->".into(), position: start });
                }
            }
            '<' => {
                if text[i..].starts_with("<->") {
                    out.push(Token { kind: TokenKind::Iff, position: start });
                    i += 3;
                } else {
                    return Err(ParseError { message: "expected <->".into(), position: start });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &text[i..j];
                let kind = match word {
                    "forall" => TokenKind::Forall,
                    "exists" => TokenKind::Exists,
                    _ if word.starts_with(|c: char| c.is_ascii_uppercase()) => {
                        TokenKind::Variable(word.to_string())
                    }
                    _ => TokenKind::Ident(word.to_string()),
                };
                out.push(Token { kind, position: start });
                i = j;
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    position: start,
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(ParseError {
                message: format!("expected {kind:?}, found {:?}", t.kind),
                position: t.position,
            }),
            None => Err(ParseError {
                message: format!("expected {kind:?}, found end of input"),
                position: usize::MAX,
            }),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.implies()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Iff)) {
            self.next();
            let rhs = self.implies()?;
            f = Formula::iff(f, rhs);
        }
        Ok(f)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Implies)) {
            self.next();
            let rhs = self.implies()?; // right associative
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.and()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Or)) {
            self.next();
            let rhs = self.and()?;
            f = Formula::or(f, rhs);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.unary()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::And)) {
            self.next();
            let rhs = self.unary()?;
            f = Formula::and(f, rhs);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Not) => {
                self.next();
                Ok(Formula::not(self.unary()?))
            }
            Some(TokenKind::Forall) | Some(TokenKind::Exists) => {
                let quant = self.next().expect("peeked");
                let var = match self.next() {
                    Some(Token { kind: TokenKind::Variable(v), .. }) => v,
                    Some(t) => {
                        return Err(ParseError {
                            message: "expected a variable after quantifier".into(),
                            position: t.position,
                        })
                    }
                    None => {
                        return Err(ParseError {
                            message: "expected a variable after quantifier".into(),
                            position: usize::MAX,
                        })
                    }
                };
                self.expect(&TokenKind::Dot)?;
                let body = self.unary()?;
                Ok(match quant.kind {
                    TokenKind::Forall => Formula::forall(var, body),
                    _ => Formula::exists(var, body),
                })
            }
            Some(TokenKind::LParen) => {
                self.next();
                let f = self.formula()?;
                self.expect(&TokenKind::RParen)?;
                Ok(f)
            }
            Some(TokenKind::Ident(_)) => self.atom(),
            other => Err(ParseError {
                message: format!("unexpected token {other:?}"),
                position: self.peek().map_or(usize::MAX, |t| t.position),
            }),
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        let name = match self.next() {
            Some(Token { kind: TokenKind::Ident(n), .. }) => n,
            Some(t) => {
                return Err(ParseError {
                    message: "expected a predicate name".into(),
                    position: t.position,
                })
            }
            None => {
                return Err(ParseError {
                    message: "expected a predicate name".into(),
                    position: usize::MAX,
                })
            }
        };
        let mut args = Vec::new();
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
            self.next();
            loop {
                args.push(self.term()?);
                match self.next() {
                    Some(Token { kind: TokenKind::Comma, .. }) => continue,
                    Some(Token { kind: TokenKind::RParen, .. }) => break,
                    Some(t) => {
                        return Err(ParseError {
                            message: "expected , or )".into(),
                            position: t.position,
                        })
                    }
                    None => {
                        return Err(ParseError {
                            message: "unterminated argument list".into(),
                            position: usize::MAX,
                        })
                    }
                }
            }
        }
        Ok(Formula::Atom(Atom::new(name, args)))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Token { kind: TokenKind::Variable(v), .. }) => Ok(Term::var(v)),
            Some(Token { kind: TokenKind::Ident(name), .. }) => {
                if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
                    self.next();
                    let mut args = Vec::new();
                    loop {
                        args.push(self.term()?);
                        match self.next() {
                            Some(Token { kind: TokenKind::Comma, .. }) => continue,
                            Some(Token { kind: TokenKind::RParen, .. }) => break,
                            Some(t) => {
                                return Err(ParseError {
                                    message: "expected , or )".into(),
                                    position: t.position,
                                })
                            }
                            None => {
                                return Err(ParseError {
                                    message: "unterminated argument list".into(),
                                    position: usize::MAX,
                                })
                            }
                        }
                    }
                    Ok(Term::app(name, args))
                } else {
                    Ok(Term::constant(name))
                }
            }
            Some(t) => Err(ParseError { message: "expected a term".into(), position: t.position }),
            None => Err(ParseError { message: "expected a term".into(), position: usize::MAX }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        // "Every student has a mentor" (paper Sec. II-C).
        let f = parse_formula("forall X. (student(X) -> exists Y. (mentor(Y) & has_mentor(X, Y)))")
            .unwrap();
        assert!(f.free_vars().is_empty());
        assert_eq!(
            format!("{f}"),
            "forall X. (student(X) -> exists Y. (mentor(Y) & has_mentor(X, Y)))"
        );
    }

    #[test]
    fn precedence_and_associativity() {
        let f = parse_formula("a & b | c").unwrap();
        assert_eq!(format!("{f}"), "((a & b) | c)");
        let f = parse_formula("a -> b -> c").unwrap();
        assert_eq!(format!("{f}"), "(a -> (b -> c))");
        let f = parse_formula("~a & b").unwrap();
        assert_eq!(format!("{f}"), "(~a & b)");
    }

    #[test]
    fn parses_terms_with_functions() {
        let f = parse_formula("p(f(X, a), g(b))").unwrap();
        match f {
            Formula::Atom(atom) => {
                assert_eq!(atom.args.len(), 2);
                assert_eq!(format!("{}", atom.args[0]), "f(X, a)");
            }
            other => panic!("expected atom, got {other}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_formula("").is_err());
        assert!(parse_formula("p(").is_err());
        assert!(parse_formula("forall x. p(x)").is_err()); // lowercase quantified var
        assert!(parse_formula("p) (").is_err());
        assert!(parse_formula("a -").is_err());
        assert!(parse_formula("a b").is_err());
    }

    #[test]
    fn iff_parses() {
        let f = parse_formula("a <-> b").unwrap();
        assert_eq!(format!("{f}"), "(a <-> b)");
    }
}
