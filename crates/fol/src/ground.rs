//! Finite-domain grounding of clause sets to propositional SAT.
//!
//! LINC-style pipelines (paper Table I) hand logical problems to
//! propositional solvers after grounding. Function-free clause sets over a
//! finite constant universe ground to [`reason_sat::Cnf`]; the resulting
//! formula feeds REASON's SAT machinery (and the unified DAG frontend).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use reason_sat::{Clause as PropClause, Cnf, Lit, Var};

use crate::resolution::FolClause;
use crate::term::{Atom, Term};

/// Errors raised during grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundError {
    /// A clause contains a proper function application; grounding requires
    /// function-free clause sets.
    FunctionSymbol {
        /// The offending function name.
        name: String,
    },
    /// No constants available to populate the domain.
    EmptyDomain,
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::FunctionSymbol { name } => {
                write!(f, "cannot ground function symbol `{name}`")
            }
            GroundError::EmptyDomain => write!(f, "no constants available for grounding"),
        }
    }
}

impl std::error::Error for GroundError {}

/// The result of grounding: a propositional formula plus the atom table
/// mapping propositional variables back to ground atoms.
#[derive(Debug, Clone)]
pub struct Grounding {
    /// The propositional formula.
    pub cnf: Cnf,
    /// `atoms[v]` is the ground atom of propositional variable `v`.
    pub atoms: Vec<Atom>,
    index: HashMap<Atom, usize>,
}

impl Grounding {
    /// The propositional variable of a ground atom, if it appeared.
    pub fn var_of(&self, atom: &Atom) -> Option<Var> {
        self.index.get(atom).map(|&i| Var::new(i))
    }

    /// Interprets a propositional model as the set of true ground atoms.
    pub fn true_atoms<'a>(&'a self, model: &'a [bool]) -> impl Iterator<Item = &'a Atom> + 'a {
        self.atoms.iter().enumerate().filter(|(i, _)| model[*i]).map(|(_, a)| a)
    }
}

/// Grounds a function-free clause set over the constants appearing in it
/// (plus `extra_constants`).
///
/// # Errors
///
/// Returns [`GroundError::FunctionSymbol`] when a proper function
/// application occurs, or [`GroundError::EmptyDomain`] when a clause has
/// variables but no constants exist.
pub fn ground_clauses(
    clauses: &[FolClause],
    extra_constants: &[String],
) -> Result<Grounding, GroundError> {
    // Collect the constant universe and check function-freeness.
    let mut constants: BTreeSet<String> = extra_constants.iter().cloned().collect();
    for c in clauses {
        for l in &c.lits {
            for t in &l.atom.args {
                collect_constants(t, &mut constants)?;
            }
        }
    }
    let constants: Vec<String> = constants.into_iter().collect();

    let mut atoms: Vec<Atom> = Vec::new();
    let mut index: HashMap<Atom, usize> = HashMap::new();
    let mut prop_clauses: Vec<Vec<Lit>> = Vec::new();

    for clause in clauses {
        let mut vars = BTreeSet::new();
        for l in &clause.lits {
            l.atom.collect_vars(&mut vars);
        }
        let vars: Vec<String> = vars.into_iter().collect();
        if !vars.is_empty() && constants.is_empty() {
            return Err(GroundError::EmptyDomain);
        }
        let mut assignment = vec![0usize; vars.len()];
        loop {
            // Instantiate.
            let subst: HashMap<String, Term> = vars
                .iter()
                .zip(&assignment)
                .map(|(v, &c)| (v.clone(), Term::constant(constants[c].clone())))
                .collect();
            let mut lits: Vec<Lit> = Vec::with_capacity(clause.lits.len());
            for l in &clause.lits {
                let ground = l.atom.substitute(&subst);
                let next = atoms.len();
                let id = *index.entry(ground.clone()).or_insert_with(|| {
                    atoms.push(ground);
                    next
                });
                lits.push(Lit::new(Var::new(id), !l.positive));
            }
            prop_clauses.push(lits);
            // Advance the mixed-radix counter.
            if vars.is_empty() {
                break;
            }
            let mut pos = 0;
            loop {
                assignment[pos] += 1;
                if assignment[pos] < constants.len() {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
                if pos == vars.len() {
                    break;
                }
            }
            if pos == vars.len() {
                break;
            }
        }
    }

    let mut cnf = Cnf::new(atoms.len());
    for lits in prop_clauses {
        cnf.add_clause(PropClause::new(lits));
    }
    Ok(Grounding { cnf, atoms, index })
}

fn collect_constants(term: &Term, out: &mut BTreeSet<String>) -> Result<(), GroundError> {
    match term {
        Term::Var(_) => Ok(()),
        Term::App(name, args) => {
            if args.is_empty() {
                out.insert(name.clone());
                Ok(())
            } else {
                Err(GroundError::FunctionSymbol { name: name.clone() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use crate::transform::clausify;
    use reason_sat::{CdclSolver, Solution};

    fn clauses_of(texts: &[&str]) -> Vec<FolClause> {
        let formulas: Vec<_> = texts.iter().map(|t| parse_formula(t).unwrap()).collect();
        clausify(&formulas)
    }

    #[test]
    fn socrates_by_grounding() {
        // Axioms + negated goal must be UNSAT after grounding.
        let clauses =
            clauses_of(&["forall X. (man(X) -> mortal(X))", "man(socrates)", "~mortal(socrates)"]);
        let g = ground_clauses(&clauses, &[]).unwrap();
        assert!(!CdclSolver::new(&g.cnf).solve().is_sat());
    }

    #[test]
    fn satisfiable_theory_grounds_to_sat() {
        let clauses = clauses_of(&["man(socrates)", "forall X. (man(X) -> mortal(X))"]);
        let g = ground_clauses(&clauses, &[]).unwrap();
        match CdclSolver::new(&g.cnf).solve() {
            Solution::Sat(model) => {
                // mortal(socrates) must hold in every model... check via
                // the atom map: man(socrates) true forces mortal(socrates).
                let man = Atom::new("man", vec![Term::constant("socrates")]);
                let mortal = Atom::new("mortal", vec![Term::constant("socrates")]);
                let vm = g.var_of(&man).unwrap();
                let vo = g.var_of(&mortal).unwrap();
                if model[vm.index()] {
                    assert!(model[vo.index()]);
                }
            }
            Solution::Unsat => panic!("theory is satisfiable"),
        }
    }

    #[test]
    fn grounding_enumerates_the_domain() {
        // p(X) over constants {a, b} gives two unit clauses.
        let clauses = clauses_of(&["forall X. p(X)", "q(a)", "q(b)"]);
        let g = ground_clauses(&clauses, &[]).unwrap();
        // Atoms: p(a), p(b), q(a), q(b).
        assert_eq!(g.atoms.len(), 4);
        assert_eq!(g.cnf.num_clauses(), 4);
    }

    #[test]
    fn extra_constants_extend_domain() {
        let clauses = clauses_of(&["forall X. p(X)"]);
        let g = ground_clauses(&clauses, &["a".into(), "b".into(), "c".into()]).unwrap();
        assert_eq!(g.atoms.len(), 3);
    }

    #[test]
    fn function_symbols_are_rejected() {
        let clauses = clauses_of(&["p(f(a))"]);
        assert!(matches!(ground_clauses(&clauses, &[]), Err(GroundError::FunctionSymbol { .. })));
    }

    #[test]
    fn variables_without_constants_error() {
        let clauses = clauses_of(&["forall X. p(X)"]);
        assert!(matches!(ground_clauses(&clauses, &[]), Err(GroundError::EmptyDomain)));
    }

    #[test]
    fn true_atoms_reads_models() {
        let clauses = clauses_of(&["p(a)"]);
        let g = ground_clauses(&clauses, &[]).unwrap();
        if let Solution::Sat(model) = CdclSolver::new(&g.cnf).solve() {
            let names: Vec<String> = g.true_atoms(&model).map(|a| format!("{a}")).collect();
            assert_eq!(names, vec!["p(a)"]);
        } else {
            panic!("satisfiable");
        }
    }
}
