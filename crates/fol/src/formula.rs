//! Formula AST and finite-model semantics.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::term::{Atom, Term};

/// A first-order formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// An atomic predicate application.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Material implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional.
    Iff(Box<Formula>, Box<Formula>),
    /// Universal quantification.
    Forall(String, Box<Formula>),
    /// Existential quantification.
    Exists(String, Box<Formula>),
}

impl Formula {
    /// Convenience constructor for atoms.
    pub fn atom(pred: impl Into<String>, args: Vec<Term>) -> Self {
        Formula::Atom(Atom::new(pred, args))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Self {
        Formula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(a: Formula, b: Formula) -> Self {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: Formula, b: Formula) -> Self {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Implication.
    pub fn implies(a: Formula, b: Formula) -> Self {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Biconditional.
    pub fn iff(a: Formula, b: Formula) -> Self {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    /// Universal quantification.
    pub fn forall(var: impl Into<String>, f: Formula) -> Self {
        Formula::Forall(var.into(), Box::new(f))
    }

    /// Existential quantification.
    pub fn exists(var: impl Into<String>, f: Formula) -> Self {
        Formula::Exists(var.into(), Box::new(f))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<String> {
        fn go(f: &Formula, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
            match f {
                Formula::Atom(a) => {
                    let mut vars = BTreeSet::new();
                    a.collect_vars(&mut vars);
                    for v in vars {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
                Formula::Not(x) => go(x, bound, out),
                Formula::And(a, b)
                | Formula::Or(a, b)
                | Formula::Implies(a, b)
                | Formula::Iff(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Forall(v, x) | Formula::Exists(v, x) => {
                    bound.push(v.clone());
                    go(x, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Universally closes the formula over its free variables.
    pub fn universal_closure(&self) -> Formula {
        let mut f = self.clone();
        for v in self.free_vars().into_iter().rev() {
            f = Formula::forall(v, f);
        }
        f
    }

    /// All predicate names with their arities.
    pub fn predicates(&self) -> BTreeSet<(String, usize)> {
        fn go(f: &Formula, out: &mut BTreeSet<(String, usize)>) {
            match f {
                Formula::Atom(a) => {
                    out.insert((a.pred.clone(), a.args.len()));
                }
                Formula::Not(x) | Formula::Forall(_, x) | Formula::Exists(_, x) => go(x, out),
                Formula::And(a, b)
                | Formula::Or(a, b)
                | Formula::Implies(a, b)
                | Formula::Iff(a, b) => {
                    go(a, out);
                    go(b, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }

    /// All constant and function names with arities (functions with arity
    /// > 0, constants with arity 0).
    pub fn functions(&self) -> BTreeSet<(String, usize)> {
        fn term(t: &Term, out: &mut BTreeSet<(String, usize)>) {
            if let Term::App(f, args) = t {
                out.insert((f.clone(), args.len()));
                for a in args {
                    term(a, out);
                }
            }
        }
        fn go(f: &Formula, out: &mut BTreeSet<(String, usize)>) {
            match f {
                Formula::Atom(a) => {
                    for t in &a.args {
                        term(t, out);
                    }
                }
                Formula::Not(x) | Formula::Forall(_, x) | Formula::Exists(_, x) => go(x, out),
                Formula::And(a, b)
                | Formula::Or(a, b)
                | Formula::Implies(a, b)
                | Formula::Iff(a, b) => {
                    go(a, out);
                    go(b, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(x) => write!(f, "~{x}"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Implies(a, b) => write!(f, "({a} -> {b})"),
            Formula::Iff(a, b) => write!(f, "({a} <-> {b})"),
            Formula::Forall(v, x) => write!(f, "forall {v}. {x}"),
            Formula::Exists(v, x) => write!(f, "exists {v}. {x}"),
        }
    }
}

/// A finite interpretation: a domain `{0, .., n-1}`, tables for constants
/// and functions, and relations for predicates.
///
/// Serves as the semantics oracle in tests: logical transformations must
/// preserve truth values under every interpretation (or satisfiability,
/// for Skolemization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interpretation {
    domain_size: usize,
    /// `functions[(name, arity)]` maps argument tuples (mixed-radix index)
    /// to domain elements.
    functions: HashMap<(String, usize), Vec<usize>>,
    /// `predicates[(name, arity)]` holds the characteristic vector over
    /// argument tuples.
    predicates: HashMap<(String, usize), Vec<bool>>,
}

impl Interpretation {
    /// Creates an empty interpretation over a domain of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `domain_size == 0`.
    pub fn new(domain_size: usize) -> Self {
        assert!(domain_size > 0, "domain must be non-empty");
        Interpretation { domain_size, functions: HashMap::new(), predicates: HashMap::new() }
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Sets a function (or constant, with arity 0) table. The table length
    /// must be `domain_size^arity`.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch or out-of-domain value.
    pub fn set_function(&mut self, name: impl Into<String>, arity: usize, table: Vec<usize>) {
        assert_eq!(table.len(), self.domain_size.pow(arity as u32), "table length mismatch");
        assert!(table.iter().all(|&v| v < self.domain_size), "value out of domain");
        self.functions.insert((name.into(), arity), table);
    }

    /// Sets a predicate relation. The table length must be
    /// `domain_size^arity`.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_predicate(&mut self, name: impl Into<String>, arity: usize, table: Vec<bool>) {
        assert_eq!(table.len(), self.domain_size.pow(arity as u32), "table length mismatch");
        self.predicates.insert((name.into(), arity), table);
    }

    /// Generates a random interpretation covering every symbol of
    /// `formula`, deterministically from `seed`.
    pub fn random_for(formula: &Formula, domain_size: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut interp = Interpretation::new(domain_size);
        for (name, arity) in formula.functions() {
            let len = domain_size.pow(arity as u32);
            let table: Vec<usize> = (0..len).map(|_| rng.gen_range(0..domain_size)).collect();
            interp.set_function(name, arity, table);
        }
        for (name, arity) in formula.predicates() {
            let len = domain_size.pow(arity as u32);
            let table: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
            interp.set_predicate(name, arity, table);
        }
        interp
    }

    fn tuple_index(&self, args: &[usize]) -> usize {
        args.iter().fold(0, |acc, &a| acc * self.domain_size + a)
    }

    /// Evaluates a term under a variable environment.
    ///
    /// # Panics
    ///
    /// Panics on unbound variables or missing function tables.
    pub fn eval_term(&self, term: &Term, env: &HashMap<String, usize>) -> usize {
        match term {
            Term::Var(v) => *env.get(v).unwrap_or_else(|| panic!("unbound variable {v}")),
            Term::App(f, args) => {
                let vals: Vec<usize> = args.iter().map(|a| self.eval_term(a, env)).collect();
                let table = self
                    .functions
                    .get(&(f.clone(), args.len()))
                    .unwrap_or_else(|| panic!("no table for function {f}/{}", args.len()));
                table[self.tuple_index(&vals)]
            }
        }
    }

    /// Evaluates a closed formula (or one whose free variables are bound by
    /// `env`).
    ///
    /// # Panics
    ///
    /// Panics on unbound variables or missing tables.
    pub fn eval(&self, formula: &Formula, env: &mut HashMap<String, usize>) -> bool {
        match formula {
            Formula::Atom(a) => {
                let vals: Vec<usize> = a.args.iter().map(|t| self.eval_term(t, env)).collect();
                let table =
                    self.predicates.get(&(a.pred.clone(), a.args.len())).unwrap_or_else(|| {
                        panic!("no table for predicate {}/{}", a.pred, a.args.len())
                    });
                table[self.tuple_index(&vals)]
            }
            Formula::Not(x) => !self.eval(x, env),
            Formula::And(a, b) => self.eval(a, env) && self.eval(b, env),
            Formula::Or(a, b) => self.eval(a, env) || self.eval(b, env),
            Formula::Implies(a, b) => !self.eval(a, env) || self.eval(b, env),
            Formula::Iff(a, b) => self.eval(a, env) == self.eval(b, env),
            Formula::Forall(v, x) => {
                let saved = env.get(v).copied();
                let ok = (0..self.domain_size).all(|d| {
                    env.insert(v.clone(), d);
                    self.eval(x, env)
                });
                restore(env, v, saved);
                ok
            }
            Formula::Exists(v, x) => {
                let saved = env.get(v).copied();
                let ok = (0..self.domain_size).any(|d| {
                    env.insert(v.clone(), d);
                    self.eval(x, env)
                });
                restore(env, v, saved);
                ok
            }
        }
    }

    /// Evaluates a closed formula.
    pub fn eval_closed(&self, formula: &Formula) -> bool {
        self.eval(formula, &mut HashMap::new())
    }
}

fn restore(env: &mut HashMap<String, usize>, var: &str, saved: Option<usize>) {
    match saved {
        Some(v) => {
            env.insert(var.to_string(), v);
        }
        None => {
            env.remove(var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_quantifiers_over_finite_domain() {
        // p holds of element 0 only; domain {0, 1}.
        let mut interp = Interpretation::new(2);
        interp.set_predicate("p", 1, vec![true, false]);
        let exists = Formula::exists("X", Formula::atom("p", vec![Term::var("X")]));
        let forall = Formula::forall("X", Formula::atom("p", vec![Term::var("X")]));
        assert!(interp.eval_closed(&exists));
        assert!(!interp.eval_closed(&forall));
    }

    #[test]
    fn eval_functions_compose() {
        // f = successor mod 2; p = {1}. p(f(0)) holds.
        let mut interp = Interpretation::new(2);
        interp.set_function("f", 1, vec![1, 0]);
        interp.set_function("zero", 0, vec![0]);
        interp.set_predicate("p", 1, vec![false, true]);
        let f = Formula::atom("p", vec![Term::app("f", vec![Term::constant("zero")])]);
        assert!(interp.eval_closed(&f));
    }

    #[test]
    fn free_vars_respect_binding() {
        let f = Formula::forall(
            "X",
            Formula::or(
                Formula::atom("p", vec![Term::var("X")]),
                Formula::atom("q", vec![Term::var("Y")]),
            ),
        );
        let fv = f.free_vars();
        assert_eq!(fv, BTreeSet::from(["Y".to_string()]));
        assert!(f.universal_closure().free_vars().is_empty());
    }

    #[test]
    fn symbol_collection() {
        let f = Formula::implies(
            Formula::atom("p", vec![Term::app("f", vec![Term::constant("a")])]),
            Formula::atom("q", vec![]),
        );
        assert_eq!(f.predicates(), BTreeSet::from([("p".to_string(), 1), ("q".to_string(), 0)]));
        assert_eq!(f.functions(), BTreeSet::from([("f".to_string(), 1), ("a".to_string(), 0)]));
    }

    #[test]
    fn random_interpretation_is_deterministic_and_total() {
        let f = Formula::forall(
            "X",
            Formula::implies(
                Formula::atom("p", vec![Term::var("X")]),
                Formula::atom("q", vec![Term::app("f", vec![Term::var("X")])]),
            ),
        );
        let a = Interpretation::random_for(&f, 3, 7);
        let b = Interpretation::random_for(&f, 3, 7);
        assert_eq!(a, b);
        // Evaluation must not panic: all symbols are covered.
        let _ = a.eval_closed(&f);
    }

    #[test]
    fn display_forms() {
        let f = Formula::forall(
            "X",
            Formula::implies(
                Formula::atom("man", vec![Term::var("X")]),
                Formula::atom("mortal", vec![Term::var("X")]),
            ),
        );
        assert_eq!(format!("{f}"), "forall X. (man(X) -> mortal(X))");
    }
}
