//! Resolution theorem proving.
//!
//! A refutation prover in the style the paper attributes to its FOL
//! kernels: "formulas are encoded as DAGs where inference rules act as
//! graph transformation operators that derive contradictions" (Sec. IV-A).
//! The engine is a given-clause loop with binary resolution, factoring,
//! tautology deletion, forward subsumption, and a set-of-support strategy
//! seeded by the negated conjecture.

use std::collections::HashMap;

use crate::formula::Formula;
use crate::term::{Atom, Term};
use crate::transform::clausify;
use crate::unify::{unify_atoms, Substitution};

/// A signed atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FolLit {
    /// `true` for a positive literal.
    pub positive: bool,
    /// The atom.
    pub atom: Atom,
}

impl FolLit {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Self {
        FolLit { positive: true, atom }
    }

    /// A negative literal.
    pub fn neg(atom: Atom) -> Self {
        FolLit { positive: false, atom }
    }

    /// The complementary literal.
    pub fn negated(&self) -> FolLit {
        FolLit { positive: !self.positive, atom: self.atom.clone() }
    }

    fn substitute(&self, s: &Substitution) -> FolLit {
        FolLit { positive: self.positive, atom: s.apply_atom(&self.atom) }
    }
}

impl std::fmt::Display for FolLit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.positive {
            write!(f, "{}", self.atom)
        } else {
            write!(f, "~{}", self.atom)
        }
    }
}

/// A first-order clause: a disjunction of literals with implicitly
/// universally quantified variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FolClause {
    /// The literals.
    pub lits: Vec<FolLit>,
}

impl FolClause {
    /// Creates a clause.
    pub fn new(lits: Vec<FolLit>) -> Self {
        FolClause { lits }
    }

    /// The empty clause (falsum).
    pub fn empty() -> Self {
        FolClause { lits: Vec::new() }
    }

    /// `true` when this is the empty clause.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// `true` when the clause contains complementary literals.
    pub fn is_tautology(&self) -> bool {
        self.lits.iter().any(|l| self.lits.contains(&l.negated()))
    }

    /// Sorts and deduplicates literals.
    pub fn normalized(&self) -> FolClause {
        let mut lits = self.lits.clone();
        lits.sort_by_key(|l| format!("{l}"));
        lits.dedup();
        FolClause { lits }
    }

    /// Renames all variables with a fresh suffix (standardizing apart
    /// before resolving).
    pub fn rename(&self, suffix: usize) -> FolClause {
        let mut vars = std::collections::BTreeSet::new();
        for l in &self.lits {
            l.atom.collect_vars(&mut vars);
        }
        let subst: HashMap<String, Term> = vars
            .into_iter()
            .map(|v| {
                let fresh = format!("{v}_{suffix}");
                (v, Term::var(fresh))
            })
            .collect();
        FolClause {
            lits: self
                .lits
                .iter()
                .map(|l| FolLit { positive: l.positive, atom: l.atom.substitute(&subst) })
                .collect(),
        }
    }

    /// Symbol-count weight for clause selection (lighter first).
    pub fn weight(&self) -> usize {
        fn term_weight(t: &Term) -> usize {
            match t {
                Term::Var(_) => 1,
                Term::App(_, args) => 1 + args.iter().map(term_weight).sum::<usize>(),
            }
        }
        self.lits.iter().map(|l| 1 + l.atom.args.iter().map(term_weight).sum::<usize>()).sum()
    }

    /// `true` when this clause subsumes `other`: some substitution maps
    /// every literal of `self` to a literal of `other`.
    pub fn subsumes(&self, other: &FolClause) -> bool {
        if self.lits.len() > other.lits.len() {
            return false;
        }
        fn matches(pattern: &Term, target: &Term, binding: &mut HashMap<String, Term>) -> bool {
            match (pattern, target) {
                (Term::Var(v), t) => match binding.get(v) {
                    Some(bound) => bound == t,
                    None => {
                        binding.insert(v.clone(), t.clone());
                        true
                    }
                },
                (Term::App(f, fa), Term::App(g, ga)) => {
                    f == g
                        && fa.len() == ga.len()
                        && fa.iter().zip(ga).all(|(p, t)| matches(p, t, binding))
                }
                _ => false,
            }
        }
        fn go(pattern: &[FolLit], target: &[FolLit], binding: &mut HashMap<String, Term>) -> bool {
            let Some(first) = pattern.first() else { return true };
            for t in target {
                if t.positive != first.positive || t.atom.pred != first.atom.pred {
                    continue;
                }
                if t.atom.args.len() != first.atom.args.len() {
                    continue;
                }
                let snapshot = binding.clone();
                if first.atom.args.iter().zip(&t.atom.args).all(|(p, g)| matches(p, g, binding))
                    && go(&pattern[1..], target, binding)
                {
                    return true;
                }
                *binding = snapshot;
            }
            false
        }
        go(&self.lits, &other.lits, &mut HashMap::new())
    }
}

impl std::fmt::Display for FolClause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊥");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// Outcome of a proof attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofResult {
    /// The goal follows from the axioms; `steps` clauses were generated.
    Proved {
        /// Clauses generated before finding the empty clause.
        steps: usize,
    },
    /// The search space was saturated without refutation: the goal does
    /// not follow (for a complete strategy).
    Saturated {
        /// Clauses retained at saturation.
        clauses: usize,
    },
    /// The step limit was exhausted before an answer.
    Exhausted {
        /// The configured limit.
        limit: usize,
    },
}

/// Attempts to prove `goal` from `axioms` by refutation, generating at
/// most `max_steps` clauses.
///
/// ```
/// use reason_fol::{parse_formula, prove, ProofResult};
/// let axioms = vec![parse_formula("forall X. (p(X) -> q(X))").unwrap(),
///                   parse_formula("p(a)").unwrap()];
/// let goal = parse_formula("q(a)").unwrap();
/// assert!(matches!(prove(&axioms, &goal, 500), ProofResult::Proved { .. }));
/// ```
pub fn prove(axioms: &[Formula], goal: &Formula, max_steps: usize) -> ProofResult {
    let mut formulas: Vec<Formula> = axioms.to_vec();
    formulas.push(Formula::not(goal.universal_closure()));
    let clauses = clausify(&formulas);
    refute(&clauses, max_steps)
}

/// Attempts to derive the empty clause from a clause set.
pub fn refute(clauses: &[FolClause], max_steps: usize) -> ProofResult {
    if clauses.iter().any(FolClause::is_empty) {
        return ProofResult::Proved { steps: 0 };
    }
    let mut usable: Vec<FolClause> = Vec::new();
    let mut sos: Vec<FolClause> = clauses.to_vec();
    // Lighter clauses first.
    sos.sort_by_key(FolClause::weight);
    let mut generated = 0usize;
    let mut rename_counter = 0usize;

    while let Some(pos) = pick_lightest(&sos) {
        let given = sos.remove(pos);
        rename_counter += 1;
        let given = given.rename(rename_counter);
        // Factoring of the given clause.
        let mut new_clauses: Vec<FolClause> = factors(&given);
        // Binary resolution against usable ∪ {given}.
        for other in usable.iter().chain(std::iter::once(&given)) {
            new_clauses.extend(resolvents(&given, other));
        }
        usable.push(given);

        for c in new_clauses {
            generated += 1;
            if generated > max_steps {
                return ProofResult::Exhausted { limit: max_steps };
            }
            let c = c.normalized();
            if c.is_empty() {
                return ProofResult::Proved { steps: generated };
            }
            if c.is_tautology() {
                continue;
            }
            if usable.iter().chain(sos.iter()).any(|u| u.subsumes(&c)) {
                continue;
            }
            sos.push(c);
        }
    }
    ProofResult::Saturated { clauses: usable.len() }
}

fn pick_lightest(sos: &[FolClause]) -> Option<usize> {
    sos.iter().enumerate().min_by_key(|(_, c)| c.weight()).map(|(i, _)| i)
}

/// All binary resolvents of two clauses (assumed standardized apart).
fn resolvents(a: &FolClause, b: &FolClause) -> Vec<FolClause> {
    let mut out = Vec::new();
    for (i, la) in a.lits.iter().enumerate() {
        for (j, lb) in b.lits.iter().enumerate() {
            if la.positive == lb.positive {
                continue;
            }
            let Some(subst) = unify_atoms(&la.atom, &lb.atom) else { continue };
            let mut lits: Vec<FolLit> = Vec::with_capacity(a.lits.len() + b.lits.len() - 2);
            for (k, l) in a.lits.iter().enumerate() {
                if k != i {
                    lits.push(l.substitute(&subst));
                }
            }
            for (k, l) in b.lits.iter().enumerate() {
                if k != j {
                    lits.push(l.substitute(&subst));
                }
            }
            out.push(FolClause::new(lits));
        }
    }
    out
}

/// All factors of a clause (unifying pairs of same-sign literals).
fn factors(c: &FolClause) -> Vec<FolClause> {
    let mut out = Vec::new();
    for i in 0..c.lits.len() {
        for j in (i + 1)..c.lits.len() {
            if c.lits[i].positive != c.lits[j].positive {
                continue;
            }
            let Some(subst) = unify_atoms(&c.lits[i].atom, &c.lits[j].atom) else { continue };
            let lits: Vec<FolLit> = c
                .lits
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != j)
                .map(|(_, l)| l.substitute(&subst))
                .collect();
            out.push(FolClause::new(lits));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn f(s: &str) -> Formula {
        parse_formula(s).unwrap()
    }

    #[test]
    fn socrates() {
        let axioms = vec![f("forall X. (man(X) -> mortal(X))"), f("man(socrates)")];
        assert!(matches!(prove(&axioms, &f("mortal(socrates)"), 1000), ProofResult::Proved { .. }));
    }

    #[test]
    fn unprovable_goal_saturates() {
        let axioms = vec![f("man(socrates)")];
        let result = prove(&axioms, &f("mortal(socrates)"), 1000);
        assert!(matches!(result, ProofResult::Saturated { .. }), "got {result:?}");
    }

    #[test]
    fn transitivity_chain() {
        let axioms = vec![
            f("forall X. forall Y. forall Z. ((le(X, Y) & le(Y, Z)) -> le(X, Z))"),
            f("le(a, b)"),
            f("le(b, c)"),
            f("le(c, d)"),
        ];
        assert!(matches!(prove(&axioms, &f("le(a, d)"), 20_000), ProofResult::Proved { .. }));
    }

    #[test]
    fn existential_goal() {
        let axioms = vec![f("p(a)"), f("forall X. (p(X) -> q(f(X)))")];
        assert!(matches!(prove(&axioms, &f("exists Y. q(Y)"), 5000), ProofResult::Proved { .. }));
    }

    #[test]
    fn mentor_example_from_paper() {
        // "Every student has a mentor"; alice is a student, so someone is
        // alice's mentor.
        let axioms = vec![
            f("forall X. (student(X) -> exists Y. (mentor(Y) & has_mentor(X, Y)))"),
            f("student(alice)"),
        ];
        assert!(matches!(
            prove(&axioms, &f("exists Y. has_mentor(alice, Y)"), 5000),
            ProofResult::Proved { .. }
        ));
    }

    #[test]
    fn subsumption_basics() {
        let p_x = FolClause::new(vec![FolLit::pos(Atom::new("p", vec![Term::var("X")]))]);
        let p_a_or_q = FolClause::new(vec![
            FolLit::pos(Atom::new("p", vec![Term::constant("a")])),
            FolLit::pos(Atom::new("q", vec![])),
        ]);
        assert!(p_x.subsumes(&p_a_or_q));
        assert!(!p_a_or_q.subsumes(&p_x));
        // Consistency: p(X, X) does not subsume p(a, b).
        let pxx =
            FolClause::new(vec![FolLit::pos(Atom::new("p", vec![Term::var("X"), Term::var("X")]))]);
        let pab = FolClause::new(vec![FolLit::pos(Atom::new(
            "p",
            vec![Term::constant("a"), Term::constant("b")],
        ))]);
        assert!(!pxx.subsumes(&pab));
    }

    #[test]
    fn factoring_enables_proofs() {
        // p(X) | p(a) with ~p(a): needs factoring or double resolution.
        let clauses = vec![
            FolClause::new(vec![
                FolLit::pos(Atom::new("p", vec![Term::var("X")])),
                FolLit::pos(Atom::new("p", vec![Term::constant("a")])),
            ]),
            FolClause::new(vec![FolLit::neg(Atom::new("p", vec![Term::constant("a")]))]),
        ];
        assert!(matches!(refute(&clauses, 1000), ProofResult::Proved { .. }));
    }

    #[test]
    fn exhaustion_is_reported() {
        // A generative axiom set that never terminates: step limit hits.
        let axioms = vec![f("p(a)"), f("forall X. (p(X) -> p(f(X)))")];
        let result = prove(&axioms, &f("q(a)"), 50);
        assert!(
            matches!(result, ProofResult::Exhausted { .. } | ProofResult::Saturated { .. }),
            "got {result:?}"
        );
    }

    #[test]
    fn contradictory_axioms_prove_anything() {
        let axioms = vec![f("p(a)"), f("~p(a)")];
        assert!(matches!(prove(&axioms, &f("q(b)"), 1000), ProofResult::Proved { .. }));
    }
}
