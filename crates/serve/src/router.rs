//! Adaptive exact/approx/predicted query routing.
//!
//! Every admitted [`Query`] carries an optional deadline. The
//! [`QueryRouter`] predicts what the exact compiled path would cost —
//! from the knowledge base's live [`KbTelemetry`]: measured warm-eval
//! latency when the artifact is hot, predicted (or last measured)
//! compile latency when it is cold — and walks the ladder:
//!
//! 1. **Exact** — compiled-circuit evaluation; always taken when there
//!    is no deadline or the predicted cost fits.
//! 2. **Approx** — anytime Monte-Carlo bounds with the sample budget
//!    trimmed to the remaining deadline (probability-valued queries
//!    only).
//! 3. **Predicted** — one forward pass of the knowledge base's trained
//!    prediction network: microseconds, no bounds, the last resort
//!    under sub-millisecond deadlines.
//!
//! Distribution- and assignment-valued queries ([`QueryKind::Marginal`],
//! [`QueryKind::Mpe`]) have no approximate rung yet and always route
//! exact. Cost constants start from a coarse fit of the committed
//! `BENCH_pc.json` compile sweep and are replaced by measurements as
//! the engine serves traffic — the routing is *adaptive*, not static.
//!
//! The sharded front-end ([`crate::cluster`]) extends the same ladder
//! into pre-dispatch **admission control**: [`QueryRouter::admit`]
//! subtracts the shard's modeled queue backlog from the deadline
//! budget before walking the rungs, and when the backlog alone has
//! consumed the deadline it returns [`Admission::Reject`] — the query
//! is refused up front instead of being dispatched into a guaranteed
//! miss.

use std::time::Duration;

use reason_pc::Evidence;

/// What a query asks of its knowledge base.
#[derive(Debug, Clone)]
pub enum QueryKind {
    /// The weighted model count `Pr[φ]`.
    Wmc,
    /// `Pr[φ ∧ e]` for partial evidence `e`.
    Probability(Evidence),
    /// `Pr[e | φ]`.
    Posterior(Evidence),
    /// The marginal distribution of one variable given the evidence.
    Marginal(Evidence, usize),
    /// Most probable explanation completing the evidence.
    Mpe(Evidence),
}

impl QueryKind {
    /// How many circuit evaluations the exact path costs.
    pub(crate) fn exact_evals(&self) -> f64 {
        match self {
            // One sweep per value plus the normalizer.
            QueryKind::Marginal(..) => 3.0,
            _ => 1.0,
        }
    }

    /// `true` for the probability-valued kinds the approximate and
    /// predicted rungs can answer.
    pub(crate) fn degradable(&self) -> bool {
        matches!(self, QueryKind::Wmc | QueryKind::Probability(_) | QueryKind::Posterior(_))
    }
}

/// One admitted query: a kind plus an optional latency deadline.
#[derive(Debug, Clone)]
pub struct Query {
    /// What is asked.
    pub kind: QueryKind,
    /// Answer-by budget; `None` means "exact, whatever it costs".
    pub deadline: Option<Duration>,
}

impl Query {
    /// A deadline-free (always-exact) query.
    pub fn exact(kind: QueryKind) -> Self {
        Query { kind, deadline: None }
    }

    /// A deadline-bound query.
    pub fn with_deadline(kind: QueryKind, deadline: Duration) -> Self {
        Query { kind, deadline: Some(deadline) }
    }
}

/// Where the router sent a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Exact compiled evaluation.
    Exact,
    /// Anytime Monte-Carlo bounds under a trimmed sample budget.
    Approx {
        /// The deadline-fitted sample budget.
        samples: u64,
    },
    /// One forward pass of the trained prediction network.
    Predicted,
}

/// A pre-dispatch admission verdict (see [`QueryRouter::admit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Dispatch on the given route.
    Admit(Route),
    /// Refused before dispatch: the modeled queue backlog alone
    /// exceeds the query's effective deadline budget, so no rung —
    /// not even the prediction network — could answer in time.
    Reject {
        /// Modeled seconds of shard backlog at decision time.
        backlog_s: f64,
    },
}

impl Admission {
    /// The admitted route, or `None` when rejected.
    pub fn route(&self) -> Option<Route> {
        match self {
            Admission::Admit(route) => Some(*route),
            Admission::Reject { .. } => None,
        }
    }
}

/// Router knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Fraction of the deadline a predicted cost must fit inside —
    /// head-room against prediction error (default 0.5).
    pub deadline_safety: f64,
    /// Fewest samples an approximate answer is worth (default 512);
    /// below this the ladder falls through to the prediction network.
    pub min_approx_samples: u64,
    /// Sample budget cap, so lax deadlines don't buy pointless work
    /// (default 65 536).
    pub max_approx_samples: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { deadline_safety: 0.5, min_approx_samples: 512, max_approx_samples: 1 << 16 }
    }
}

/// The live cost picture of one knowledge base, maintained by the
/// serving engine.
#[derive(Debug, Clone, Copy)]
pub struct KbTelemetry {
    /// `true` when the compiled artifact is hot in the store.
    pub compiled: bool,
    /// Predicted cold-compile seconds: the coarse `BENCH_pc.json` fit
    /// before the first compile, the last measured compile after.
    pub compile_s: f64,
    /// Measured warm exact-evaluation seconds (EWMA).
    pub eval_s: f64,
    /// Measured approximate-sampling seconds per sample (EWMA).
    pub sample_s: f64,
    /// `true` when a trained prediction network is available.
    pub has_predictor: bool,
}

impl KbTelemetry {
    /// The pre-measurement prior for a formula of `num_vars` variables
    /// and `num_clauses` clauses: compile cost from a coarse
    /// exponential fit of the committed `BENCH_pc.json` random-3-SAT
    /// ladder (~124 µs at n = 12 doubling roughly every 3.6 variables),
    /// eval cost proportional to expected circuit size, sampling cost
    /// proportional to clause count.
    pub fn prior(num_vars: usize, num_clauses: usize) -> Self {
        let n = num_vars as f64;
        KbTelemetry {
            compiled: false,
            compile_s: 1.2e-4 * 1.21f64.powf((n - 12.0).max(0.0)),
            eval_s: 2e-7 * n.max(1.0),
            sample_s: 5e-8 * (num_clauses.max(1) as f64),
            has_predictor: false,
        }
    }

    /// Predicted seconds for the exact path of `kind` right now:
    /// (cold ? compile : 0) + evals × warm-eval.
    pub fn exact_cost(&self, kind: &QueryKind) -> f64 {
        let compile = if self.compiled { 0.0 } else { self.compile_s };
        compile + kind.exact_evals() * self.eval_s
    }

    /// The state as `(field, value)` pairs — the serializable snapshot
    /// of the router's EWMA cost model (`reason-eval` emits these as
    /// JSON next to every traffic sweep). Booleans encode as 0/1; the
    /// seconds fields are the live EWMAs the ladder judges with.
    pub fn snapshot(&self) -> [(&'static str, f64); 5] {
        [
            ("compiled", f64::from(u8::from(self.compiled))),
            ("compile_s", self.compile_s),
            ("eval_s", self.eval_s),
            ("sample_s", self.sample_s),
            ("has_predictor", f64::from(u8::from(self.has_predictor))),
        ]
    }
}

/// Per-route admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Queries routed to exact evaluation.
    pub exact: u64,
    /// Queries routed to anytime bounds.
    pub approx: u64,
    /// Queries routed to the prediction network.
    pub predicted: u64,
    /// Queries pushed off the exact rung by their deadline.
    pub deadline_fallbacks: u64,
}

/// The admission router (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct QueryRouter {
    config: RouterConfig,
    stats: RouterStats,
}

impl QueryRouter {
    /// A router with the given knobs.
    pub fn new(config: RouterConfig) -> Self {
        QueryRouter { config, stats: RouterStats::default() }
    }

    /// The knobs.
    pub fn config(&self) -> RouterConfig {
        self.config
    }

    /// Admission counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Picks the route for one query given its knowledge base's live
    /// telemetry, recording the decision in the counters.
    pub fn route(&mut self, query: &Query, telemetry: &KbTelemetry) -> Route {
        let route = self.decide(query, telemetry);
        match route {
            Route::Exact => self.stats.exact += 1,
            Route::Approx { .. } => {
                self.stats.approx += 1;
                self.stats.deadline_fallbacks += 1;
            }
            Route::Predicted => {
                self.stats.predicted += 1;
                self.stats.deadline_fallbacks += 1;
            }
        }
        route
    }

    /// Pre-dispatch admission for the sharded front-end: the same
    /// ladder as [`route`](Self::route), but the effective budget is
    /// the deadline minus `backlog_s` — the shard's modeled queue wait
    /// at decision time. A deadlined query whose budget the backlog
    /// has already consumed is [`Admission::Reject`]ed outright
    /// (dropping *before* dispatch, not after a miss); deadline-free
    /// queries are always admitted exact. Deterministic: no counters
    /// are touched and only the arguments feed the decision, so a
    /// replayed workload re-derives the identical admission sequence.
    pub fn admit(&self, query: &Query, t: &KbTelemetry, backlog_s: f64) -> Admission {
        self.admit_explained(query, t, backlog_s).0
    }

    /// [`admit`](Self::admit), also naming *why* the ladder landed
    /// where it did. The reason is a stable label
    /// (`no_deadline` / `exact_fit` / `not_degradable` /
    /// `deadline_approx` / `deadline_predicted` / `approx_floor` /
    /// `backlog_reject`) so instrumented callers can expose degrade
    /// decisions as labeled metrics without re-deriving the ladder.
    pub fn admit_explained(
        &self,
        query: &Query,
        t: &KbTelemetry,
        backlog_s: f64,
    ) -> (Admission, &'static str) {
        let Some(deadline) = query.deadline else {
            return (Admission::Admit(Route::Exact), "no_deadline");
        };
        let budget_s = deadline.as_secs_f64() * self.config.deadline_safety - backlog_s.max(0.0);
        if budget_s <= 0.0 {
            return (Admission::Reject { backlog_s }, "backlog_reject");
        }
        let (route, reason) = self.ladder(query, t, budget_s);
        (Admission::Admit(route), reason)
    }

    /// [`admit_explained`](Self::admit_explained) with the exact rung
    /// masked off — the step the fault-tolerant cluster takes when
    /// exact capacity is lost (transient compile failures, dead
    /// shards): the query walks the remaining anytime-bounds →
    /// prediction ladder instead of erroring. Deadline-free queries get
    /// the full sample cap; deadlined ones the backlog-trimmed fit.
    /// Returns `None` for kinds with no degraded rung
    /// ([`QueryKind::Marginal`]/[`QueryKind::Mpe`]), which must wait
    /// for exact capacity instead.
    pub fn admit_under_failure(
        &self,
        query: &Query,
        t: &KbTelemetry,
        backlog_s: f64,
    ) -> Option<(Admission, &'static str)> {
        if !query.kind.degradable() {
            return None;
        }
        let budget_s = match query.deadline {
            None => f64::INFINITY,
            Some(d) => d.as_secs_f64() * self.config.deadline_safety - backlog_s.max(0.0),
        };
        if budget_s <= 0.0 {
            return Some((Admission::Reject { backlog_s }, "backlog_reject"));
        }
        let samples = if budget_s.is_finite() {
            ((budget_s / t.sample_s.max(1e-12)) as u64).max(1)
        } else {
            self.config.max_approx_samples.max(1)
        };
        if samples >= self.config.min_approx_samples {
            let samples = samples.min(self.config.max_approx_samples).max(1);
            return Some((Admission::Admit(Route::Approx { samples }), "fault_approx"));
        }
        if t.has_predictor {
            return Some((Admission::Admit(Route::Predicted), "fault_predicted"));
        }
        Some((
            Admission::Admit(Route::Approx { samples: self.config.min_approx_samples.max(1) }),
            "fault_approx_floor",
        ))
    }

    fn decide(&self, query: &Query, t: &KbTelemetry) -> Route {
        let Some(deadline) = query.deadline else {
            return Route::Exact;
        };
        self.ladder(query, t, deadline.as_secs_f64() * self.config.deadline_safety).0
    }

    /// The degrade ladder under an effective budget of `budget_s`,
    /// returning the route plus its reason label (see
    /// [`admit_explained`](Self::admit_explained)).
    fn ladder(&self, query: &Query, t: &KbTelemetry, budget_s: f64) -> (Route, &'static str) {
        if t.exact_cost(&query.kind) <= budget_s {
            return (Route::Exact, "exact_fit");
        }
        if !query.kind.degradable() {
            // Distribution/assignment queries have no approximate rung:
            // they take the exact path even past their deadline.
            return (Route::Exact, "not_degradable");
        }
        // Truncation floors the fitted budget at 0 under deadlines
        // tighter than one sample's latency; clamp to 1 so the anytime
        // rung always draws at least one sample (a zero-sample
        // "estimate" would be a silent non-answer).
        let samples = ((budget_s / t.sample_s.max(1e-12)) as u64).max(1);
        if samples >= self.config.min_approx_samples {
            // The trailing clamp keeps a degenerate zero cap from
            // resurrecting the zero-sample budget.
            let samples = samples.min(self.config.max_approx_samples).max(1);
            return (Route::Approx { samples }, "deadline_approx");
        }
        if t.has_predictor {
            return (Route::Predicted, "deadline_predicted");
        }
        // No predictor trained yet: the smallest sound approximation is
        // still better than silently blowing the deadline on exact.
        (Route::Approx { samples: self.config.min_approx_samples.max(1) }, "approx_floor")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_telemetry() -> KbTelemetry {
        KbTelemetry {
            compiled: true,
            compile_s: 0.2,
            eval_s: 5e-6,
            sample_s: 2e-6,
            has_predictor: true,
        }
    }

    #[test]
    fn deadline_free_queries_route_exact() {
        let mut router = QueryRouter::default();
        let t = hot_telemetry();
        assert_eq!(router.route(&Query::exact(QueryKind::Wmc), &t), Route::Exact);
        assert_eq!(router.stats().exact, 1);
        assert_eq!(router.stats().deadline_fallbacks, 0);
    }

    #[test]
    fn generous_deadlines_stay_exact() {
        let mut router = QueryRouter::default();
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_millis(50));
        assert_eq!(router.route(&q, &hot_telemetry()), Route::Exact);
    }

    #[test]
    fn cold_artifacts_charge_the_compile_and_fall_back_to_bounds() {
        let mut router = QueryRouter::default();
        let t = KbTelemetry { compiled: false, ..hot_telemetry() };
        // 10 ms deadline vs 200 ms predicted compile: exact is out, and
        // the 5 ms effective budget buys 2 500 samples.
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_millis(10));
        match router.route(&q, &t) {
            Route::Approx { samples } => assert_eq!(samples, 2500),
            other => panic!("expected approx, got {other:?}"),
        }
        assert_eq!(router.stats().deadline_fallbacks, 1);
    }

    #[test]
    fn sub_microsecond_deadlines_reach_the_prediction_net() {
        let mut router = QueryRouter::default();
        let q = Query::with_deadline(
            QueryKind::Posterior(Evidence::empty(4)),
            Duration::from_nanos(500),
        );
        assert_eq!(router.route(&q, &hot_telemetry()), Route::Predicted);
        let t = KbTelemetry { has_predictor: false, ..hot_telemetry() };
        match router.route(&q, &t) {
            Route::Approx { samples } => {
                assert_eq!(samples, RouterConfig::default().min_approx_samples);
            }
            other => panic!("no predictor must degrade to minimum bounds, got {other:?}"),
        }
    }

    #[test]
    fn distribution_queries_never_degrade() {
        let mut router = QueryRouter::default();
        let t = KbTelemetry { compiled: false, ..hot_telemetry() };
        let q = Query::with_deadline(
            QueryKind::Marginal(Evidence::empty(4), 0),
            Duration::from_nanos(100),
        );
        assert_eq!(router.route(&q, &t), Route::Exact);
        let m = Query::with_deadline(QueryKind::Mpe(Evidence::empty(4)), Duration::from_nanos(100));
        assert_eq!(router.route(&m, &t), Route::Exact);
    }

    #[test]
    fn sample_budgets_are_capped() {
        let mut router = QueryRouter::default();
        let t = KbTelemetry { compiled: false, sample_s: 1e-9, ..hot_telemetry() };
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_millis(100));
        match router.route(&q, &t) {
            Route::Approx { samples } => {
                assert_eq!(samples, RouterConfig::default().max_approx_samples);
            }
            other => panic!("expected capped approx, got {other:?}"),
        }
    }

    #[test]
    fn tight_deadlines_never_produce_a_zero_sample_budget() {
        // Regression: a deadline tighter than one sample's latency
        // truncated the fitted budget to 0, and with a permissive
        // `min_approx_samples` the anytime rung ran zero samples — a
        // silent non-answer. The budget must clamp to ≥ 1 everywhere.
        let mut router =
            QueryRouter::new(RouterConfig { min_approx_samples: 0, ..RouterConfig::default() });
        // No predictor: the ladder cannot skip past the approx rung.
        let t = KbTelemetry { compiled: false, has_predictor: false, ..hot_telemetry() };
        // 100 ns deadline, 2 µs/sample: the raw budget truncates to 0.
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(100));
        match router.route(&q, &t) {
            Route::Approx { samples } => {
                assert!(samples >= 1, "anytime rung must draw at least one sample");
            }
            other => panic!("expected approx, got {other:?}"),
        }
        // The min-budget fall-through clamps too (min_approx_samples=0
        // with a trained predictor unavailable must not emit 0 either).
        let mut strict = QueryRouter::new(RouterConfig {
            min_approx_samples: 0,
            max_approx_samples: 0,
            ..RouterConfig::default()
        });
        match strict.route(&q, &t) {
            // Even a degenerate zero *cap* cannot resurrect the
            // zero-sample budget.
            Route::Approx { samples } => assert_eq!(samples, 1),
            other => panic!("expected approx, got {other:?}"),
        }
    }

    #[test]
    fn admission_rejects_only_when_backlog_consumes_the_deadline() {
        let router = QueryRouter::default();
        let t = hot_telemetry();
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_millis(10));
        // Idle shard: plain exact admission (5 ms budget vs 5 µs eval).
        assert_eq!(router.admit(&q, &t, 0.0), Admission::Admit(Route::Exact));
        // Backlogged shard: 4 ms of queue leaves a 1 ms budget — exact
        // still fits.
        assert_eq!(router.admit(&q, &t, 4e-3), Admission::Admit(Route::Exact));
        // A cold artifact no longer fits the backlog-trimmed budget:
        // the ladder degrades to bounds fitted to what is left
        // (5 ms − 3 ms backlog = 2 ms → 1 000 samples at 2 µs each).
        let cold = KbTelemetry { compiled: false, ..t };
        match router.admit(&q, &cold, 3e-3) {
            Admission::Admit(Route::Approx { samples }) => assert_eq!(samples, 1000),
            other => panic!("expected degraded admission, got {other:?}"),
        }
        // Backlog at/over the effective deadline: rejected up front.
        let verdict = router.admit(&q, &t, 6e-3);
        assert_eq!(verdict, Admission::Reject { backlog_s: 6e-3 });
        assert_eq!(verdict.route(), None);
        // Deadline-free queries are never rejected, whatever the queue.
        assert_eq!(
            router.admit(&Query::exact(QueryKind::Wmc), &t, 1e9),
            Admission::Admit(Route::Exact)
        );
    }

    #[test]
    fn admission_is_deterministic_and_matches_route_on_an_idle_shard() {
        let mut router = QueryRouter::default();
        let t = KbTelemetry { compiled: false, has_predictor: false, ..hot_telemetry() };
        for deadline_ns in [500, 40_000, 10_000_000, 80_000_000] {
            let q = Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(deadline_ns));
            let admitted = router.admit(&q, &t, 0.0);
            assert_eq!(admitted, router.admit(&q, &t, 0.0), "admission must be replayable");
            assert_eq!(admitted.route(), Some(router.route(&q, &t)), "idle admission ≡ routing");
        }
    }

    #[test]
    fn admit_explained_names_every_rung() {
        let router = QueryRouter::default();
        let t = hot_telemetry();
        let free = Query::exact(QueryKind::Wmc);
        assert_eq!(router.admit_explained(&free, &t, 0.0).1, "no_deadline");
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_millis(10));
        assert_eq!(router.admit_explained(&q, &t, 0.0).1, "exact_fit");
        assert_eq!(router.admit_explained(&q, &t, 1.0).1, "backlog_reject");
        let cold = KbTelemetry { compiled: false, ..t };
        assert_eq!(router.admit_explained(&q, &cold, 0.0).1, "deadline_approx");
        let m = Query::with_deadline(QueryKind::Mpe(Evidence::empty(4)), Duration::from_nanos(10));
        // Tiny deadline but no backlog: the non-degradable kind stays
        // exact and says so.
        assert_eq!(router.admit_explained(&m, &cold, 0.0).1, "not_degradable");
        let tight = Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(500));
        assert_eq!(router.admit_explained(&tight, &t, 0.0).1, "deadline_predicted");
        let no_net = KbTelemetry { has_predictor: false, ..t };
        assert_eq!(router.admit_explained(&tight, &no_net, 0.0).1, "approx_floor");
        // The explained admission and the plain one always agree.
        for (query, tel, backlog) in
            [(&q, &t, 0.0), (&q, &cold, 0.0), (&tight, &no_net, 0.0), (&q, &t, 1.0)]
        {
            assert_eq!(
                router.admit(query, tel, backlog),
                router.admit_explained(query, tel, backlog).0
            );
        }
    }

    #[test]
    fn telemetry_snapshot_round_trips_the_state() {
        let t = hot_telemetry();
        let snap = t.snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| *n == k).unwrap().1;
        assert_eq!(get("compiled"), 1.0);
        assert_eq!(get("compile_s"), t.compile_s);
        assert_eq!(get("eval_s"), t.eval_s);
        assert_eq!(get("sample_s"), t.sample_s);
        assert_eq!(get("has_predictor"), 1.0);
    }

    #[test]
    fn telemetry_prior_grows_with_instance_size() {
        let small = KbTelemetry::prior(12, 36);
        let large = KbTelemetry::prior(60, 84);
        assert!(large.compile_s > small.compile_s * 100.0);
        assert!(large.sample_s > small.sample_s);
        assert!(!small.compiled && !small.has_predictor);
    }
}
