//! `reason-serve` — the knowledge-base serving engine.
//!
//! REASON's deployment argument (and this repo's north star) is a
//! system answering *heavy repeated query traffic* against shared
//! logical knowledge. Before this crate, nothing survived between
//! `reason-eval` invocations: every query repaid compilation from
//! scratch. `reason-serve` is the layer that remembers:
//!
//! * [`KnowledgeBase`] ([`kb`]) — a registered CNF rule set over fixed
//!   per-variable marginals, owning the cross-query
//!   [`reason_pc::PersistentComponentCache`] so that clause
//!   additions/retractions recompile only the components they touch.
//! * [`CircuitStore`] ([`store`]) — the persistent compiled-circuit
//!   store: artifacts (flat [`reason_pc::Dnnf`] arenas plus their
//!   source circuits) keyed by canonical [`FormulaFingerprint`]s
//!   ([`fingerprint`]), LRU-bounded by entries and bytes, with
//!   hit/miss/eviction [`CacheStats`]. Eviction is safe: recompiling
//!   the same key reproduces answers bit-for-bit.
//! * [`QueryRouter`] ([`router`]) — adaptive admission: each
//!   deadline-carrying [`Query`] is routed to exact compiled
//!   evaluation, anytime Monte-Carlo bounds with a deadline-trimmed
//!   budget, or one prediction-network forward pass, using predicted
//!   costs seeded from the committed compile-sweep telemetry and
//!   refined by live measurements.
//! * [`ServeEngine`] ([`engine`]) — ties it together and executes
//!   admitted batches through `reason_system::BatchExecutor`'s
//!   threaded lanes; a batch's exact queries share one batched-arena
//!   task (`SymbolicStage::ServeBatch`), answered in a single d-DNNF
//!   traversal per kernel, drained earliest-deadline-first.
//! * [`ServeCluster`] ([`cluster`]) — the sharded front-end:
//!   fingerprints consistent-hash onto a [`HashRing`] of engine
//!   shards, and every query passes deadline-aware *pre-dispatch*
//!   admission ([`QueryRouter::admit`]) against a deterministic cost
//!   model plus the destination shard's modeled queue backlog —
//!   degrading or rejecting before an executor lane is spent, not
//!   after a miss.
//! * [`FaultPlan`] ([`fault`]) — the failure-domain layer: seeded
//!   deterministic fault injection (shard crashes, slow shards,
//!   transient compile faults, cache wipes), per-shard [`ShardHealth`]
//!   circuit breakers, and hedged [`RetryConfig`] backoff. The cluster
//!   reroutes around dead shards through [`HashRing::remove_shard`]
//!   failover, recompiles on the failover shard, and degrades down the
//!   exact → anytime-bounds → prediction ladder instead of erroring —
//!   no query is ever lost.
//!
//! `reason-eval serve` sweeps this engine (repeated-query speedups,
//! deadline fallbacks, incremental edits) and commits the result as
//! `BENCH_serve.json`.
//!
//! # Example
//!
//! ```
//! use reason_sat::Cnf;
//! use reason_pc::WmcWeights;
//! use reason_serve::{Answer, Query, QueryKind, ServeConfig, ServeEngine};
//!
//! let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-2, 3]]);
//! let mut engine = ServeEngine::new(ServeConfig::default());
//! let kb = engine.register("rules", &cnf, WmcWeights::uniform(3));
//!
//! // First exact query compiles; every later one is served hot.
//! let report = engine.serve(kb, &[Query::exact(QueryKind::Wmc)]).unwrap();
//! let Answer::Exact(z) = report.outcomes[0].answer else { unreachable!() };
//! assert!((z - 0.5).abs() < 1e-12); // 4 of 8 assignments satisfy

//! assert_eq!(engine.store_stats().insertions, 1);
//! ```

pub mod cluster;
pub mod engine;
pub mod fault;
pub mod kb;
pub mod router;
pub mod store;

pub use cluster::{
    AdmissionStats, ClusterConfig, ClusterKbId, ClusterOutcome, ClusterReport, HashRing,
    ServeCluster, StageBreakdown, SLO_TRACK,
};
pub use engine::{Answer, KbId, ServeConfig, ServeEngine, ServeError, ServeOutcome, ServeReport};
pub use fault::{
    BreakerConfig, BreakerState, CacheWipe, CompileFaultWindow, CrashWindow, FaultConfig,
    FaultPlan, FaultStats, RetryConfig, ShardHealth, SlowWindow,
};
pub use kb::KnowledgeBase;
/// Canonical formula fingerprints — the circuit store's keys. The type
/// lives in `reason_pc` (the batch executor groups exact tasks by it);
/// re-exported here because the store's API is keyed by it.
pub use reason_pc::fingerprint;
pub use reason_pc::{ring_mix, FormulaFingerprint};
/// SLO machinery the cluster's live evaluation builds on, re-exported
/// so serving callers can declare objectives without importing the
/// telemetry crate directly.
pub use reason_telemetry::slo::{Objective, SloAlert, SloMonitor, SloSpec};
pub use router::{
    Admission, KbTelemetry, Query, QueryKind, QueryRouter, Route, RouterConfig, RouterStats,
};
pub use store::{CacheStats, CircuitStore, EvictionPolicy, StoreConfig, StoredCircuit};
