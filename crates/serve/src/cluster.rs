//! The sharded serving front-end: consistent hashing, deadline-aware
//! admission control, and virtual-time queue modeling over a pool of
//! [`ServeEngine`] shards.
//!
//! A [`ServeCluster`] owns `N` independent [`ServeEngine`]s and places
//! every registered knowledge base on exactly one of them by
//! consistent-hashing its [`FormulaFingerprint`] onto a [`HashRing`] of
//! virtual nodes. Placement is a pure function of `(fingerprint, shard
//! count, replicas, salt)`, so growing or shrinking the pool by one
//! shard remaps only the keys the new/removed shard's arc covers —
//! about `1/N` of them — instead of reshuffling everything the way
//! `digest % N` would.
//!
//! Admission happens *before* dispatch. Each arriving query is judged
//! by [`QueryRouter::admit`] against a deterministic cost model (the
//! [`KbTelemetry::prior`] fit, upgraded as the cluster observes its own
//! dispatch decisions) plus the destination shard's modeled queue
//! backlog at arrival time. A query whose deadline budget the backlog
//! has already consumed is [`Admission::Reject`]ed outright — it never
//! occupies an executor lane only to miss — and a query that can still
//! make its deadline on a cheaper rung is degraded *now*, not after an
//! exact attempt times out. Rejected queries stay in the report: every
//! submitted query has exactly one [`ClusterOutcome`], admitted or not.
//!
//! Because admission reads only the deterministic model (never wall
//! clocks), a replayed workload re-derives the identical admission and
//! routing sequence; the engines then execute the pre-decided routes
//! via [`ServeEngine::serve_routed`], whose answers are bit-identical
//! to a single engine serving the same queries on the same routes.

use std::sync::Arc;

use reason_pc::{FormulaFingerprint, WmcWeights};
use reason_sat::Cnf;
use reason_telemetry::profile::{exemplars, Exemplar};
use reason_telemetry::slo::{Objective, SloAlert, SloMonitor, SloSpec};
use reason_telemetry::Telemetry;

use crate::engine::{Answer, KbId, ServeConfig, ServeEngine, ServeError};
use crate::fault::{BreakerState, FaultConfig, FaultPlan, FaultStats, ShardHealth};
use crate::router::{Admission, KbTelemetry, Query, QueryRouter, Route};

/// A consistent-hash ring mapping fingerprints to shard indices.
///
/// Each shard contributes `replicas` virtual points placed by the
/// [`reason_pc::ring_mix`] finalizer; a key owns the first point at or
/// clockwise-after its own hash. More replicas smooth the load split at
/// the cost of a longer (still binary-searched) point table.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
    salt: u64,
}

impl HashRing {
    /// A ring of `shards` shards with `replicas` virtual points each.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `replicas` is zero.
    pub fn new(shards: usize, replicas: usize, salt: u64) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(replicas > 0, "a ring needs at least one replica point per shard");
        let mut points = Vec::with_capacity(shards * replicas);
        for shard in 0..shards {
            for replica in 0..replicas {
                // Scatter each (shard, replica) pair independently of
                // the others so a shard's arcs interleave with everyone
                // else's instead of clustering. The pre-mix input stays
                // unique per pair: disjoint bit ranges for shard and
                // replica, XORed with a salt-derived constant.
                let point = reason_pc::ring_mix(
                    (((shard as u64) << 32) | replica as u64) ^ reason_pc::ring_mix(salt),
                );
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards, salt }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `fingerprint`: the first virtual point at or
    /// clockwise-after the key's hash, wrapping at the top of the ring.
    pub fn shard_for(&self, fingerprint: &FormulaFingerprint) -> usize {
        let key = fingerprint.ring_hash(self.salt);
        let idx = self.points.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }

    /// The ring with `shard`'s virtual points removed — the failover
    /// view the fault-tolerant dispatcher routes through when a shard
    /// dies. Exactly symmetric to growing the ring: keys owned by
    /// surviving shards keep their owning points and never move; only
    /// the dead shard's arcs fall to their clockwise successors. The
    /// shard index space is unchanged (`shards()` still reports the
    /// configured width), so surviving indices stay valid.
    ///
    /// # Panics
    ///
    /// Panics when removing `shard` would leave the ring empty.
    pub fn remove_shard(&self, shard: usize) -> HashRing {
        let points: Vec<(u64, usize)> =
            self.points.iter().copied().filter(|&(_, s)| s != shard).collect();
        assert!(!points.is_empty(), "cannot remove the last live shard from the ring");
        HashRing { points, shards: self.shards, salt: self.salt }
    }
}

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of [`ServeEngine`] shards.
    pub shards: usize,
    /// Virtual points per shard on the [`HashRing`].
    pub replicas: usize,
    /// Ring salt: changing it reshuffles placement wholesale, so keep
    /// it fixed for the lifetime of a deployment.
    pub salt: u64,
    /// Per-shard engine configuration (every shard is identical).
    pub engine: ServeConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { shards: 2, replicas: 32, salt: 0xC1A5, engine: ServeConfig::default() }
    }
}

impl ClusterConfig {
    /// The default configuration with `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        ClusterConfig { shards, ..Default::default() }
    }
}

/// Handle to a knowledge base registered with a [`ServeCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterKbId {
    index: usize,
}

/// Where one query's modeled latency went: queueing behind the shard's
/// backlog, compiling a cold artifact, and executing the admitted
/// route. All fields are seconds of modeled (virtual) time, and they
/// partition [`ClusterOutcome::modeled_latency_s`] exactly:
/// `queue_s + compile_s + exec_s == modeled_latency_s` (up to float
/// association). Rejected queries carry their sinking backlog in
/// `queue_s` and zero elsewhere.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Seconds the query waited behind earlier work on its shard.
    pub queue_s: f64,
    /// Modeled cold-compile seconds; `0.0` on warm or non-exact routes.
    pub compile_s: f64,
    /// Modeled service seconds for the route itself (evaluations,
    /// samples, or one predictor pass).
    pub exec_s: f64,
}

impl StageBreakdown {
    /// Sum of the stages — reproduces the modeled latency.
    pub fn total(&self) -> f64 {
        self.queue_s + self.compile_s + self.exec_s
    }
}

/// One query's fate through the cluster: where the ring placed it, what
/// admission decided, and what came back.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The shard the ring routed the knowledge base to.
    pub shard: usize,
    /// The pre-dispatch admission verdict.
    pub decision: Admission,
    /// Why admission picked that rung (see
    /// [`QueryRouter::admit_explained`]).
    pub reason: &'static str,
    /// The answer; `None` exactly when the query was rejected.
    pub answer: Option<Answer>,
    /// Arrival-to-completion seconds under the deterministic queue
    /// model (for rejects: the backlog that sank the query).
    pub modeled_latency_s: f64,
    /// Where the modeled latency went, stage by stage.
    pub stage: StageBreakdown,
    /// `true` when the modeled latency exceeds the query's deadline
    /// (rejects always miss; deadline-free queries never do).
    pub deadline_miss: bool,
    /// Measured executor seconds for the query's task(s); `0.0` for
    /// rejects, which never dispatch.
    pub latency_s: f64,
    /// Dispatch attempts the query took (1 = served on the first try;
    /// higher counts mean backoff retries and/or failovers).
    pub attempts: u32,
    /// `true` when the query was re-routed to a failover shard after
    /// its primary was unreachable.
    pub failover: bool,
    /// `true` when the query stepped down the degrade ladder because of
    /// an injected fault (not because of its own deadline budget).
    pub degraded_by_fault: bool,
}

/// Admission counters over one [`ServeCluster::serve_at`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted on the exact rung.
    pub exact: u64,
    /// Queries degraded to anytime bounds before dispatch.
    pub approx: u64,
    /// Queries degraded to the prediction network before dispatch.
    pub predicted: u64,
    /// Queries rejected before dispatch.
    pub rejected: u64,
    /// Admitted queries whose modeled latency still missed their
    /// deadline (the backlog estimate was optimistic).
    pub deadline_misses: u64,
}

/// The result of one cluster batch.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-query outcomes, in submission order — one per submitted
    /// query, including rejects.
    pub outcomes: Vec<ClusterOutcome>,
    /// Admission counters for this batch.
    pub stats: AdmissionStats,
}

/// What the cluster deterministically believes about one knowledge
/// base. Unlike the engines' live telemetry (which measures wall
/// clocks), this model is a pure function of the registration and the
/// admission history, so replays reproduce it exactly.
#[derive(Debug, Clone)]
struct KbModel {
    shard: usize,
    kb: KbId,
    /// Registration name — the `tenant` label on cluster metrics and
    /// spans.
    name: String,
    telemetry: KbTelemetry,
    /// The placement key, kept so the fault layer can re-route through
    /// a shrunken ring on failover.
    fingerprint: FormulaFingerprint,
    /// Failover replicas the fault layer registered on other shards,
    /// with their own compiled/predictor bits (the shared cost numbers
    /// stay in `telemetry`).
    failovers: Vec<FailoverReplica>,
}

/// One failover registration of a knowledge base on a non-primary
/// shard.
#[derive(Debug, Clone, Copy)]
struct FailoverReplica {
    shard: usize,
    kb: KbId,
    compiled: bool,
    has_predictor: bool,
}

/// The cluster's live fault-tolerance state: the injected plan, the
/// policy, one breaker per shard, and the lifetime counters.
struct FaultDomain {
    plan: FaultPlan,
    config: FaultConfig,
    health: Vec<ShardHealth>,
    /// One flag per scheduled wipe: fired yet?
    wipes_applied: Vec<bool>,
    stats: FaultStats,
}

impl FaultDomain {
    /// Publishes a breaker state change (if any) to the registry:
    /// `breaker_state{shard}` gauge plus
    /// `breaker_transitions_total{shard, to}`.
    fn observe_breaker(&self, tel: Option<&Telemetry>, shard: usize, before: BreakerState) {
        let after = self.health[shard].state();
        if before == after {
            return;
        }
        if let Some(tel) = tel {
            let shard_label = shard.to_string();
            tel.registry
                .gauge("breaker_state", &[("shard", &shard_label)])
                .set(after.gauge_value());
            tel.registry
                .counter(
                    "breaker_transitions_total",
                    &[("shard", &shard_label), ("to", after.label())],
                )
                .inc();
        }
    }
}

/// One fault-layer decision on a query's path to dispatch, kept so the
/// admission telemetry can trace it as a child span of the query's
/// `cluster.query` root.
#[derive(Debug, Clone, Copy)]
struct FaultEvent {
    name: &'static str,
    start: f64,
    end: f64,
}

/// Where (and when) the fault layer decided one query dispatches.
struct Placement {
    shard: usize,
    kb: KbId,
    /// Decision time after backoffs and recovery waits (`>=` arrival).
    now: f64,
    attempts: u32,
    failover: bool,
}

/// One knowledge base's admitted queries within a batch on one shard,
/// in admission order: (arrival index, query, decided route). The key
/// carries the shard and engine-local id because failover can split a
/// KB's traffic across shards within a single batch.
type AdmittedGroup = ((ClusterKbId, usize, KbId), Vec<(usize, Query, Route)>);

/// The sharded serving front-end (see the [module docs](self)).
pub struct ServeCluster {
    config: ClusterConfig,
    ring: HashRing,
    shards: Vec<ServeEngine>,
    /// Deterministic admission judge (no counters are ever recorded on
    /// it — [`QueryRouter::admit`] takes `&self`).
    admission: QueryRouter,
    kbs: Vec<KbModel>,
    /// Per-shard virtual clock: the modeled time each shard's queue
    /// drains. Admission charges `max(0, free_at - arrival)` as backlog.
    free_at: Vec<f64>,
    /// Optional observability sink: admission counters and per-query
    /// modeled span chains, plus whatever the shard engines record once
    /// attached.
    telemetry: Option<Arc<Telemetry>>,
    /// Trace track of the next query's span chain. Tracks start at 1
    /// (track 0 carries the engines' wall-clock spans) and each query
    /// gets its own: a queued query's arrival-to-completion interval
    /// genuinely overlaps its predecessor's service interval in virtual
    /// time, which a shared track could not represent as a well-formed
    /// forest.
    next_track: u64,
    /// Fault-tolerance state; `None` (the default) keeps the serve path
    /// exactly as fast as before the fault layer existed.
    fault: Option<FaultDomain>,
    /// Live SLO evaluation; `None` (the default) adds no per-arrival
    /// work. Alert spans land on [`SLO_TRACK`].
    slo: Option<SloMonitor>,
}

/// The span track [`SloMonitor`] alert spans use — far above the
/// per-query tracks, which count up from 1.
pub const SLO_TRACK: u64 = u64::MAX;

impl ServeCluster {
    /// A cluster of `config.shards` identically configured engines.
    ///
    /// # Panics
    ///
    /// Panics when `config.shards` or `config.replicas` is zero.
    pub fn new(config: ClusterConfig) -> Self {
        let ring = HashRing::new(config.shards, config.replicas, config.salt);
        let shards = (0..config.shards).map(|_| ServeEngine::new(config.engine)).collect();
        ServeCluster {
            config,
            ring,
            shards,
            admission: QueryRouter::new(config.engine.router),
            kbs: Vec::new(),
            free_at: vec![0.0; config.shards],
            telemetry: None,
            next_track: 1,
            fault: None,
            slo: None,
        }
    }

    /// Installs (or replaces) the fault domain: the injected
    /// [`FaultPlan`] plus the breaker/retry policy. From now on every
    /// [`serve_at`](Self::serve_at) arrival walks the fault-aware
    /// dispatch path — breaker checks, hedged retries with
    /// deterministic backoff, ring failover with recompilation on the
    /// surviving shard, and ladder degradation when exact capacity is
    /// lost. Installing `FaultPlan::new()` (no faults) keeps behavior
    /// identical to the bare cluster while exercising the machinery —
    /// the happy-path overhead `bench_fault` pins.
    pub fn install_fault_domain(&mut self, plan: FaultPlan, config: FaultConfig) {
        let wipes_applied = vec![false; plan.wipes().len()];
        self.fault = Some(FaultDomain {
            plan,
            config,
            health: (0..self.config.shards).map(|_| ShardHealth::new(config.breaker)).collect(),
            wipes_applied,
            stats: FaultStats::default(),
        });
    }

    /// The fault layer's lifetime counters; `None` before
    /// [`install_fault_domain`](Self::install_fault_domain).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|f| f.stats)
    }

    /// Per-shard circuit-breaker states; empty before
    /// [`install_fault_domain`](Self::install_fault_domain).
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.fault
            .as_ref()
            .map_or_else(Vec::new, |f| f.health.iter().map(ShardHealth::state).collect())
    }

    /// Attaches an observability sink. The cluster records labeled
    /// admission counters (`cluster_admissions_total{shard, tenant,
    /// route, reason}`, `cluster_rejects_total`,
    /// `cluster_deadline_miss_total`) and, for every query, a modeled
    /// span chain on its own track — `cluster.query` spanning arrival
    /// to modeled completion, with `cluster.admit`, `cluster.route`,
    /// `queue.wait`, `store.probe`, `serve.compile` (cold exact only)
    /// and `serve.eval` children, every span labeled with shard and
    /// tenant — all stamped with virtual (modeled) timestamps, so
    /// traces replay byte-identically. Each shard engine is attached
    /// too, contributing its wall-clock store and compile
    /// instrumentation on track 0.
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        for (shard, engine) in self.shards.iter_mut().enumerate() {
            engine.attach_telemetry(telemetry.clone(), shard);
        }
        self.telemetry = Some(telemetry);
    }

    /// The default SLO set for a sweep spanning `horizon_s` virtual
    /// seconds: availability (reject fraction), deadline-miss fraction,
    /// and modeled latency, each burn-rate-alerted over a fast window
    /// of `horizon_s / 20` and a slow window of `horizon_s / 5`. The
    /// budgets are sized so healthy traffic/chaos baselines stay quiet
    /// while a crashed shard's reject concentration trips availability.
    pub fn default_slo_specs(horizon_s: f64) -> Vec<SloSpec> {
        let fast_window_s = horizon_s / 20.0;
        let slow_window_s = horizon_s / 5.0;
        let all: Vec<String> =
            vec!["cluster_admissions_total".into(), "cluster_rejects_total".into()];
        vec![
            SloSpec {
                name: "availability".into(),
                objective: Objective::CounterRatio {
                    bad: vec!["cluster_rejects_total".into()],
                    total: all.clone(),
                },
                budget: 0.01,
                fast_window_s,
                slow_window_s,
                burn_threshold: 10.0,
            },
            SloSpec {
                name: "deadline".into(),
                objective: Objective::CounterRatio {
                    bad: vec!["cluster_deadline_miss_total".into()],
                    total: all,
                },
                budget: 0.25,
                fast_window_s,
                slow_window_s,
                burn_threshold: 3.0,
            },
            SloSpec {
                name: "latency_1ms".into(),
                objective: Objective::LatencyAbove {
                    histogram: "cluster_modeled_latency_seconds".into(),
                    threshold_s: 1e-3,
                },
                budget: 0.1,
                fast_window_s,
                slow_window_s,
                burn_threshold: 5.0,
            },
        ]
    }

    /// Installs (or replaces) live SLO evaluation: every
    /// [`serve_at`](Self::serve_at) arrival re-measures the objectives
    /// at its arrival time, burn rates land in `slo_*` metrics, and
    /// alerts become spans on [`SLO_TRACK`].
    ///
    /// # Panics
    ///
    /// Panics when no telemetry is attached (the objectives read the
    /// attached registry) or when a spec is malformed (see
    /// [`SloMonitor::add`]).
    pub fn install_slos(&mut self, specs: Vec<SloSpec>) {
        let tel =
            self.telemetry.clone().expect("attach_telemetry before install_slos: SLOs read it");
        let mut monitor = SloMonitor::new(tel, SLO_TRACK);
        for spec in specs {
            monitor.add(spec);
        }
        self.slo = Some(monitor);
    }

    /// Every SLO alert fired so far; empty before
    /// [`install_slos`](Self::install_slos).
    pub fn slo_alerts(&self) -> &[SloAlert] {
        self.slo.as_ref().map_or(&[], |m| m.alerts())
    }

    /// The installed SLO monitor, if any.
    pub fn slo_monitor(&self) -> Option<&SloMonitor> {
        self.slo.as_ref()
    }

    /// Resolves every still-active SLO alert at virtual time `t` (end
    /// of sweep), recording their spans. No-op without a monitor.
    pub fn finish_slos(&mut self, t: f64) {
        if let Some(monitor) = &mut self.slo {
            monitor.finish(t);
        }
    }

    /// The `k` worst modeled-latency queries served so far, each with
    /// its full admit → route → compile → eval span chain — the tail
    /// worth reading first. Empty without attached telemetry.
    pub fn tail_exemplars(&self, k: usize) -> Vec<Exemplar> {
        self.telemetry
            .as_ref()
            .map_or_else(Vec::new, |tel| exemplars(&tel.tracer.finished(), "cluster.query", k))
    }

    /// The deterministic per-KB cost models admission judges against,
    /// as `(tenant, shard, model)` rows in registration order.
    pub fn kb_models(&self) -> Vec<(String, usize, KbTelemetry)> {
        self.kbs.iter().map(|m| (m.name.clone(), m.shard, m.telemetry)).collect()
    }

    /// Registers a knowledge base on the shard its fingerprint hashes
    /// to. Registration is cheap; compilation happens on the first
    /// exact dispatch.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        cnf: &Cnf,
        weights: WmcWeights,
    ) -> ClusterKbId {
        let name = name.into();
        let fingerprint = FormulaFingerprint::from_parts(cnf.num_vars(), cnf.clauses(), &weights);
        let shard = self.ring.shard_for(&fingerprint);
        let kb = self.shards[shard].register(name.clone(), cnf, weights);
        let registered = self.shards[shard].kb(kb);
        self.kbs.push(KbModel {
            shard,
            kb,
            name,
            telemetry: KbTelemetry::prior(registered.num_vars(), registered.num_clauses()),
            fingerprint,
            failovers: Vec::new(),
        });
        ClusterKbId { index: self.kbs.len() - 1 }
    }

    /// The shard the ring placed `id` on.
    pub fn shard_of(&self, id: ClusterKbId) -> usize {
        self.kbs[id.index].shard
    }

    /// The ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Shard engines, for inspection (store/router statistics).
    pub fn engines(&self) -> &[ServeEngine] {
        &self.shards
    }

    /// Serves a batch arriving all at once (virtual time zero). See
    /// [`serve_at`](Self::serve_at).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoMass`] when an exact-routed query forces a
    /// compilation and its formula has no satisfying mass.
    pub fn serve(&mut self, batch: &[(ClusterKbId, Query)]) -> Result<ClusterReport, ServeError> {
        let arrivals: Vec<(ClusterKbId, Query, f64)> =
            batch.iter().map(|(id, q)| (*id, q.clone(), 0.0)).collect();
        self.serve_at(&arrivals)
    }

    /// Serves an open-loop workload: `(kb, query, arrival_seconds)`
    /// triples in nondecreasing arrival order.
    ///
    /// Admission runs first, in arrival order, against the
    /// deterministic cost model and each shard's virtual clock: a
    /// query's backlog is how far its shard's modeled queue extends
    /// past its arrival, its admitted route is charged to the clock,
    /// and a query whose deadline budget the backlog consumes is
    /// rejected without ever dispatching. The admitted queries are then
    /// executed for real, grouped per `(shard, knowledge base)` through
    /// [`ServeEngine::serve_routed`] (preserving submission order
    /// within each group, with deadlines riding along for EDF
    /// dispatch), and the measured latencies land in
    /// [`ClusterOutcome::latency_s`] next to the modeled ones.
    ///
    /// The virtual clock persists across calls, so successive
    /// [`serve_at`](Self::serve_at) batches model one continuous queue.
    ///
    /// # Panics
    ///
    /// Panics when arrivals are not sorted by arrival time.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoMass`] when an exact-routed query forces a
    /// compilation and its formula has no satisfying mass.
    pub fn serve_at(
        &mut self,
        arrivals: &[(ClusterKbId, Query, f64)],
    ) -> Result<ClusterReport, ServeError> {
        // Taken out of `self` so the fault-aware helpers can borrow the
        // cluster mutably (lazy failover registration, cache wipes)
        // while walking the domain; restored before returning. The SLO
        // monitor rides along the same way.
        let mut fault = self.fault.take();
        let mut slo = self.slo.take();
        let result = self.serve_at_inner(arrivals, &mut fault, &mut slo);
        self.fault = fault;
        self.slo = slo;
        result
    }

    fn serve_at_inner(
        &mut self,
        arrivals: &[(ClusterKbId, Query, f64)],
        fault: &mut Option<FaultDomain>,
        slo: &mut Option<SloMonitor>,
    ) -> Result<ClusterReport, ServeError> {
        let tel = self.telemetry.clone();
        let mut stats = AdmissionStats::default();
        let mut outcomes: Vec<ClusterOutcome> = Vec::with_capacity(arrivals.len());
        let mut groups: Vec<AdmittedGroup> = Vec::new();

        let mut last_t = f64::NEG_INFINITY;
        for (i, (id, query, t)) in arrivals.iter().enumerate() {
            assert!(*t >= last_t, "arrivals must be sorted by arrival time");
            last_t = *t;
            let mut events: Vec<FaultEvent> = Vec::new();
            // Resolve where and when the query dispatches, and what
            // admission decided there. Without a fault domain this is
            // the primary shard at arrival time, judged exactly as
            // before the fault layer existed.
            let (place, tel_eff, decision, reason, degraded_by_fault) = match fault {
                None => {
                    let model = &self.kbs[id.index];
                    let shard = model.shard;
                    let backlog_s = (self.free_at[shard] - t).max(0.0);
                    let (decision, reason) =
                        self.admission.admit_explained(query, &model.telemetry, backlog_s);
                    let place =
                        Placement { shard, kb: model.kb, now: *t, attempts: 1, failover: false };
                    (place, model.telemetry, decision, reason, false)
                }
                Some(domain) => {
                    self.apply_due_wipes(domain, *t, tel.as_deref());
                    self.admit_under_faults(domain, *id, query, *t, tel.as_deref(), &mut events)
                }
            };
            let Placement { shard, kb, now, attempts, failover } = place;
            let model_name = self.kbs[id.index].name.clone();
            match decision {
                Admission::Reject { .. } => {
                    stats.rejected += 1;
                    stats.deadline_misses += 1;
                    if let Some(tel) = &tel {
                        let track = self.next_track;
                        let shard_label = shard.to_string();
                        let labels: [(&str, &str); 3] =
                            [("shard", &shard_label), ("tenant", &model_name), ("reason", reason)];
                        tel.registry.counter("cluster_rejects_total", &labels).inc();
                        tel.registry
                            .counter("cluster_deadline_miss_total", &[("shard", &shard_label)])
                            .inc();
                        let root = tel.tracer.record_span(
                            track,
                            "cluster.query",
                            &[
                                ("shard", &shard_label),
                                ("tenant", &model_name),
                                ("route", "reject"),
                                ("reason", reason),
                            ],
                            *t,
                            now.max(*t),
                        );
                        tel.tracer.record_span_under(
                            track,
                            "cluster.admit",
                            &[("decision", "reject")],
                            *t,
                            *t,
                            root,
                        );
                        record_fault_events(tel, track, root, &events, *t, now.max(*t));
                    }
                    self.next_track += 1;
                    let backlog_s = (self.free_at[shard] - t).max(0.0) + (now - t).max(0.0);
                    outcomes.push(ClusterOutcome {
                        shard,
                        decision,
                        reason,
                        answer: None,
                        modeled_latency_s: backlog_s,
                        stage: StageBreakdown { queue_s: backlog_s, compile_s: 0.0, exec_s: 0.0 },
                        deadline_miss: true,
                        latency_s: 0.0,
                        attempts,
                        failover,
                        degraded_by_fault,
                    });
                }
                Admission::Admit(route) => {
                    let cold = matches!(route, Route::Exact) && !tel_eff.compiled;
                    // Slow-shard windows stretch the modeled service
                    // (compile and execution alike) by their factor.
                    let start = self.free_at[shard].max(now);
                    let mult = match fault {
                        Some(domain) => {
                            let m = domain.plan.slow_multiplier(shard, start);
                            if m > 1.0 {
                                domain.stats.slowdowns_hit += 1;
                                if let Some(tel) = &tel {
                                    let shard_label = shard.to_string();
                                    tel.registry
                                        .counter(
                                            "fault_injected_total",
                                            &[("shard", &shard_label), ("kind", "slow")],
                                        )
                                        .inc();
                                }
                                events.push(FaultEvent { name: "fault.slow", start, end: start });
                            }
                            m
                        }
                        None => 1.0,
                    };
                    let cost_s = modeled_cost(route, query, &tel_eff) * mult;
                    let compile_s = if cold { tel_eff.compile_s * mult } else { 0.0 };
                    self.free_at[shard] = start + cost_s;
                    let stage = StageBreakdown {
                        queue_s: (start - t).max(0.0),
                        compile_s,
                        exec_s: cost_s - compile_s,
                    };
                    // The reported latency is *defined* as the stage
                    // sum, so the breakdown partitions it bit-exactly
                    // instead of drifting by a rounding term from
                    // `(start + cost) - t`.
                    let modeled_latency_s = stage.total();
                    let deadline_miss =
                        query.deadline.is_some_and(|d| modeled_latency_s > d.as_secs_f64());
                    let route_label = match route {
                        Route::Exact => "exact",
                        Route::Approx { .. } => "approx",
                        Route::Predicted => "predicted",
                    };
                    if let Some(tel) = &tel {
                        record_admit_telemetry(
                            tel,
                            self.next_track,
                            shard,
                            &model_name,
                            route_label,
                            reason,
                            deadline_miss,
                            *t,
                            start,
                            &stage,
                            cold,
                            matches!(route, Route::Exact),
                            &events,
                        );
                    }
                    self.next_track += 1;
                    match route {
                        Route::Exact => {
                            stats.exact += 1;
                            // The dispatch below compiles the artifact
                            // (and trains the predictor, when
                            // configured): upgrade the model so later
                            // arrivals are judged against warm costs.
                            self.mark_compiled(*id, shard);
                        }
                        Route::Approx { .. } => stats.approx += 1,
                        Route::Predicted => stats.predicted += 1,
                    }
                    if deadline_miss {
                        stats.deadline_misses += 1;
                    }
                    outcomes.push(ClusterOutcome {
                        shard,
                        decision,
                        reason,
                        answer: None,
                        modeled_latency_s,
                        stage,
                        deadline_miss,
                        latency_s: 0.0,
                        attempts,
                        failover,
                        degraded_by_fault,
                    });
                    let key = (*id, shard, kb);
                    match groups.iter_mut().find(|(gid, _)| *gid == key) {
                        Some((_, entries)) => entries.push((i, query.clone(), route)),
                        None => groups.push((key, vec![(i, query.clone(), route)])),
                    }
                }
            }
            // Re-measure the objectives now that this arrival's
            // counters landed — burn-rate windows advance in the same
            // virtual time admission models.
            if let Some(monitor) = slo.as_mut() {
                monitor.observe(*t);
            }
        }

        // Dispatch: every admitted query executes for real on its
        // shard, on the route admission pre-decided.
        let floor = self.config.engine.router.min_approx_samples.max(1);
        for ((_, shard, kb), entries) in groups {
            let queries: Vec<Query> = entries.iter().map(|(_, q, _)| q.clone()).collect();
            let routes: Vec<Route> = entries.iter().map(|(_, _, r)| *r).collect();
            let report = match self.shards[shard].serve_routed(kb, &queries, &routes) {
                Ok(report) => Some(report),
                Err(err @ ServeError::NoMass(_)) => return Err(err),
                Err(_) => {
                    // A hot-path failure (eviction race, lost
                    // predictor) degrades this group instead of
                    // killing the whole batch: retry once on the
                    // cheapest sound routes.
                    let fallback: Vec<Route> = queries
                        .iter()
                        .zip(&routes)
                        .map(|(q, r)| match r {
                            Route::Exact if q.kind.degradable() => Route::Approx { samples: floor },
                            Route::Predicted => Route::Approx { samples: floor },
                            other => *other,
                        })
                        .collect();
                    for (((i, _, _), r), f) in entries.iter().zip(&routes).zip(&fallback) {
                        if r != f {
                            outcomes[*i].degraded_by_fault = true;
                        }
                    }
                    self.shards[shard].serve_routed(kb, &queries, &fallback).ok()
                }
            };
            if let Some(report) = report {
                for ((i, _, _), outcome) in entries.iter().zip(report.outcomes) {
                    outcomes[*i].answer = Some(outcome.answer);
                    outcomes[*i].latency_s = outcome.latency_s;
                }
            }
        }

        Ok(ClusterReport { outcomes, stats })
    }

    /// Fires every cache wipe scheduled at or before `t` that has not
    /// fired yet: the shard's store and oracles are genuinely dropped
    /// (the next exact query recompiles through the KB's persistent
    /// component cache) and the admission model forgets the artifacts.
    fn apply_due_wipes(&mut self, domain: &mut FaultDomain, t: f64, tel: Option<&Telemetry>) {
        for wi in 0..domain.plan.wipes().len() {
            let wipe = domain.plan.wipes()[wi];
            if domain.wipes_applied[wi] || wipe.at_s > t || wipe.shard >= self.shards.len() {
                continue;
            }
            domain.wipes_applied[wi] = true;
            domain.stats.cache_wipes += 1;
            self.shards[wipe.shard].wipe_store();
            for model in &mut self.kbs {
                if model.shard == wipe.shard {
                    model.telemetry.compiled = false;
                }
                for replica in &mut model.failovers {
                    if replica.shard == wipe.shard {
                        replica.compiled = false;
                    }
                }
            }
            if let Some(tel) = tel {
                let shard_label = wipe.shard.to_string();
                tel.registry
                    .counter(
                        "fault_injected_total",
                        &[("shard", &shard_label), ("kind", "cache_wipe")],
                    )
                    .inc();
            }
        }
    }

    /// The fault-aware path to admission for one arrival: walk the
    /// breaker → crash-retry → ring-failover ladder in virtual time
    /// until a dispatchable shard is found, then run admission there —
    /// degrading past the exact rung when a transient compile fault
    /// blocks it. Crash windows are finite, so the walk always
    /// terminates: a query that finds every shard down waits for the
    /// earliest recovery instead of being dropped (zero lost queries).
    fn admit_under_faults(
        &mut self,
        domain: &mut FaultDomain,
        id: ClusterKbId,
        query: &Query,
        t: f64,
        tel: Option<&Telemetry>,
        events: &mut Vec<FaultEvent>,
    ) -> (Placement, KbTelemetry, Admission, &'static str, bool) {
        let mut now = t;
        let mut shard = self.kbs[id.index].shard;
        let mut excluded: Vec<usize> = Vec::new();
        let mut attempts_here: u32 = 1;
        let mut total_attempts: u32 = 1;
        let mut failover = false;
        let deadline_cutoff = t + query.deadline.map_or(f64::INFINITY, |d| d.as_secs_f64());
        // Per-query jitter salt: the placement key hashed with the
        // query's (deterministic) trace track.
        let salt = self.kbs[id.index].fingerprint.ring_hash(self.next_track);
        let count = |name: &str, kind: &str, shard: usize| {
            if let Some(tel) = tel {
                let shard_label = shard.to_string();
                let labels: [(&str, &str); 2] = [("shard", &shard_label), ("kind", kind)];
                let trimmed = if kind.is_empty() { &labels[..1] } else { &labels[..] };
                tel.registry.counter(name, trimmed).inc();
            }
        };
        loop {
            let before = domain.health[shard].state();
            let admits = domain.health[shard].admits(now);
            domain.observe_breaker(tel, shard, before);
            if admits {
                let dispatch_start = self.free_at[shard].max(now);
                if domain.plan.crashed(shard, dispatch_start) {
                    domain.stats.crashes_hit += 1;
                    count("fault_injected_total", "crash", shard);
                    events.push(FaultEvent { name: "fault.crash", start: now, end: now });
                    let before = domain.health[shard].state();
                    domain.health[shard].record_failure(now);
                    domain.observe_breaker(tel, shard, before);
                    let backoff = domain.config.retry.backoff_s(attempts_here, salt);
                    // Hedge: when the backoff would blow the deadline,
                    // skip straight to failover instead of retrying.
                    if attempts_here < domain.config.retry.max_attempts
                        && now + backoff <= deadline_cutoff
                    {
                        domain.stats.retries += 1;
                        count("retry_attempts_total", "", shard);
                        events.push(FaultEvent {
                            name: "fault.retry",
                            start: now,
                            end: now + backoff,
                        });
                        now += backoff;
                        attempts_here += 1;
                        total_attempts += 1;
                        continue;
                    }
                } else {
                    // The shard is dispatchable: run admission here.
                    let tel_eff = self.effective_telemetry(id, shard);
                    let backlog_s = (self.free_at[shard] - now).max(0.0);
                    let spent_s = now - t;
                    let (decision, reason) =
                        self.admission.admit_explained(query, &tel_eff, backlog_s + spent_s);
                    let compile_blocked = matches!(decision, Admission::Admit(Route::Exact))
                        && !tel_eff.compiled
                        && domain.plan.compile_faulted(shard, dispatch_start);
                    if compile_blocked {
                        domain.stats.compile_faults_hit += 1;
                        count("fault_injected_total", "compile_fault", shard);
                        events.push(FaultEvent { name: "fault.compile", start: now, end: now });
                        let before = domain.health[shard].state();
                        domain.health[shard].record_failure(now);
                        domain.observe_breaker(tel, shard, before);
                        if let Some((degraded, why)) =
                            self.admission.admit_under_failure(query, &tel_eff, backlog_s + spent_s)
                        {
                            domain.stats.degraded_under_failure += 1;
                            count("fault_degrade_total", "", shard);
                            events.push(FaultEvent { name: "fault.degrade", start: now, end: now });
                            let place = Placement {
                                shard,
                                kb: self.replica_kb(id, shard),
                                now,
                                attempts: total_attempts,
                                failover,
                            };
                            return (place, tel_eff, degraded, why, true);
                        }
                        // No degraded rung (distribution/assignment
                        // query): wait the fault window out, then
                        // re-resolve — the shard may have crashed in
                        // the meantime.
                        let recover = domain.plan.compile_recovery_time(shard, dispatch_start);
                        domain.stats.waited_for_recovery += 1;
                        events.push(FaultEvent { name: "fault.wait", start: now, end: recover });
                        now = recover.max(now);
                        continue;
                    }
                    let before = domain.health[shard].state();
                    domain.health[shard].record_success();
                    domain.observe_breaker(tel, shard, before);
                    let place = Placement {
                        shard,
                        kb: self.replica_kb(id, shard),
                        now,
                        attempts: total_attempts,
                        failover,
                    };
                    return (place, tel_eff, decision, reason, false);
                }
            } else {
                domain.stats.breaker_rejections += 1;
                count("fault_breaker_rejected_total", "", shard);
                events.push(FaultEvent { name: "breaker.reject", start: now, end: now });
            }
            // Failover: drop the unreachable shard from the ring and
            // re-route. When every shard is unreachable, wait until the
            // earliest one comes back (crash recovery or breaker
            // cooldown) — never drop the query.
            if !excluded.contains(&shard) {
                excluded.push(shard);
            }
            if excluded.len() >= self.config.shards {
                let target = (0..self.config.shards)
                    .map(|s| {
                        let t0 = self.free_at[s].max(now);
                        domain.plan.recovery_time(s, t0).max(domain.health[s].ready_at(now))
                    })
                    .fold(f64::INFINITY, f64::min);
                domain.stats.waited_for_recovery += 1;
                events.push(FaultEvent { name: "fault.wait", start: now, end: target.max(now) });
                now = target.max(now);
                excluded.clear();
                attempts_here = 1;
                continue;
            }
            let mut ring = self.ring.clone();
            for &dead in &excluded {
                ring = ring.remove_shard(dead);
            }
            let next = ring.shard_for(&self.kbs[id.index].fingerprint);
            domain.stats.failovers += 1;
            count("fault_failover_total", "", next);
            events.push(FaultEvent { name: "fault.failover", start: now, end: now });
            total_attempts += 1;
            attempts_here = 1;
            failover = true;
            shard = next;
        }
    }

    /// The admission-model view of `id` on `shard`: the KB's shared
    /// cost numbers with the per-replica compiled/predictor bits.
    fn effective_telemetry(&self, id: ClusterKbId, shard: usize) -> KbTelemetry {
        let model = &self.kbs[id.index];
        if model.shard == shard {
            return model.telemetry;
        }
        let replica = model.failovers.iter().find(|r| r.shard == shard);
        KbTelemetry {
            compiled: replica.is_some_and(|r| r.compiled),
            has_predictor: replica.is_some_and(|r| r.has_predictor),
            ..model.telemetry
        }
    }

    /// The engine-local id of `id` on `shard`, registering a failover
    /// replica there on first use: the formula and weights are cloned
    /// from the primary registration, and the replica's first exact
    /// dispatch recompiles through its own knowledge base's persistent
    /// component cache on the failover shard.
    fn replica_kb(&mut self, id: ClusterKbId, shard: usize) -> KbId {
        let model = &self.kbs[id.index];
        if model.shard == shard {
            return model.kb;
        }
        if let Some(replica) = model.failovers.iter().find(|r| r.shard == shard) {
            return replica.kb;
        }
        let (name, cnf, weights) = {
            let primary = self.shards[model.shard].kb(model.kb);
            (model.name.clone(), primary.cnf(), primary.weights().clone())
        };
        let kb = self.shards[shard].register(name, &cnf, weights);
        self.kbs[id.index].failovers.push(FailoverReplica {
            shard,
            kb,
            compiled: false,
            has_predictor: false,
        });
        kb
    }

    /// Marks `id` compiled (with a predictor when configured) on
    /// `shard` — primary or failover replica — so later arrivals are
    /// judged against warm costs.
    fn mark_compiled(&mut self, id: ClusterKbId, shard: usize) {
        let has_predictor = self.config.engine.predictor.is_some();
        let model = &mut self.kbs[id.index];
        if model.shard == shard {
            model.telemetry.compiled = true;
            model.telemetry.has_predictor = has_predictor;
        } else if let Some(replica) = model.failovers.iter_mut().find(|r| r.shard == shard) {
            replica.compiled = true;
            replica.has_predictor = has_predictor;
        }
    }
}

/// Emits the counters and the modeled span chain for one admitted
/// query: a `cluster.query` root on the query's own track spanning
/// arrival to modeled completion, with instantaneous `cluster.admit` /
/// `cluster.route` markers, a `queue.wait` child covering the backlog,
/// a `store.probe` marker on exact routes (`result = hit|miss`), a
/// `serve.compile` child on cold exact routes, and a `serve.eval`
/// child for the service itself. All timestamps are virtual (modeled)
/// seconds, so the chain is identical on every replay of a workload.
#[allow(clippy::too_many_arguments)]
fn record_admit_telemetry(
    tel: &Telemetry,
    track: u64,
    shard: usize,
    tenant: &str,
    route_label: &'static str,
    reason: &'static str,
    deadline_miss: bool,
    t: f64,
    start: f64,
    stage: &StageBreakdown,
    cold: bool,
    exact: bool,
    events: &[FaultEvent],
) {
    let shard_label = shard.to_string();
    let labels: [(&str, &str); 4] =
        [("shard", &shard_label), ("tenant", tenant), ("route", route_label), ("reason", reason)];
    tel.registry.counter("cluster_admissions_total", &labels).inc();
    if deadline_miss {
        tel.registry.counter("cluster_deadline_miss_total", &[("shard", &shard_label)]).inc();
    }
    // Modeled arrival-to-completion latency, per shard — the histogram
    // the default latency SLO watches (merge the shards' snapshots via
    // `Histogram::merge` for the cluster-wide view).
    tel.registry
        .histogram("cluster_modeled_latency_seconds", &[("shard", &shard_label)])
        .record(stage.total());
    let end = start + stage.compile_s + stage.exec_s;
    let root = tel.tracer.record_span(track, "cluster.query", &labels, t, end);
    tel.tracer.record_span_under(track, "cluster.admit", &[("decision", "admit")], t, t, root);
    tel.tracer.record_span_under(track, "cluster.route", &[("route", route_label)], t, t, root);
    tel.tracer.record_span_under(track, "queue.wait", &[], t, start, root);
    if exact {
        let result = if cold { "miss" } else { "hit" };
        tel.tracer.record_span_under(
            track,
            "store.probe",
            &[("result", result)],
            start,
            start,
            root,
        );
    }
    if cold {
        tel.tracer.record_span_under(
            track,
            "serve.compile",
            &[("tenant", tenant)],
            start,
            start + stage.compile_s,
            root,
        );
    }
    tel.tracer.record_span_under(track, "serve.eval", &[], start + stage.compile_s, end, root);
    record_fault_events(tel, track, root, events, t, end);
}

/// Nests the fault-layer decisions (retries, failovers, breaker
/// rejections, degrades, waits) for one query under its root span,
/// clamped into the root interval so the trace forest stays well
/// formed.
fn record_fault_events(
    tel: &Telemetry,
    track: u64,
    root: u64,
    events: &[FaultEvent],
    t: f64,
    end: f64,
) {
    for ev in events {
        let start = ev.start.clamp(t, end);
        let stop = ev.end.clamp(start, end);
        tel.tracer.record_span_under(track, ev.name, &[], start, stop, root);
    }
}

/// Modeled service seconds for an admitted route, from the same
/// deterministic telemetry admission judged it with.
fn modeled_cost(route: Route, query: &Query, t: &KbTelemetry) -> f64 {
    match route {
        Route::Exact => t.exact_cost(&query.kind),
        Route::Approx { samples } => samples as f64 * t.sample_s,
        // One forward pass, modeled at one warm evaluation.
        Route::Predicted => t.eval_s,
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::router::QueryKind;
    use reason_sat::Cnf;

    fn chain_cnf(n: usize) -> Cnf {
        let clauses: Vec<Vec<i32>> = (1..n as i32).map(|v| vec![-v, v + 1]).collect();
        Cnf::from_clauses(n, clauses)
    }

    fn fingerprints(count: usize) -> Vec<FormulaFingerprint> {
        (0..count)
            .map(|i| {
                let cnf = Cnf::from_clauses(
                    6,
                    vec![vec![1, 2], vec![-3, (i % 5) as i32 + 1], vec![(i % 6) as i32 + 1]],
                );
                let w = WmcWeights::new(vec![0.1 + (i as f64 % 7.0) / 10.0; 6]);
                FormulaFingerprint::from_parts(6, cnf.clauses(), &w)
            })
            .collect()
    }

    #[test]
    fn ring_placement_is_deterministic_and_in_range() {
        let ring = HashRing::new(4, 32, 7);
        let again = HashRing::new(4, 32, 7);
        for fp in fingerprints(64) {
            let shard = ring.shard_for(&fp);
            assert!(shard < 4);
            assert_eq!(shard, again.shard_for(&fp));
        }
    }

    #[test]
    fn ring_spreads_keys_over_every_shard() {
        let ring = HashRing::new(4, 64, 7);
        let mut counts = [0usize; 4];
        for fp in fingerprints(256) {
            counts[ring.shard_for(&fp)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "dead shard: {counts:?}");
    }

    #[test]
    fn adding_a_shard_remaps_only_a_slice_of_keys() {
        let before = HashRing::new(4, 64, 7);
        let after = HashRing::new(5, 64, 7);
        let keys = fingerprints(512);
        let moved = keys.iter().filter(|fp| before.shard_for(fp) != after.shard_for(fp)).count();
        // Expectation is 1/5 of keys; 2/5 leaves generous slack while
        // still catching a modulo-style full reshuffle (~4/5 moved).
        assert!(moved <= keys.len() * 2 / 5, "{moved}/{} keys moved", keys.len());
        // Every moved key lands on the new shard — existing shards
        // never trade keys among themselves.
        for fp in &keys {
            if before.shard_for(fp) != after.shard_for(fp) {
                assert_eq!(after.shard_for(fp), 4);
            }
        }
    }

    #[test]
    fn cluster_answers_match_a_single_engine_bit_for_bit() {
        let cnf = chain_cnf(8);
        let weights = WmcWeights::uniform(8);
        let mut ev = reason_pc::Evidence::empty(8);
        ev.set(0, 1);
        let queries: Vec<Query> = vec![
            Query::exact(QueryKind::Wmc),
            Query::exact(QueryKind::Probability(ev)),
            Query::exact(QueryKind::Marginal(reason_pc::Evidence::empty(8), 3)),
        ];

        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(3));
        let kb = cluster.register("chain", &cnf, weights.clone());
        let batch: Vec<(ClusterKbId, Query)> = queries.iter().map(|q| (kb, q.clone())).collect();
        let report = cluster.serve(&batch).unwrap();

        let mut single = ServeEngine::new(ServeConfig::default());
        let sid = single.register("chain", &cnf, weights);
        let reference = single.serve(sid, &queries).unwrap();

        assert_eq!(report.outcomes.len(), queries.len());
        for (got, want) in report.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(got.answer.as_ref().unwrap(), &want.answer);
            assert!(!got.deadline_miss);
        }
        assert_eq!(report.stats.exact, 3);
        assert_eq!(report.stats.rejected, 0);
    }

    #[test]
    fn backlogged_shard_rejects_and_keeps_the_outcome() {
        let cnf = chain_cnf(10);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        let kb = cluster.register("chain", &cnf, WmcWeights::uniform(10));
        let shard = cluster.shard_of(kb);

        // A deadline-free query charges the cold compile to the virtual
        // clock; a second query arriving "immediately" with a deadline
        // far below that backlog must be rejected before dispatch.
        let arrivals = vec![
            (kb, Query::exact(QueryKind::Wmc), 0.0),
            (kb, Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(10)), 0.0),
        ];
        let report = cluster.serve_at(&arrivals).unwrap();

        assert_eq!(report.outcomes.len(), 2, "rejects stay in the report");
        assert!(matches!(report.outcomes[0].decision, Admission::Admit(Route::Exact)));
        assert!(report.outcomes[0].answer.is_some());
        let reject = &report.outcomes[1];
        assert!(matches!(reject.decision, Admission::Reject { .. }));
        assert!(reject.answer.is_none());
        assert!(reject.deadline_miss);
        assert_eq!(reject.shard, shard);
        assert_eq!(report.stats.rejected, 1);
        assert_eq!(report.stats.exact, 1);
    }

    #[test]
    fn admission_degrades_under_backlog_and_bounds_contain_the_exact_answer() {
        // ~0.49 satisfying mass: rare-event workloads would need more
        // than the degraded budget's samples for a tight bracket.
        let cnf = Cnf::from_clauses(12, vec![vec![1, 2], vec![-3, 4], vec![5, 6, 7]]);
        let weights = WmcWeights::uniform(12);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        let kb = cluster.register("wide", &cnf, weights.clone());

        // Cold shard: the prior charges the whole compile (~120 µs at
        // n = 12) to the exact rung, so a 100 µs deadline leaves a
        // positive budget (50 µs after safety) that exact cannot fit —
        // admission must degrade to the anytime rung before dispatch.
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_micros(100));
        let report = cluster.serve_at(&[(kb, q, 0.0)]).unwrap();
        let outcome = &report.outcomes[0];
        match outcome.decision {
            Admission::Admit(Route::Approx { samples }) => assert!(samples >= 1),
            ref other => panic!("expected a degraded admit, got {other:?}"),
        }

        // The degraded bracket must contain the exact answer.
        let exact_report = cluster.serve(&[(kb, Query::exact(QueryKind::Wmc))]).unwrap();
        let Answer::Exact(exact) = exact_report.outcomes[0].answer.clone().unwrap() else {
            panic!("deadline-free query is exact");
        };
        match outcome.answer.clone().unwrap() {
            Answer::Bounds { lower, upper, .. } => {
                assert!(
                    lower <= exact + 1e-12 && exact <= upper + 1e-12,
                    "bracket [{lower}, {upper}] misses exact {exact}"
                );
            }
            other => panic!("expected bounds, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_records_stage_sums_chains_and_reasons() {
        use reason_telemetry::{is_well_formed_forest, Telemetry, VirtualClock};

        let tel = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
        let cnf = chain_cnf(8);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        cluster.attach_telemetry(tel.clone());
        let kb = cluster.register("chain", &cnf, WmcWeights::uniform(8));

        let arrivals = vec![
            (kb, Query::exact(QueryKind::Wmc), 0.0), // cold: compiles
            (kb, Query::exact(QueryKind::Wmc), 1.0), // warm: store hit
            (kb, Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(1)), 1.0),
        ];
        let report = cluster.serve_at(&arrivals).unwrap();

        // Stage breakdowns partition the modeled latency bit-exactly.
        for o in &report.outcomes {
            assert_eq!(o.stage.total().to_bits(), o.modeled_latency_s.to_bits(), "{o:?}");
        }
        assert!(report.outcomes[0].stage.compile_s > 0.0, "cold query pays the compile");
        assert_eq!(report.outcomes[1].stage.compile_s, 0.0, "warm query does not");
        assert!(matches!(report.outcomes[2].decision, Admission::Reject { .. }));
        assert_eq!(report.outcomes[2].reason, "backlog_reject");

        // The modeled spans form one chain per query, warm and cold
        // distinguishable by their store.probe result and compile child.
        let spans = tel.tracer.finished();
        assert!(is_well_formed_forest(&spans), "cluster spans must nest cleanly");
        let roots: Vec<&reason_telemetry::SpanRecord> =
            spans.iter().filter(|s| s.name == "cluster.query").collect();
        assert_eq!(roots.len(), 3, "one root span per submitted query");
        let children_of = |root: u64| -> Vec<&reason_telemetry::SpanRecord> {
            spans.iter().filter(|s| s.parent == Some(root)).collect()
        };
        let probe_result = |root: u64| -> Option<String> {
            children_of(root).iter().find(|s| s.name == "store.probe").map(|s| {
                s.labels.iter().find(|(k, _)| k == "result").map(|(_, v)| v.clone()).unwrap()
            })
        };
        let cold_root = roots.iter().find(|r| probe_result(r.id).as_deref() == Some("miss"));
        let warm_root = roots.iter().find(|r| probe_result(r.id).as_deref() == Some("hit"));
        let cold_root = cold_root.expect("one cold query").id;
        let warm_root = warm_root.expect("one warm query").id;
        for (root, wants_compile) in [(cold_root, true), (warm_root, false)] {
            let names: Vec<&str> = children_of(root).iter().map(|s| s.name.as_str()).collect();
            assert!(names.contains(&"cluster.admit"), "{names:?}");
            assert!(names.contains(&"cluster.route"), "{names:?}");
            assert!(names.contains(&"queue.wait"), "{names:?}");
            assert!(names.contains(&"serve.eval"), "{names:?}");
            assert_eq!(names.contains(&"serve.compile"), wants_compile, "{names:?}");
        }
        for root in &roots {
            for key in ["shard", "tenant", "route", "reason"] {
                assert!(root.labels.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }

        // Counters landed with the right labels.
        let snap = tel.registry.snapshot();
        let sum = |name: &str| -> u64 {
            snap.iter()
                .filter(|m| m.name == name)
                .map(|m| match &m.value {
                    reason_telemetry::MetricValue::Counter(v) => *v,
                    _ => 0,
                })
                .sum()
        };
        assert_eq!(sum("cluster_admissions_total"), 2);
        assert_eq!(sum("cluster_rejects_total"), 1);
        assert!(
            snap.iter().any(|m| m.name == "cluster_admissions_total"
                && m.labels.contains(&("tenant".to_string(), "chain".to_string()))
                && m.labels.contains(&("route".to_string(), "exact".to_string()))),
            "admissions must carry tenant and route labels"
        );
    }

    #[test]
    fn rejecting_cluster_trips_the_availability_slo_and_exposes_exemplars() {
        use reason_telemetry::{Telemetry, VirtualClock};

        let tel = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
        let cnf = chain_cnf(8);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        cluster.attach_telemetry(tel.clone());
        let kb = cluster.register("chain", &cnf, WmcWeights::uniform(8));
        let horizon = 60e-6;
        cluster.install_slos(ServeCluster::default_slo_specs(horizon));

        // Arrivals spaced well below the modeled service time, so the
        // backlog only grows: deadline-free queries keep feeding the
        // queue while tight-deadline queries reject against it — a
        // sustained availability burn far past 10x the 1% budget.
        let mut arrivals = vec![(kb, Query::exact(QueryKind::Wmc), 0.0)];
        for i in 1..60 {
            let t = i as f64 * horizon / 60.0;
            let q = if i % 2 == 0 {
                Query::exact(QueryKind::Wmc)
            } else {
                Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(1))
            };
            arrivals.push((kb, q, t));
        }
        let report = cluster.serve_at(&arrivals).unwrap();
        assert!(report.stats.rejected > 20, "the workload is reject-heavy: {:?}", report.stats);
        cluster.finish_slos(horizon);

        let availability: Vec<_> =
            cluster.slo_alerts().iter().filter(|a| a.slo == "availability").collect();
        assert!(!availability.is_empty(), "sustained rejects must trip availability");
        assert!(availability[0].resolved_at_s.is_some(), "finish_slos closes the alert");
        assert!(availability[0].peak_burn_fast >= 10.0);

        // The alert is a span on the reserved track, and the forest
        // (queries + alert) stays well formed.
        let spans = tel.tracer.finished();
        assert!(reason_telemetry::is_well_formed_forest(&spans));
        let alert_spans: Vec<_> =
            spans.iter().filter(|s| s.name == "slo.alert" && s.track == SLO_TRACK).collect();
        assert_eq!(alert_spans.len(), cluster.slo_alerts().len(), "one span per alert");

        // Exemplars: the worst-latency query is the cold compile.
        let worst = cluster.tail_exemplars(3);
        assert!(!worst.is_empty());
        assert!(worst[0].duration_s() >= worst.last().unwrap().duration_s());
        assert!(
            worst[0].chain.iter().any(|s| s.name == "serve.compile"),
            "the tail exemplar keeps its full chain: {:?}",
            worst[0].chain
        );

        // The latency histogram feeds the latency SLO.
        let snap = tel.registry.snapshot();
        assert!(snap.iter().any(|m| m.name == "cluster_modeled_latency_seconds"));
        assert!(snap.iter().any(|m| m.name == "slo_burn_rate_fast"));
    }

    #[test]
    fn healthy_cluster_keeps_default_slos_quiet() {
        use reason_telemetry::{Telemetry, VirtualClock};

        let tel = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
        let cnf = chain_cnf(8);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        cluster.attach_telemetry(tel.clone());
        let kb = cluster.register("chain", &cnf, WmcWeights::uniform(8));
        cluster.install_slos(ServeCluster::default_slo_specs(1.0));

        // Deadline-free queries spaced far apart: nothing rejects,
        // nothing misses, modeled latencies sit far under 1 ms warm.
        let arrivals: Vec<_> =
            (0..40).map(|i| (kb, Query::exact(QueryKind::Wmc), i as f64 / 40.0)).collect();
        let report = cluster.serve_at(&arrivals).unwrap();
        cluster.finish_slos(1.0);
        assert_eq!(report.stats.rejected, 0);
        assert!(cluster.slo_alerts().is_empty(), "alerts: {:?}", cluster.slo_alerts());
        // The slo_* metric families still export, so quiet and noisy
        // sweeps share one deterministic schema.
        let names: Vec<String> = tel.registry.snapshot().iter().map(|m| m.name.clone()).collect();
        assert!(names.iter().any(|n| n == "slo_alerts_total"));
    }

    #[test]
    fn kbs_spread_across_shards_and_serve_interleaved_batches() {
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(4));
        let kbs: Vec<ClusterKbId> = (0..8)
            .map(|i| {
                let cnf = chain_cnf(6 + i % 4);
                cluster.register(format!("kb-{i}"), &cnf, WmcWeights::uniform(6 + i % 4))
            })
            .collect();
        let shards: std::collections::HashSet<usize> =
            kbs.iter().map(|&id| cluster.shard_of(id)).collect();
        assert!(shards.len() > 1, "8 KBs all hashed to one shard");

        let batch: Vec<(ClusterKbId, Query)> =
            kbs.iter().map(|&id| (id, Query::exact(QueryKind::Wmc))).collect();
        let report = cluster.serve(&batch).unwrap();
        assert_eq!(report.outcomes.len(), 8);
        for (outcome, &id) in report.outcomes.iter().zip(&kbs) {
            assert_eq!(outcome.shard, cluster.shard_of(id));
            assert!(matches!(outcome.answer, Some(Answer::Exact(_))));
        }
    }

    #[test]
    fn removing_a_shard_never_moves_surviving_keys() {
        let before = HashRing::new(4, 64, 7);
        let after = before.remove_shard(2);
        for fp in fingerprints(512) {
            let old = before.shard_for(&fp);
            let new = after.shard_for(&fp);
            assert_ne!(new, 2, "removed shard still owns a key");
            if old != 2 {
                assert_eq!(new, old, "a surviving key moved on shard removal");
            }
        }
    }

    #[test]
    fn empty_fault_plan_is_invisible() {
        let cnf = chain_cnf(8);
        let arrivals = |cluster: &mut ServeCluster, kb: ClusterKbId| {
            let batch = vec![
                (kb, Query::exact(QueryKind::Wmc), 0.0),
                (kb, Query::exact(QueryKind::Wmc), 1.0),
                (kb, Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(1)), 1.0),
            ];
            cluster.serve_at(&batch).unwrap()
        };

        let mut plain = ServeCluster::new(ClusterConfig::with_shards(2));
        let kb = plain.register("chain", &cnf, WmcWeights::uniform(8));
        let baseline = arrivals(&mut plain, kb);

        let mut guarded = ServeCluster::new(ClusterConfig::with_shards(2));
        let kb = guarded.register("chain", &cnf, WmcWeights::uniform(8));
        guarded.install_fault_domain(FaultPlan::new(), FaultConfig::default());
        let report = arrivals(&mut guarded, kb);

        for (got, want) in report.outcomes.iter().zip(&baseline.outcomes) {
            assert_eq!(got.answer, want.answer);
            assert_eq!(got.decision, want.decision);
            assert_eq!(got.reason, want.reason);
            assert_eq!(got.modeled_latency_s, want.modeled_latency_s);
            assert_eq!(got.attempts, 1);
            assert!(!got.failover);
            assert!(!got.degraded_by_fault);
        }
        let stats = guarded.fault_stats().unwrap();
        assert_eq!(stats, FaultStats::default(), "empty plan must leave no trace");
    }

    #[test]
    fn crashed_shard_fails_over_and_answers_bit_for_bit() {
        let cnf = chain_cnf(8);
        let weights = WmcWeights::uniform(8);
        let queries: Vec<Query> = vec![Query::exact(QueryKind::Wmc), Query::exact(QueryKind::Wmc)];

        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(3));
        let kb = cluster.register("chain", &cnf, weights.clone());
        let home = cluster.shard_of(kb);
        cluster
            .install_fault_domain(FaultPlan::new().crash(home, 0.0, 1e6), FaultConfig::default());

        let arrivals: Vec<(ClusterKbId, Query, f64)> =
            queries.iter().map(|q| (kb, q.clone(), 0.0)).collect();
        let report = cluster.serve_at(&arrivals).unwrap();

        let mut single = ServeEngine::new(ServeConfig::default());
        let sid = single.register("chain", &cnf, weights);
        let reference = single.serve(sid, &queries).unwrap();

        for (got, want) in report.outcomes.iter().zip(&reference.outcomes) {
            assert_ne!(got.shard, home, "query served on the crashed shard");
            assert!(got.failover, "failover must be visible in the outcome");
            assert!(got.attempts > 1);
            assert_eq!(got.answer.as_ref().unwrap(), &want.answer, "failover changed the answer");
        }
        let stats = cluster.fault_stats().unwrap();
        assert!(stats.crashes_hit > 0);
        assert!(stats.failovers >= 1);
        assert!(stats.retries >= 1, "hedged retries precede failover");
    }

    #[test]
    fn cache_wipe_forces_a_recompile_that_reproduces_the_answer() {
        let cnf = chain_cnf(8);
        let weights = WmcWeights::uniform(8);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        let kb = cluster.register("chain", &cnf, weights);
        let home = cluster.shard_of(kb);
        cluster
            .install_fault_domain(FaultPlan::new().wipe_cache(home, 0.5), FaultConfig::default());

        let arrivals = vec![
            (kb, Query::exact(QueryKind::Wmc), 0.0),
            (kb, Query::exact(QueryKind::Wmc), 1.0), // after the wipe: recompiles
        ];
        let report = cluster.serve_at(&arrivals).unwrap();
        assert_eq!(report.outcomes[0].answer, report.outcomes[1].answer);
        assert!(
            report.outcomes[1].stage.compile_s > 0.0,
            "post-wipe query must pay the recompile: {:?}",
            report.outcomes[1]
        );
        assert_eq!(cluster.fault_stats().unwrap().cache_wipes, 1);
    }

    #[test]
    fn compile_fault_degrades_instead_of_erroring() {
        let cnf = chain_cnf(8);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        let kb = cluster.register("chain", &cnf, WmcWeights::uniform(8));
        let home = cluster.shard_of(kb);
        cluster.install_fault_domain(
            FaultPlan::new().fail_compiles(home, 0.0, 1e6),
            FaultConfig::default(),
        );

        let report = cluster.serve_at(&[(kb, Query::exact(QueryKind::Wmc), 0.0)]).unwrap();
        let outcome = &report.outcomes[0];
        assert!(outcome.degraded_by_fault, "compile fault must degrade: {outcome:?}");
        assert!(matches!(outcome.decision, Admission::Admit(Route::Approx { .. })));
        let Some(Answer::Bounds { lower, upper, .. }) = outcome.answer else {
            panic!("degraded query answers with bounds: {outcome:?}");
        };
        // chain_cnf(8) over uniform weights has exact WMC 9/256.
        let exact = 9.0 / 256.0;
        assert!(lower <= exact + 1e-12 && exact <= upper + 1e-12);
        assert_eq!(cluster.fault_stats().unwrap().degraded_under_failure, 1);
    }
}
