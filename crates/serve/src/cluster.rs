//! The sharded serving front-end: consistent hashing, deadline-aware
//! admission control, and virtual-time queue modeling over a pool of
//! [`ServeEngine`] shards.
//!
//! A [`ServeCluster`] owns `N` independent [`ServeEngine`]s and places
//! every registered knowledge base on exactly one of them by
//! consistent-hashing its [`FormulaFingerprint`] onto a [`HashRing`] of
//! virtual nodes. Placement is a pure function of `(fingerprint, shard
//! count, replicas, salt)`, so growing or shrinking the pool by one
//! shard remaps only the keys the new/removed shard's arc covers —
//! about `1/N` of them — instead of reshuffling everything the way
//! `digest % N` would.
//!
//! Admission happens *before* dispatch. Each arriving query is judged
//! by [`QueryRouter::admit`] against a deterministic cost model (the
//! [`KbTelemetry::prior`] fit, upgraded as the cluster observes its own
//! dispatch decisions) plus the destination shard's modeled queue
//! backlog at arrival time. A query whose deadline budget the backlog
//! has already consumed is [`Admission::Reject`]ed outright — it never
//! occupies an executor lane only to miss — and a query that can still
//! make its deadline on a cheaper rung is degraded *now*, not after an
//! exact attempt times out. Rejected queries stay in the report: every
//! submitted query has exactly one [`ClusterOutcome`], admitted or not.
//!
//! Because admission reads only the deterministic model (never wall
//! clocks), a replayed workload re-derives the identical admission and
//! routing sequence; the engines then execute the pre-decided routes
//! via [`ServeEngine::serve_routed`], whose answers are bit-identical
//! to a single engine serving the same queries on the same routes.

use std::sync::Arc;

use reason_pc::{FormulaFingerprint, WmcWeights};
use reason_sat::Cnf;
use reason_telemetry::Telemetry;

use crate::engine::{Answer, KbId, ServeConfig, ServeEngine, ServeError};
use crate::router::{Admission, KbTelemetry, Query, QueryRouter, Route};

/// A consistent-hash ring mapping fingerprints to shard indices.
///
/// Each shard contributes `replicas` virtual points placed by the
/// [`reason_pc::ring_mix`] finalizer; a key owns the first point at or
/// clockwise-after its own hash. More replicas smooth the load split at
/// the cost of a longer (still binary-searched) point table.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
    salt: u64,
}

impl HashRing {
    /// A ring of `shards` shards with `replicas` virtual points each.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `replicas` is zero.
    pub fn new(shards: usize, replicas: usize, salt: u64) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(replicas > 0, "a ring needs at least one replica point per shard");
        let mut points = Vec::with_capacity(shards * replicas);
        for shard in 0..shards {
            for replica in 0..replicas {
                // Scatter each (shard, replica) pair independently of
                // the others so a shard's arcs interleave with everyone
                // else's instead of clustering. The pre-mix input stays
                // unique per pair: disjoint bit ranges for shard and
                // replica, XORed with a salt-derived constant.
                let point = reason_pc::ring_mix(
                    (((shard as u64) << 32) | replica as u64) ^ reason_pc::ring_mix(salt),
                );
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards, salt }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `fingerprint`: the first virtual point at or
    /// clockwise-after the key's hash, wrapping at the top of the ring.
    pub fn shard_for(&self, fingerprint: &FormulaFingerprint) -> usize {
        let key = fingerprint.ring_hash(self.salt);
        let idx = self.points.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }
}

/// Cluster-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of [`ServeEngine`] shards.
    pub shards: usize,
    /// Virtual points per shard on the [`HashRing`].
    pub replicas: usize,
    /// Ring salt: changing it reshuffles placement wholesale, so keep
    /// it fixed for the lifetime of a deployment.
    pub salt: u64,
    /// Per-shard engine configuration (every shard is identical).
    pub engine: ServeConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { shards: 2, replicas: 32, salt: 0xC1A5, engine: ServeConfig::default() }
    }
}

impl ClusterConfig {
    /// The default configuration with `shards` shards.
    pub fn with_shards(shards: usize) -> Self {
        ClusterConfig { shards, ..Default::default() }
    }
}

/// Handle to a knowledge base registered with a [`ServeCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterKbId {
    index: usize,
}

/// Where one query's modeled latency went: queueing behind the shard's
/// backlog, compiling a cold artifact, and executing the admitted
/// route. All fields are seconds of modeled (virtual) time, and they
/// partition [`ClusterOutcome::modeled_latency_s`] exactly:
/// `queue_s + compile_s + exec_s == modeled_latency_s` (up to float
/// association). Rejected queries carry their sinking backlog in
/// `queue_s` and zero elsewhere.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Seconds the query waited behind earlier work on its shard.
    pub queue_s: f64,
    /// Modeled cold-compile seconds; `0.0` on warm or non-exact routes.
    pub compile_s: f64,
    /// Modeled service seconds for the route itself (evaluations,
    /// samples, or one predictor pass).
    pub exec_s: f64,
}

impl StageBreakdown {
    /// Sum of the stages — reproduces the modeled latency.
    pub fn total(&self) -> f64 {
        self.queue_s + self.compile_s + self.exec_s
    }
}

/// One query's fate through the cluster: where the ring placed it, what
/// admission decided, and what came back.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The shard the ring routed the knowledge base to.
    pub shard: usize,
    /// The pre-dispatch admission verdict.
    pub decision: Admission,
    /// Why admission picked that rung (see
    /// [`QueryRouter::admit_explained`]).
    pub reason: &'static str,
    /// The answer; `None` exactly when the query was rejected.
    pub answer: Option<Answer>,
    /// Arrival-to-completion seconds under the deterministic queue
    /// model (for rejects: the backlog that sank the query).
    pub modeled_latency_s: f64,
    /// Where the modeled latency went, stage by stage.
    pub stage: StageBreakdown,
    /// `true` when the modeled latency exceeds the query's deadline
    /// (rejects always miss; deadline-free queries never do).
    pub deadline_miss: bool,
    /// Measured executor seconds for the query's task(s); `0.0` for
    /// rejects, which never dispatch.
    pub latency_s: f64,
}

/// Admission counters over one [`ServeCluster::serve_at`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted on the exact rung.
    pub exact: u64,
    /// Queries degraded to anytime bounds before dispatch.
    pub approx: u64,
    /// Queries degraded to the prediction network before dispatch.
    pub predicted: u64,
    /// Queries rejected before dispatch.
    pub rejected: u64,
    /// Admitted queries whose modeled latency still missed their
    /// deadline (the backlog estimate was optimistic).
    pub deadline_misses: u64,
}

/// The result of one cluster batch.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-query outcomes, in submission order — one per submitted
    /// query, including rejects.
    pub outcomes: Vec<ClusterOutcome>,
    /// Admission counters for this batch.
    pub stats: AdmissionStats,
}

/// What the cluster deterministically believes about one knowledge
/// base. Unlike the engines' live telemetry (which measures wall
/// clocks), this model is a pure function of the registration and the
/// admission history, so replays reproduce it exactly.
#[derive(Debug, Clone)]
struct KbModel {
    shard: usize,
    kb: KbId,
    /// Registration name — the `tenant` label on cluster metrics and
    /// spans.
    name: String,
    telemetry: KbTelemetry,
}

/// One knowledge base's admitted queries within a batch, in admission
/// order: (arrival index, query, decided route).
type AdmittedGroup = (ClusterKbId, Vec<(usize, Query, Route)>);

/// The sharded serving front-end (see the [module docs](self)).
pub struct ServeCluster {
    config: ClusterConfig,
    ring: HashRing,
    shards: Vec<ServeEngine>,
    /// Deterministic admission judge (no counters are ever recorded on
    /// it — [`QueryRouter::admit`] takes `&self`).
    admission: QueryRouter,
    kbs: Vec<KbModel>,
    /// Per-shard virtual clock: the modeled time each shard's queue
    /// drains. Admission charges `max(0, free_at - arrival)` as backlog.
    free_at: Vec<f64>,
    /// Optional observability sink: admission counters and per-query
    /// modeled span chains, plus whatever the shard engines record once
    /// attached.
    telemetry: Option<Arc<Telemetry>>,
    /// Trace track of the next query's span chain. Tracks start at 1
    /// (track 0 carries the engines' wall-clock spans) and each query
    /// gets its own: a queued query's arrival-to-completion interval
    /// genuinely overlaps its predecessor's service interval in virtual
    /// time, which a shared track could not represent as a well-formed
    /// forest.
    next_track: u64,
}

impl ServeCluster {
    /// A cluster of `config.shards` identically configured engines.
    ///
    /// # Panics
    ///
    /// Panics when `config.shards` or `config.replicas` is zero.
    pub fn new(config: ClusterConfig) -> Self {
        let ring = HashRing::new(config.shards, config.replicas, config.salt);
        let shards = (0..config.shards).map(|_| ServeEngine::new(config.engine)).collect();
        ServeCluster {
            config,
            ring,
            shards,
            admission: QueryRouter::new(config.engine.router),
            kbs: Vec::new(),
            free_at: vec![0.0; config.shards],
            telemetry: None,
            next_track: 1,
        }
    }

    /// Attaches an observability sink. The cluster records labeled
    /// admission counters (`cluster_admissions_total{shard, tenant,
    /// route, reason}`, `cluster_rejects_total`,
    /// `cluster_deadline_miss_total`) and, for every query, a modeled
    /// span chain on its own track — `cluster.query` spanning arrival
    /// to modeled completion, with `cluster.admit`, `cluster.route`,
    /// `queue.wait`, `store.probe`, `serve.compile` (cold exact only)
    /// and `serve.eval` children, every span labeled with shard and
    /// tenant — all stamped with virtual (modeled) timestamps, so
    /// traces replay byte-identically. Each shard engine is attached
    /// too, contributing its wall-clock store and compile
    /// instrumentation on track 0.
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        for (shard, engine) in self.shards.iter_mut().enumerate() {
            engine.attach_telemetry(telemetry.clone(), shard);
        }
        self.telemetry = Some(telemetry);
    }

    /// The deterministic per-KB cost models admission judges against,
    /// as `(tenant, shard, model)` rows in registration order.
    pub fn kb_models(&self) -> Vec<(String, usize, KbTelemetry)> {
        self.kbs.iter().map(|m| (m.name.clone(), m.shard, m.telemetry)).collect()
    }

    /// Registers a knowledge base on the shard its fingerprint hashes
    /// to. Registration is cheap; compilation happens on the first
    /// exact dispatch.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        cnf: &Cnf,
        weights: WmcWeights,
    ) -> ClusterKbId {
        let name = name.into();
        let fingerprint = FormulaFingerprint::from_parts(cnf.num_vars(), cnf.clauses(), &weights);
        let shard = self.ring.shard_for(&fingerprint);
        let kb = self.shards[shard].register(name.clone(), cnf, weights);
        let registered = self.shards[shard].kb(kb);
        self.kbs.push(KbModel {
            shard,
            kb,
            name,
            telemetry: KbTelemetry::prior(registered.num_vars(), registered.num_clauses()),
        });
        ClusterKbId { index: self.kbs.len() - 1 }
    }

    /// The shard the ring placed `id` on.
    pub fn shard_of(&self, id: ClusterKbId) -> usize {
        self.kbs[id.index].shard
    }

    /// The ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Shard engines, for inspection (store/router statistics).
    pub fn engines(&self) -> &[ServeEngine] {
        &self.shards
    }

    /// Serves a batch arriving all at once (virtual time zero). See
    /// [`serve_at`](Self::serve_at).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoMass`] when an exact-routed query forces a
    /// compilation and its formula has no satisfying mass.
    pub fn serve(&mut self, batch: &[(ClusterKbId, Query)]) -> Result<ClusterReport, ServeError> {
        let arrivals: Vec<(ClusterKbId, Query, f64)> =
            batch.iter().map(|(id, q)| (*id, q.clone(), 0.0)).collect();
        self.serve_at(&arrivals)
    }

    /// Serves an open-loop workload: `(kb, query, arrival_seconds)`
    /// triples in nondecreasing arrival order.
    ///
    /// Admission runs first, in arrival order, against the
    /// deterministic cost model and each shard's virtual clock: a
    /// query's backlog is how far its shard's modeled queue extends
    /// past its arrival, its admitted route is charged to the clock,
    /// and a query whose deadline budget the backlog consumes is
    /// rejected without ever dispatching. The admitted queries are then
    /// executed for real, grouped per `(shard, knowledge base)` through
    /// [`ServeEngine::serve_routed`] (preserving submission order
    /// within each group, with deadlines riding along for EDF
    /// dispatch), and the measured latencies land in
    /// [`ClusterOutcome::latency_s`] next to the modeled ones.
    ///
    /// The virtual clock persists across calls, so successive
    /// [`serve_at`](Self::serve_at) batches model one continuous queue.
    ///
    /// # Panics
    ///
    /// Panics when arrivals are not sorted by arrival time.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoMass`] when an exact-routed query forces a
    /// compilation and its formula has no satisfying mass.
    pub fn serve_at(
        &mut self,
        arrivals: &[(ClusterKbId, Query, f64)],
    ) -> Result<ClusterReport, ServeError> {
        let mut stats = AdmissionStats::default();
        let mut outcomes: Vec<ClusterOutcome> = Vec::with_capacity(arrivals.len());
        let mut groups: Vec<AdmittedGroup> = Vec::new();

        let mut last_t = f64::NEG_INFINITY;
        for (i, (id, query, t)) in arrivals.iter().enumerate() {
            assert!(*t >= last_t, "arrivals must be sorted by arrival time");
            last_t = *t;
            let model = &self.kbs[id.index];
            let shard = model.shard;
            let backlog_s = (self.free_at[shard] - t).max(0.0);
            let (decision, reason) =
                self.admission.admit_explained(query, &model.telemetry, backlog_s);
            match decision {
                Admission::Reject { .. } => {
                    stats.rejected += 1;
                    stats.deadline_misses += 1;
                    if let Some(tel) = &self.telemetry {
                        let track = self.next_track;
                        let shard_label = shard.to_string();
                        let labels: [(&str, &str); 3] =
                            [("shard", &shard_label), ("tenant", &model.name), ("reason", reason)];
                        tel.registry.counter("cluster_rejects_total", &labels).inc();
                        tel.registry
                            .counter("cluster_deadline_miss_total", &[("shard", &shard_label)])
                            .inc();
                        let root = tel.tracer.record_span(
                            track,
                            "cluster.query",
                            &[
                                ("shard", &shard_label),
                                ("tenant", &model.name),
                                ("route", "reject"),
                                ("reason", reason),
                            ],
                            *t,
                            *t,
                        );
                        tel.tracer.record_span_under(
                            track,
                            "cluster.admit",
                            &[("decision", "reject")],
                            *t,
                            *t,
                            root,
                        );
                    }
                    self.next_track += 1;
                    outcomes.push(ClusterOutcome {
                        shard,
                        decision,
                        reason,
                        answer: None,
                        modeled_latency_s: backlog_s,
                        stage: StageBreakdown { queue_s: backlog_s, compile_s: 0.0, exec_s: 0.0 },
                        deadline_miss: true,
                        latency_s: 0.0,
                    });
                }
                Admission::Admit(route) => {
                    let cost_s = modeled_cost(route, query, &model.telemetry);
                    let cold = matches!(route, Route::Exact) && !model.telemetry.compiled;
                    let compile_s = if cold { model.telemetry.compile_s } else { 0.0 };
                    let start = self.free_at[shard].max(*t);
                    self.free_at[shard] = start + cost_s;
                    let modeled_latency_s = self.free_at[shard] - t;
                    let stage = StageBreakdown {
                        queue_s: (start - t).max(0.0),
                        compile_s,
                        exec_s: cost_s - compile_s,
                    };
                    let deadline_miss =
                        query.deadline.is_some_and(|d| modeled_latency_s > d.as_secs_f64());
                    let route_label = match route {
                        Route::Exact => "exact",
                        Route::Approx { .. } => "approx",
                        Route::Predicted => "predicted",
                    };
                    if let Some(tel) = &self.telemetry {
                        record_admit_telemetry(
                            tel,
                            self.next_track,
                            shard,
                            &model.name,
                            route_label,
                            reason,
                            deadline_miss,
                            *t,
                            start,
                            &stage,
                            cold,
                            matches!(route, Route::Exact),
                        );
                    }
                    self.next_track += 1;
                    match route {
                        Route::Exact => {
                            stats.exact += 1;
                            // The dispatch below compiles the artifact
                            // (and trains the predictor, when
                            // configured): upgrade the model so later
                            // arrivals are judged against warm costs.
                            let telemetry = &mut self.kbs[id.index].telemetry;
                            telemetry.compiled = true;
                            telemetry.has_predictor = self.config.engine.predictor.is_some();
                        }
                        Route::Approx { .. } => stats.approx += 1,
                        Route::Predicted => stats.predicted += 1,
                    }
                    if deadline_miss {
                        stats.deadline_misses += 1;
                    }
                    outcomes.push(ClusterOutcome {
                        shard,
                        decision,
                        reason,
                        answer: None,
                        modeled_latency_s,
                        stage,
                        deadline_miss,
                        latency_s: 0.0,
                    });
                    match groups.iter_mut().find(|(gid, _)| gid == id) {
                        Some((_, entries)) => entries.push((i, query.clone(), route)),
                        None => groups.push((*id, vec![(i, query.clone(), route)])),
                    }
                }
            }
        }

        // Dispatch: every admitted query executes for real on its
        // shard, on the route admission pre-decided.
        for (id, entries) in groups {
            let (shard, kb) = {
                let model = &self.kbs[id.index];
                (model.shard, model.kb)
            };
            let queries: Vec<Query> = entries.iter().map(|(_, q, _)| q.clone()).collect();
            let routes: Vec<Route> = entries.iter().map(|(_, _, r)| *r).collect();
            let report = self.shards[shard].serve_routed(kb, &queries, &routes)?;
            for ((i, _, _), outcome) in entries.iter().zip(report.outcomes) {
                outcomes[*i].answer = Some(outcome.answer);
                outcomes[*i].latency_s = outcome.latency_s;
            }
        }

        Ok(ClusterReport { outcomes, stats })
    }
}

/// Emits the counters and the modeled span chain for one admitted
/// query: a `cluster.query` root on the query's own track spanning
/// arrival to modeled completion, with instantaneous `cluster.admit` /
/// `cluster.route` markers, a `queue.wait` child covering the backlog,
/// a `store.probe` marker on exact routes (`result = hit|miss`), a
/// `serve.compile` child on cold exact routes, and a `serve.eval`
/// child for the service itself. All timestamps are virtual (modeled)
/// seconds, so the chain is identical on every replay of a workload.
#[allow(clippy::too_many_arguments)]
fn record_admit_telemetry(
    tel: &Telemetry,
    track: u64,
    shard: usize,
    tenant: &str,
    route_label: &'static str,
    reason: &'static str,
    deadline_miss: bool,
    t: f64,
    start: f64,
    stage: &StageBreakdown,
    cold: bool,
    exact: bool,
) {
    let shard_label = shard.to_string();
    let labels: [(&str, &str); 4] =
        [("shard", &shard_label), ("tenant", tenant), ("route", route_label), ("reason", reason)];
    tel.registry.counter("cluster_admissions_total", &labels).inc();
    if deadline_miss {
        tel.registry.counter("cluster_deadline_miss_total", &[("shard", &shard_label)]).inc();
    }
    let end = start + stage.compile_s + stage.exec_s;
    let root = tel.tracer.record_span(track, "cluster.query", &labels, t, end);
    tel.tracer.record_span_under(track, "cluster.admit", &[("decision", "admit")], t, t, root);
    tel.tracer.record_span_under(track, "cluster.route", &[("route", route_label)], t, t, root);
    tel.tracer.record_span_under(track, "queue.wait", &[], t, start, root);
    if exact {
        let result = if cold { "miss" } else { "hit" };
        tel.tracer.record_span_under(
            track,
            "store.probe",
            &[("result", result)],
            start,
            start,
            root,
        );
    }
    if cold {
        tel.tracer.record_span_under(
            track,
            "serve.compile",
            &[("tenant", tenant)],
            start,
            start + stage.compile_s,
            root,
        );
    }
    tel.tracer.record_span_under(track, "serve.eval", &[], start + stage.compile_s, end, root);
}

/// Modeled service seconds for an admitted route, from the same
/// deterministic telemetry admission judged it with.
fn modeled_cost(route: Route, query: &Query, t: &KbTelemetry) -> f64 {
    match route {
        Route::Exact => t.exact_cost(&query.kind),
        Route::Approx { samples } => samples as f64 * t.sample_s,
        // One forward pass, modeled at one warm evaluation.
        Route::Predicted => t.eval_s,
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::router::QueryKind;
    use reason_sat::Cnf;

    fn chain_cnf(n: usize) -> Cnf {
        let clauses: Vec<Vec<i32>> = (1..n as i32).map(|v| vec![-v, v + 1]).collect();
        Cnf::from_clauses(n, clauses)
    }

    fn fingerprints(count: usize) -> Vec<FormulaFingerprint> {
        (0..count)
            .map(|i| {
                let cnf = Cnf::from_clauses(
                    6,
                    vec![vec![1, 2], vec![-3, (i % 5) as i32 + 1], vec![(i % 6) as i32 + 1]],
                );
                let w = WmcWeights::new(vec![0.1 + (i as f64 % 7.0) / 10.0; 6]);
                FormulaFingerprint::from_parts(6, cnf.clauses(), &w)
            })
            .collect()
    }

    #[test]
    fn ring_placement_is_deterministic_and_in_range() {
        let ring = HashRing::new(4, 32, 7);
        let again = HashRing::new(4, 32, 7);
        for fp in fingerprints(64) {
            let shard = ring.shard_for(&fp);
            assert!(shard < 4);
            assert_eq!(shard, again.shard_for(&fp));
        }
    }

    #[test]
    fn ring_spreads_keys_over_every_shard() {
        let ring = HashRing::new(4, 64, 7);
        let mut counts = [0usize; 4];
        for fp in fingerprints(256) {
            counts[ring.shard_for(&fp)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "dead shard: {counts:?}");
    }

    #[test]
    fn adding_a_shard_remaps_only_a_slice_of_keys() {
        let before = HashRing::new(4, 64, 7);
        let after = HashRing::new(5, 64, 7);
        let keys = fingerprints(512);
        let moved = keys.iter().filter(|fp| before.shard_for(fp) != after.shard_for(fp)).count();
        // Expectation is 1/5 of keys; 2/5 leaves generous slack while
        // still catching a modulo-style full reshuffle (~4/5 moved).
        assert!(moved <= keys.len() * 2 / 5, "{moved}/{} keys moved", keys.len());
        // Every moved key lands on the new shard — existing shards
        // never trade keys among themselves.
        for fp in &keys {
            if before.shard_for(fp) != after.shard_for(fp) {
                assert_eq!(after.shard_for(fp), 4);
            }
        }
    }

    #[test]
    fn cluster_answers_match_a_single_engine_bit_for_bit() {
        let cnf = chain_cnf(8);
        let weights = WmcWeights::uniform(8);
        let mut ev = reason_pc::Evidence::empty(8);
        ev.set(0, 1);
        let queries: Vec<Query> = vec![
            Query::exact(QueryKind::Wmc),
            Query::exact(QueryKind::Probability(ev)),
            Query::exact(QueryKind::Marginal(reason_pc::Evidence::empty(8), 3)),
        ];

        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(3));
        let kb = cluster.register("chain", &cnf, weights.clone());
        let batch: Vec<(ClusterKbId, Query)> = queries.iter().map(|q| (kb, q.clone())).collect();
        let report = cluster.serve(&batch).unwrap();

        let mut single = ServeEngine::new(ServeConfig::default());
        let sid = single.register("chain", &cnf, weights);
        let reference = single.serve(sid, &queries).unwrap();

        assert_eq!(report.outcomes.len(), queries.len());
        for (got, want) in report.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(got.answer.as_ref().unwrap(), &want.answer);
            assert!(!got.deadline_miss);
        }
        assert_eq!(report.stats.exact, 3);
        assert_eq!(report.stats.rejected, 0);
    }

    #[test]
    fn backlogged_shard_rejects_and_keeps_the_outcome() {
        let cnf = chain_cnf(10);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        let kb = cluster.register("chain", &cnf, WmcWeights::uniform(10));
        let shard = cluster.shard_of(kb);

        // A deadline-free query charges the cold compile to the virtual
        // clock; a second query arriving "immediately" with a deadline
        // far below that backlog must be rejected before dispatch.
        let arrivals = vec![
            (kb, Query::exact(QueryKind::Wmc), 0.0),
            (kb, Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(10)), 0.0),
        ];
        let report = cluster.serve_at(&arrivals).unwrap();

        assert_eq!(report.outcomes.len(), 2, "rejects stay in the report");
        assert!(matches!(report.outcomes[0].decision, Admission::Admit(Route::Exact)));
        assert!(report.outcomes[0].answer.is_some());
        let reject = &report.outcomes[1];
        assert!(matches!(reject.decision, Admission::Reject { .. }));
        assert!(reject.answer.is_none());
        assert!(reject.deadline_miss);
        assert_eq!(reject.shard, shard);
        assert_eq!(report.stats.rejected, 1);
        assert_eq!(report.stats.exact, 1);
    }

    #[test]
    fn admission_degrades_under_backlog_and_bounds_contain_the_exact_answer() {
        // ~0.49 satisfying mass: rare-event workloads would need more
        // than the degraded budget's samples for a tight bracket.
        let cnf = Cnf::from_clauses(12, vec![vec![1, 2], vec![-3, 4], vec![5, 6, 7]]);
        let weights = WmcWeights::uniform(12);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        let kb = cluster.register("wide", &cnf, weights.clone());

        // Cold shard: the prior charges the whole compile (~120 µs at
        // n = 12) to the exact rung, so a 100 µs deadline leaves a
        // positive budget (50 µs after safety) that exact cannot fit —
        // admission must degrade to the anytime rung before dispatch.
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_micros(100));
        let report = cluster.serve_at(&[(kb, q, 0.0)]).unwrap();
        let outcome = &report.outcomes[0];
        match outcome.decision {
            Admission::Admit(Route::Approx { samples }) => assert!(samples >= 1),
            ref other => panic!("expected a degraded admit, got {other:?}"),
        }

        // The degraded bracket must contain the exact answer.
        let exact_report = cluster.serve(&[(kb, Query::exact(QueryKind::Wmc))]).unwrap();
        let Answer::Exact(exact) = exact_report.outcomes[0].answer.clone().unwrap() else {
            panic!("deadline-free query is exact");
        };
        match outcome.answer.clone().unwrap() {
            Answer::Bounds { lower, upper, .. } => {
                assert!(
                    lower <= exact + 1e-12 && exact <= upper + 1e-12,
                    "bracket [{lower}, {upper}] misses exact {exact}"
                );
            }
            other => panic!("expected bounds, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_records_stage_sums_chains_and_reasons() {
        use reason_telemetry::{is_well_formed_forest, Telemetry, VirtualClock};

        let tel = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
        let cnf = chain_cnf(8);
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(2));
        cluster.attach_telemetry(tel.clone());
        let kb = cluster.register("chain", &cnf, WmcWeights::uniform(8));

        let arrivals = vec![
            (kb, Query::exact(QueryKind::Wmc), 0.0), // cold: compiles
            (kb, Query::exact(QueryKind::Wmc), 1.0), // warm: store hit
            (kb, Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(1)), 1.0),
        ];
        let report = cluster.serve_at(&arrivals).unwrap();

        // Stage breakdowns partition the modeled latency exactly.
        for o in &report.outcomes {
            let err = (o.stage.total() - o.modeled_latency_s).abs();
            assert!(err <= 1e-12 * o.modeled_latency_s.max(1.0), "{o:?}");
        }
        assert!(report.outcomes[0].stage.compile_s > 0.0, "cold query pays the compile");
        assert_eq!(report.outcomes[1].stage.compile_s, 0.0, "warm query does not");
        assert!(matches!(report.outcomes[2].decision, Admission::Reject { .. }));
        assert_eq!(report.outcomes[2].reason, "backlog_reject");

        // The modeled spans form one chain per query, warm and cold
        // distinguishable by their store.probe result and compile child.
        let spans = tel.tracer.finished();
        assert!(is_well_formed_forest(&spans), "cluster spans must nest cleanly");
        let roots: Vec<&reason_telemetry::SpanRecord> =
            spans.iter().filter(|s| s.name == "cluster.query").collect();
        assert_eq!(roots.len(), 3, "one root span per submitted query");
        let children_of = |root: u64| -> Vec<&reason_telemetry::SpanRecord> {
            spans.iter().filter(|s| s.parent == Some(root)).collect()
        };
        let probe_result = |root: u64| -> Option<String> {
            children_of(root).iter().find(|s| s.name == "store.probe").map(|s| {
                s.labels.iter().find(|(k, _)| k == "result").map(|(_, v)| v.clone()).unwrap()
            })
        };
        let cold_root = roots.iter().find(|r| probe_result(r.id).as_deref() == Some("miss"));
        let warm_root = roots.iter().find(|r| probe_result(r.id).as_deref() == Some("hit"));
        let cold_root = cold_root.expect("one cold query").id;
        let warm_root = warm_root.expect("one warm query").id;
        for (root, wants_compile) in [(cold_root, true), (warm_root, false)] {
            let names: Vec<&str> = children_of(root).iter().map(|s| s.name.as_str()).collect();
            assert!(names.contains(&"cluster.admit"), "{names:?}");
            assert!(names.contains(&"cluster.route"), "{names:?}");
            assert!(names.contains(&"queue.wait"), "{names:?}");
            assert!(names.contains(&"serve.eval"), "{names:?}");
            assert_eq!(names.contains(&"serve.compile"), wants_compile, "{names:?}");
        }
        for root in &roots {
            for key in ["shard", "tenant", "route", "reason"] {
                assert!(root.labels.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }

        // Counters landed with the right labels.
        let snap = tel.registry.snapshot();
        let sum = |name: &str| -> u64 {
            snap.iter()
                .filter(|m| m.name == name)
                .map(|m| match &m.value {
                    reason_telemetry::MetricValue::Counter(v) => *v,
                    _ => 0,
                })
                .sum()
        };
        assert_eq!(sum("cluster_admissions_total"), 2);
        assert_eq!(sum("cluster_rejects_total"), 1);
        assert!(
            snap.iter().any(|m| m.name == "cluster_admissions_total"
                && m.labels.contains(&("tenant".to_string(), "chain".to_string()))
                && m.labels.contains(&("route".to_string(), "exact".to_string()))),
            "admissions must carry tenant and route labels"
        );
    }

    #[test]
    fn kbs_spread_across_shards_and_serve_interleaved_batches() {
        let mut cluster = ServeCluster::new(ClusterConfig::with_shards(4));
        let kbs: Vec<ClusterKbId> = (0..8)
            .map(|i| {
                let cnf = chain_cnf(6 + i % 4);
                cluster.register(format!("kb-{i}"), &cnf, WmcWeights::uniform(6 + i % 4))
            })
            .collect();
        let shards: std::collections::HashSet<usize> =
            kbs.iter().map(|&id| cluster.shard_of(id)).collect();
        assert!(shards.len() > 1, "8 KBs all hashed to one shard");

        let batch: Vec<(ClusterKbId, Query)> =
            kbs.iter().map(|&id| (id, Query::exact(QueryKind::Wmc))).collect();
        let report = cluster.serve(&batch).unwrap();
        assert_eq!(report.outcomes.len(), 8);
        for (outcome, &id) in report.outcomes.iter().zip(&kbs) {
            assert_eq!(outcome.shard, cluster.shard_of(id));
            assert!(matches!(outcome.answer, Some(Answer::Exact(_))));
        }
    }
}
