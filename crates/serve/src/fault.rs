//! Deterministic failure injection and the fault-tolerance policy knobs.
//!
//! A [`FaultPlan`] is a seeded, immutable table of finite fault windows on
//! the cluster's virtual timeline: shard crashes, slow shards (latency
//! multipliers), transient compile failures, and one-shot cache wipes. The
//! cluster consults the plan at each query's modeled dispatch time, so the
//! same plan replayed over the same workload produces bit-identical
//! outcomes. [`ShardHealth`] is the per-shard circuit breaker (closed →
//! open on a consecutive-failure threshold → half-open probe after a
//! virtual-time cooldown), and [`RetryConfig`] fixes the hedged-retry
//! policy: deterministic exponential backoff with jitter drawn from the
//! seeded RNG shim.

use rand::{rngs::StdRng, Rng, SeedableRng};
use reason_pc::ring_mix;

/// One finite crash window: the shard accepts no dispatches while
/// `start_s <= t < end_s`. Windows are always finite so a query that finds
/// every shard down can deterministically wait out the earliest recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashWindow {
    /// Shard index the crash applies to.
    pub shard: usize,
    /// Window start on the virtual timeline, in seconds.
    pub start_s: f64,
    /// Window end (exclusive), in seconds.
    pub end_s: f64,
}

/// A latency-multiplier window: dispatches starting inside it cost
/// `multiplier` times their modeled latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowWindow {
    /// Shard index the slowdown applies to.
    pub shard: usize,
    /// Window start on the virtual timeline, in seconds.
    pub start_s: f64,
    /// Window end (exclusive), in seconds.
    pub end_s: f64,
    /// Latency multiplier (clamped to at least 1.0 when queried).
    pub multiplier: f64,
}

/// A transient compile-failure window: exact dispatches that need a fresh
/// compilation on this shard fail while the window is active. Already-hot
/// artifacts keep serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileFaultWindow {
    /// Shard index the fault applies to.
    pub shard: usize,
    /// Window start on the virtual timeline, in seconds.
    pub start_s: f64,
    /// Window end (exclusive), in seconds.
    pub end_s: f64,
}

/// A one-shot cache wipe: at `at_s` the shard's circuit store and live
/// oracles are dropped, forcing genuine recompiles (through the surviving
/// per-KB persistent component caches) on the next exact queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheWipe {
    /// Shard index whose store is wiped.
    pub shard: usize,
    /// Virtual time of the wipe, in seconds.
    pub at_s: f64,
}

/// A deterministic, immutable schedule of injected faults. Build one with
/// the `crash`/`slow`/`fail_compiles`/`wipe_cache` builders or draw a
/// random-but-reproducible one with [`FaultPlan::seeded`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    crashes: Vec<CrashWindow>,
    slowdowns: Vec<SlowWindow>,
    compile_faults: Vec<CompileFaultWindow>,
    wipes: Vec<CacheWipe>,
}

impl FaultPlan {
    /// An empty plan: no faults ever fire, but the retry/breaker machinery
    /// still runs (the happy-path overhead measured by `bench_fault`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a crash window on `shard` over `[start_s, end_s)`.
    #[must_use]
    pub fn crash(mut self, shard: usize, start_s: f64, end_s: f64) -> Self {
        assert!(end_s.is_finite(), "crash windows must be finite so recovery waits terminate");
        assert!(start_s < end_s, "crash window must be non-empty");
        self.crashes.push(CrashWindow { shard, start_s, end_s });
        self
    }

    /// Adds a latency-multiplier window on `shard` over `[start_s, end_s)`.
    #[must_use]
    pub fn slow(mut self, shard: usize, start_s: f64, end_s: f64, multiplier: f64) -> Self {
        assert!(start_s < end_s, "slow window must be non-empty");
        self.slowdowns.push(SlowWindow { shard, start_s, end_s, multiplier });
        self
    }

    /// Adds a transient compile-failure window on `shard` over
    /// `[start_s, end_s)`.
    #[must_use]
    pub fn fail_compiles(mut self, shard: usize, start_s: f64, end_s: f64) -> Self {
        assert!(end_s.is_finite(), "compile-fault windows must be finite");
        assert!(start_s < end_s, "compile-fault window must be non-empty");
        self.compile_faults.push(CompileFaultWindow { shard, start_s, end_s });
        self
    }

    /// Schedules a one-shot cache wipe on `shard` at `at_s`.
    #[must_use]
    pub fn wipe_cache(mut self, shard: usize, at_s: f64) -> Self {
        self.wipes.push(CacheWipe { shard, at_s });
        self
    }

    /// Draws a reproducible random plan over `shards` shards and a
    /// `horizon_s`-second timeline: up to two crash windows, one slowdown,
    /// one compile-fault window, and one cache wipe per shard, all finite
    /// and inside the horizon. Same seed, same plan.
    #[must_use]
    pub fn seeded(seed: u64, shards: usize, horizon_s: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let mut plan = Self::new();
        for shard in 0..shards {
            for _ in 0..rng.gen_range(0..3u32) {
                let start = rng.gen_range(0.0..horizon_s * 0.9);
                let len = rng.gen_range(horizon_s * 0.02..horizon_s * 0.3);
                plan = plan.crash(shard, start, (start + len).min(horizon_s));
            }
            if rng.gen_bool(0.5) {
                let start = rng.gen_range(0.0..horizon_s * 0.9);
                let len = rng.gen_range(horizon_s * 0.05..horizon_s * 0.4);
                let mult = rng.gen_range(2.0..16.0);
                plan = plan.slow(shard, start, (start + len).min(horizon_s), mult);
            }
            if rng.gen_bool(0.4) {
                let start = rng.gen_range(0.0..horizon_s * 0.9);
                let len = rng.gen_range(horizon_s * 0.05..horizon_s * 0.3);
                plan = plan.fail_compiles(shard, start, (start + len).min(horizon_s));
            }
            if rng.gen_bool(0.4) {
                plan = plan.wipe_cache(shard, rng.gen_range(0.0..horizon_s));
            }
        }
        plan
    }

    /// `true` when `shard` is inside a crash window at virtual time `t_s`.
    #[must_use]
    pub fn crashed(&self, shard: usize, t_s: f64) -> bool {
        self.crashes.iter().any(|w| w.shard == shard && w.start_s <= t_s && t_s < w.end_s)
    }

    /// The combined latency multiplier active on `shard` at `t_s` (the
    /// product of overlapping windows, never below 1.0).
    #[must_use]
    pub fn slow_multiplier(&self, shard: usize, t_s: f64) -> f64 {
        self.slowdowns
            .iter()
            .filter(|w| w.shard == shard && w.start_s <= t_s && t_s < w.end_s)
            .map(|w| w.multiplier.max(1.0))
            .product::<f64>()
            .max(1.0)
    }

    /// `true` when fresh compilations fail on `shard` at `t_s`.
    #[must_use]
    pub fn compile_faulted(&self, shard: usize, t_s: f64) -> bool {
        self.compile_faults.iter().any(|w| w.shard == shard && w.start_s <= t_s && t_s < w.end_s)
    }

    /// The earliest virtual time at or after `t_s` when `shard` is not
    /// crashed. Returns `t_s` unchanged for a healthy shard; crash windows
    /// are finite, so the walk over overlapping windows always terminates.
    #[must_use]
    pub fn recovery_time(&self, shard: usize, t_s: f64) -> f64 {
        let mut t = t_s;
        loop {
            let blocking = self
                .crashes
                .iter()
                .filter(|w| w.shard == shard && w.start_s <= t && t < w.end_s)
                .map(|w| w.end_s)
                .fold(f64::NEG_INFINITY, f64::max);
            if blocking == f64::NEG_INFINITY {
                return t;
            }
            t = blocking;
        }
    }

    /// The earliest virtual time at or after `t_s` when fresh compiles
    /// succeed again on `shard`.
    #[must_use]
    pub fn compile_recovery_time(&self, shard: usize, t_s: f64) -> f64 {
        let mut t = t_s;
        loop {
            let blocking = self
                .compile_faults
                .iter()
                .filter(|w| w.shard == shard && w.start_s <= t && t < w.end_s)
                .map(|w| w.end_s)
                .fold(f64::NEG_INFINITY, f64::max);
            if blocking == f64::NEG_INFINITY {
                return t;
            }
            t = blocking;
        }
    }

    /// The scheduled cache wipes, in insertion order. The cluster tracks
    /// which have fired; the plan itself stays immutable.
    #[must_use]
    pub fn wipes(&self) -> &[CacheWipe] {
        &self.wipes
    }

    /// `true` when the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.slowdowns.is_empty()
            && self.compile_faults.is_empty()
            && self.wipes.is_empty()
    }
}

/// Circuit-breaker thresholds for one shard's [`ShardHealth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// Virtual seconds an open breaker waits before admitting a half-open
    /// probe.
    pub cooldown_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 3, cooldown_s: 2e-3 }
    }
}

/// The three circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every dispatch is admitted.
    Closed,
    /// Tripped: dispatches are refused until the cooldown elapses.
    Open,
    /// Probing: one dispatch is admitted; success closes the breaker,
    /// failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for telemetry (`breaker_state` gauge values 0/1/2 and
    /// `breaker_transitions_total{to=...}` labels).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Closed => "closed",
            Self::HalfOpen => "half_open",
            Self::Open => "open",
        }
    }

    /// Numeric encoding for the `breaker_state` gauge: 0 closed, 1
    /// half-open, 2 open.
    #[must_use]
    pub fn gauge_value(self) -> f64 {
        match self {
            Self::Closed => 0.0,
            Self::HalfOpen => 1.0,
            Self::Open => 2.0,
        }
    }
}

/// Per-shard circuit breaker driven by the cluster's virtual clock:
/// closed → open after `failure_threshold` consecutive failures → half-open
/// once `cooldown_s` has elapsed → closed again on a successful probe (or
/// straight back to open on a failed one).
#[derive(Debug, Clone)]
pub struct ShardHealth {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_s: f64,
    transitions: u64,
}

impl ShardHealth {
    /// A fresh, closed breaker.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_s: 0.0,
            transitions: 0,
        }
    }

    /// Whether the shard may accept a dispatch at virtual time `t_s`. An
    /// open breaker whose cooldown has elapsed flips to half-open here and
    /// admits the probe.
    pub fn admits(&mut self, t_s: f64) -> bool {
        if self.state == BreakerState::Open && t_s >= self.opened_at_s + self.config.cooldown_s {
            self.state = BreakerState::HalfOpen;
            self.transitions += 1;
        }
        self.state != BreakerState::Open
    }

    /// Records a successful dispatch: resets the failure streak and closes
    /// a half-open breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state != BreakerState::Closed {
            self.state = BreakerState::Closed;
            self.transitions += 1;
        }
    }

    /// Records a failed dispatch at virtual time `t_s`: a half-open probe
    /// failure re-opens immediately; a closed breaker opens once the
    /// consecutive-failure threshold is reached.
    pub fn record_failure(&mut self, t_s: f64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.opened_at_s = t_s;
            self.transitions += 1;
        }
    }

    /// Current breaker state (without advancing the cooldown).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total state transitions since construction.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Earliest time at or after `t_s` at which the breaker will admit a
    /// probe: `t_s` unless the breaker is open and still cooling down.
    #[must_use]
    pub fn ready_at(&self, t_s: f64) -> f64 {
        match self.state {
            BreakerState::Open => (self.opened_at_s + self.config.cooldown_s).max(t_s),
            BreakerState::Closed | BreakerState::HalfOpen => t_s,
        }
    }
}

/// Hedged-retry policy: bounded attempts with deterministic exponential
/// backoff and jitter drawn from the seeded RNG shim. A retry whose backoff
/// would blow the query's deadline is skipped in favor of immediate ring
/// failover (the hedge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Dispatch attempts per shard before failing over (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual seconds.
    pub base_backoff_s: f64,
    /// Ceiling on a single backoff, in virtual seconds.
    pub max_backoff_s: f64,
    /// Fraction of the backoff randomized away, in `[0, 1]`.
    pub jitter: f64,
    /// Seed for the jitter stream; combined with a per-query salt so every
    /// (query, attempt) pair draws a fixed, reproducible jitter.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_s: 1e-4,
            max_backoff_s: 1e-2,
            jitter: 0.5,
            seed: 0xBAC0FF,
        }
    }
}

impl RetryConfig {
    /// The backoff before retry number `attempt` (1-based) of the query
    /// salted by `salt`: `base * 2^(attempt-1)` capped at `max_backoff_s`,
    /// minus a jittered fraction drawn deterministically from the seeded
    /// RNG shim.
    #[must_use]
    pub fn backoff_s(&self, attempt: u32, salt: u64) -> f64 {
        let exp = self.base_backoff_s * 2f64.powi(attempt.saturating_sub(1).min(62) as i32);
        let capped = exp.min(self.max_backoff_s);
        let mut rng = StdRng::seed_from_u64(ring_mix(self.seed ^ salt) ^ u64::from(attempt));
        let u: f64 = rng.gen_range(0.0..1.0);
        capped * (1.0 - self.jitter.clamp(0.0, 1.0) * u)
    }
}

/// The full fault-tolerance policy the cluster runs under: breaker
/// thresholds plus retry/backoff parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Per-shard circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Hedged-retry and backoff policy.
    pub retry: RetryConfig,
}

/// Counters accumulated by the cluster's fault domain over its lifetime —
/// the numbers behind the `fault_*` / `retry_*` telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Dispatch attempts that found the target shard crashed.
    pub crashes_hit: u64,
    /// Admitted dispatches that ran under a slow-shard multiplier.
    pub slowdowns_hit: u64,
    /// Exact dispatches that hit a transient compile fault.
    pub compile_faults_hit: u64,
    /// One-shot cache wipes applied.
    pub cache_wipes: u64,
    /// Backoff retries taken (same shard, later virtual time).
    pub retries: u64,
    /// Ring failovers to a surviving shard.
    pub failovers: u64,
    /// Queries that stepped down the degrade ladder because of a fault.
    pub degraded_under_failure: u64,
    /// Times a breaker refused a dispatch while open.
    pub breaker_rejections: u64,
    /// Queries that found every shard crashed and waited for the earliest
    /// recovery.
    pub waited_for_recovery: u64,
}

impl FaultStats {
    /// `true` iff no fault-layer machinery ever fired — the state an
    /// empty fault plan must leave behind.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let config = BreakerConfig { failure_threshold: 3, cooldown_s: 1.0 };
        let mut health = ShardHealth::new(config);
        assert_eq!(health.state(), BreakerState::Closed);
        assert!(health.admits(0.0));

        // Two failures keep it closed; the third trips it open.
        health.record_failure(0.1);
        health.record_failure(0.2);
        assert_eq!(health.state(), BreakerState::Closed);
        health.record_failure(0.3);
        assert_eq!(health.state(), BreakerState::Open);
        assert!(!health.admits(0.5), "open breaker refuses before the cooldown");

        // Cooldown elapsed: the next admit is the half-open probe.
        assert!(health.admits(1.4));
        assert_eq!(health.state(), BreakerState::HalfOpen);

        // A failed probe re-opens immediately (no threshold), a later
        // successful probe closes it.
        health.record_failure(1.4);
        assert_eq!(health.state(), BreakerState::Open);
        assert!(health.admits(2.5));
        health.record_success();
        assert_eq!(health.state(), BreakerState::Closed);
        assert_eq!(health.transitions(), 5);
    }

    #[test]
    fn backoff_grows_exponentially_and_is_deterministic() {
        let retry = RetryConfig { jitter: 0.0, ..RetryConfig::default() };
        assert!((retry.backoff_s(1, 7) - 1e-4).abs() < 1e-12);
        assert!((retry.backoff_s(2, 7) - 2e-4).abs() < 1e-12);
        assert!((retry.backoff_s(3, 7) - 4e-4).abs() < 1e-12);
        assert!((retry.backoff_s(30, 7) - retry.max_backoff_s).abs() < 1e-12);

        let jittered = RetryConfig::default();
        let a = jittered.backoff_s(2, 99);
        let b = jittered.backoff_s(2, 99);
        assert!((a - b).abs() < 1e-18, "same (attempt, salt) draws the same jitter");
        assert!(a > 1e-4 && a <= 2e-4, "jitter only shrinks the capped backoff");
    }

    #[test]
    fn fault_plan_windows_answer_point_queries() {
        let plan = FaultPlan::new()
            .crash(0, 1.0, 2.0)
            .crash(0, 1.8, 2.5)
            .slow(1, 0.0, 1.0, 4.0)
            .slow(1, 0.5, 1.5, 2.0)
            .fail_compiles(0, 3.0, 4.0)
            .wipe_cache(1, 2.0);

        assert!(!plan.crashed(0, 0.5) && plan.crashed(0, 1.5) && !plan.crashed(1, 1.5));
        assert!((plan.slow_multiplier(1, 0.75) - 8.0).abs() < 1e-12);
        assert!((plan.slow_multiplier(1, 1.2) - 2.0).abs() < 1e-12);
        assert!((plan.slow_multiplier(0, 0.75) - 1.0).abs() < 1e-12);
        assert!(plan.compile_faulted(0, 3.5) && !plan.compile_faulted(0, 4.5));
        // Overlapping crash windows chain: recovery walks to the far end.
        assert!((plan.recovery_time(0, 1.5) - 2.5).abs() < 1e-12);
        assert!((plan.recovery_time(0, 0.5) - 0.5).abs() < 1e-12);
        assert!((plan.compile_recovery_time(0, 3.2) - 4.0).abs() < 1e-12);
        assert_eq!(plan.wipes().len(), 1);
        assert!(!plan.is_empty() && FaultPlan::new().is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 3, 1.0);
        let b = FaultPlan::seeded(42, 3, 1.0);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 3, 1.0);
        assert_ne!(a, c, "different seeds draw different plans");
    }
}
