//! The serving engine: registered knowledge bases, the compiled-circuit
//! store, and routed batch execution.
//!
//! [`ServeEngine`] is the layer `reason-eval serve` drives: register a
//! knowledge base once ([`ServeEngine::register`]), then throw batches
//! of [`Query`]s at it. The first query pays one compilation; every
//! later query is answered from the [`CircuitStore`]'s hot artifact —
//! the shared d-DNNF arena, walked once per query on the single-query
//! fast path ([`ServeEngine::query`]) and once per *batch* on the batch
//! path ([`ServeEngine::serve`]), where every exact-routed query
//! becomes one lane of a single `ServeBatch` executor task answered by
//! the batched arena kernels.
//!
//! Each batch query is admitted by the [`QueryRouter`]: exact compiled
//! evaluation when the deadline allows, anytime Monte-Carlo bounds with
//! a deadline-trimmed budget when it does not, one prediction-network
//! forward pass when nothing else fits. Telemetry (measured compile,
//! eval, and per-sample latencies) feeds back into the router after
//! every batch, so routing adapts to the hardware it runs on.

use std::sync::Arc;
use std::time::{Duration, Instant};

use reason_approx::{ApproxConfig, Method, PredictConfig, PredictionNet, SampleConfig};
use reason_neural::Mlp;
use reason_pc::{CompileStats, CompiledWmc, Dnnf, DnnfBuffer, Evidence, WmcWeights};
use reason_sat::Cnf;
use reason_system::{
    BatchExecutor, BatchTask, ExecutorConfig, NeuralStage, PipelineReport, ServeQuery,
    SymbolicStage, TaskResult, Verdict,
};
use reason_telemetry::Telemetry;

use crate::kb::KnowledgeBase;
use crate::router::{KbTelemetry, Query, QueryKind, QueryRouter, Route, RouterConfig, RouterStats};
use crate::store::{CacheStats, CircuitStore, StoreConfig, StoredCircuit};

/// Engine-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Circuit-store bounds.
    pub store: StoreConfig,
    /// Router knobs.
    pub router: RouterConfig,
    /// Worker-pool shape batches execute with.
    pub executor: ExecutorConfig,
    /// When set, each knowledge base trains a prediction network on
    /// its first compilation (amortized: labels come from the already
    /// compiled circuit), enabling the router's last-resort rung.
    pub predictor: Option<PredictConfig>,
    /// Seed for the approximate rung's estimators (per-query streams
    /// are derived from it, so batches are reproducible).
    pub approx_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            store: StoreConfig::default(),
            router: RouterConfig::default(),
            executor: ExecutorConfig::overlapped(2),
            predictor: None,
            approx_seed: 0x5EED,
        }
    }
}

/// Handle to a registered knowledge base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KbId(usize);

/// Serving failures. Every variant is recoverable by the caller: the
/// sharded cluster degrades or retries the affected query instead of
/// letting a hot-path invariant abort the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The knowledge base carries no satisfying mass under its weights
    /// — there is nothing to serve.
    NoMass(String),
    /// The compiled artifact vanished from the store between compilation
    /// and evaluation (an eviction race under concurrent tenants).
    ArtifactMissing(String),
    /// A [`Route::Predicted`] query arrived at a knowledge base with no
    /// trained prediction net.
    PredictorMissing(String),
    /// A degraded route was paired with a non-degradable query kind
    /// ([`QueryKind::Marginal`] / [`QueryKind::Mpe`]).
    NotDegradable(String),
    /// A compiled circuit failed to flatten into an evaluation arena.
    BadCircuit(String),
    /// An internal routing invariant was violated — a bug guard that
    /// fails the batch instead of aborting the process.
    Internal(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoMass(name) => {
                write!(f, "knowledge base `{name}` has no satisfying mass")
            }
            ServeError::ArtifactMissing(name) => {
                write!(f, "knowledge base `{name}` lost its stored artifact mid-serve")
            }
            ServeError::PredictorMissing(name) => {
                write!(f, "knowledge base `{name}` has no trained predictor for a predicted route")
            }
            ServeError::NotDegradable(name) => {
                write!(f, "knowledge base `{name}` got a degraded route for an exact-only query")
            }
            ServeError::BadCircuit(detail) => {
                write!(f, "compiled circuit failed to flatten: {detail}")
            }
            ServeError::Internal(detail) => write!(f, "serve invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The value a served query produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// An exact probability / weighted model count.
    Exact(f64),
    /// An anytime bracket from the approximate rung.
    Bounds {
        /// Point estimate.
        estimate: f64,
        /// Lower confidence bound.
        lower: f64,
        /// Upper confidence bound.
        upper: f64,
    },
    /// A prediction-network point estimate (no bounds).
    Predicted(f64),
    /// A marginal distribution (exact rung only).
    Distribution(Vec<f64>),
    /// A most-probable-explanation assignment (exact rung only).
    Assignment {
        /// The maximizing complete assignment.
        assignment: Vec<usize>,
        /// Its max-product log-probability.
        log_prob: f64,
    },
}

/// One served query: where it was routed, what came back, what it cost.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The router's decision.
    pub route: Route,
    /// The answer.
    pub answer: Answer,
    /// Measured end-to-end seconds for this query's executor task(s).
    pub latency_s: f64,
}

/// The result of one [`ServeEngine::serve`] batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-query outcomes, in submission order.
    pub outcomes: Vec<ServeOutcome>,
    /// The executor's measured schedule for the batch.
    pub measured: PipelineReport,
}

/// How one query maps onto executor tasks.
enum Plan {
    /// Exact: one lane of the batch's shared `ServeBatch` task — every
    /// exact-routed query in the batch rides the same task, answered in
    /// one batched arena traversal per kernel.
    Batch { task: usize, lane: usize, route: Route },
    /// Plain-approximate: one task, answer from its verdict.
    Single { task: usize, route: Route },
    /// Approximate posterior with no trusted normalizer: a joint-mass
    /// task plus a base-mass task, combined conservatively.
    ApproxPair { joint: usize, base: usize, route: Route },
    /// Approximate posterior normalized by the last compiled `Z`.
    ApproxOverZ { joint: usize, z: f64, route: Route },
    /// Prediction-network forward pass: answer from the neural buffer.
    Predicted {
        task: usize,
        /// Prior mass of the evidence (for joint/posterior conversion).
        prior: f64,
        /// The trusted normalizer from training time.
        z: f64,
        kind_is_posterior: bool,
        kind_is_probability: bool,
    },
}

struct KbEntry {
    kb: KnowledgeBase,
    /// The shared exact oracle, rebuilt per revision.
    oracle: Option<Arc<CompiledWmc>>,
    oracle_revision: u64,
    /// Frozen prediction net plus the `Z` and revision it was trained
    /// against.
    predictor: Option<(Mlp, f64, u64)>,
    telemetry: KbTelemetry,
    /// Last compile's counters (persistent-cache reuse shows up here).
    last_stats: CompileStats,
    /// Last measured compile seconds (0 before the first compile).
    last_compile_s: f64,
    /// `Z` and the revision it was computed at.
    z: f64,
    z_revision: Option<u64>,
}

/// The knowledge-base serving engine (see the [module docs](self)).
pub struct ServeEngine {
    config: ServeConfig,
    store: CircuitStore,
    router: QueryRouter,
    kbs: Vec<KbEntry>,
    buf: DnnfBuffer,
    served: u64,
    /// Attached observability sink (shared with the store; `None` =
    /// zero-overhead unobserved serving).
    telemetry: Option<Arc<Telemetry>>,
    /// The `shard` label value instrumented metrics carry ("0" for a
    /// standalone engine).
    shard_label: String,
}

impl ServeEngine {
    /// An engine with the given configuration.
    pub fn new(config: ServeConfig) -> Self {
        ServeEngine {
            config,
            store: CircuitStore::new(config.store),
            router: QueryRouter::new(config.router),
            kbs: Vec::new(),
            buf: DnnfBuffer::new(),
            served: 0,
            telemetry: None,
            shard_label: "0".to_string(),
        }
    }

    /// Attaches a telemetry sink. From now on the store's
    /// lookups/evictions, every routed query, and every compilation
    /// (including the compiler's internal phases) land in the sink's
    /// registry and tracer, labeled `shard` (the cluster passes the
    /// shard index; standalone engines are shard 0).
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>, shard: usize) {
        self.shard_label = shard.to_string();
        self.store.attach_telemetry(&telemetry, &[("shard", &self.shard_label)]);
        self.telemetry = Some(telemetry);
    }

    /// The live routing cost model of every registered knowledge base,
    /// as `(name, telemetry)` pairs — the serializable snapshot
    /// (`KbTelemetry::snapshot`) `reason-eval` emits as JSON.
    pub fn telemetry_snapshots(&self) -> Vec<(String, KbTelemetry)> {
        self.kbs.iter().map(|e| (e.kb.name().to_string(), e.telemetry)).collect()
    }

    /// Registers a knowledge base. Registration is cheap — compilation
    /// happens on the first query that needs the exact artifact (or
    /// eagerly via [`warm`](Self::warm)).
    pub fn register(&mut self, name: impl Into<String>, cnf: &Cnf, weights: WmcWeights) -> KbId {
        let kb = KnowledgeBase::new(name, cnf, weights);
        let telemetry = KbTelemetry::prior(kb.num_vars(), kb.num_clauses());
        self.kbs.push(KbEntry {
            kb,
            oracle: None,
            oracle_revision: 0,
            predictor: None,
            telemetry,
            last_stats: CompileStats::default(),
            last_compile_s: 0.0,
            z: 0.0,
            z_revision: None,
        });
        KbId(self.kbs.len() - 1)
    }

    /// The registered knowledge base.
    pub fn kb(&self, id: KbId) -> &KnowledgeBase {
        &self.kbs[id.0].kb
    }

    /// The knowledge base's live routing telemetry.
    pub fn telemetry(&self, id: KbId) -> KbTelemetry {
        self.kbs[id.0].telemetry
    }

    /// The last compile's counters (persistent-component-cache reuse
    /// shows up as `persistent_hits`).
    pub fn last_compile_stats(&self, id: KbId) -> CompileStats {
        self.kbs[id.0].last_stats
    }

    /// The last measured compile seconds (0 before the first compile).
    pub fn last_compile_s(&self, id: KbId) -> f64 {
        self.kbs[id.0].last_compile_s
    }

    /// The circuit store's counters and occupancy.
    pub fn store_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Drops every stored artifact and live oracle — the fault layer's
    /// cache-wipe injection. Registered knowledge bases (and their
    /// persistent component caches) survive, so the next exact query
    /// per KB pays a genuine — but component-cache-accelerated —
    /// recompile. Trained predictors are kept: they live outside the
    /// store and stay valid for their revision.
    pub fn wipe_store(&mut self) {
        self.store.clear();
        for entry in &mut self.kbs {
            entry.oracle = None;
            entry.telemetry.compiled = false;
        }
    }

    /// The router's admission counters.
    pub fn router_stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// Appends a clause to a knowledge base. The compiled artifact goes
    /// stale (new fingerprint); the next compile reuses every cached
    /// component the clause does not touch.
    pub fn add_clause(&mut self, id: KbId, dimacs: &[i32]) {
        let entry = &mut self.kbs[id.0];
        entry.kb.add_clause(dimacs);
        entry.oracle = None;
        entry.telemetry.compiled = false;
        // The net was trained on the previous formula; retrain on the
        // next compile rather than serve stale predictions.
        entry.telemetry.has_predictor = false;
    }

    /// Retracts a clause (see [`KnowledgeBase::retract_clause`]).
    pub fn retract_clause(&mut self, id: KbId, index: usize) {
        let entry = &mut self.kbs[id.0];
        entry.kb.retract_clause(index);
        entry.oracle = None;
        entry.telemetry.compiled = false;
        entry.telemetry.has_predictor = false;
    }

    /// Eagerly compiles (or rehydrates) the knowledge base's artifact.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoMass`] when the formula has no satisfying mass.
    pub fn warm(&mut self, id: KbId) -> Result<(), ServeError> {
        self.ensure_compiled(id)
    }

    /// Answers one query on the store's d-DNNF arena — the single-query
    /// fast path (no executor round-trip). Compiles on first use.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoMass`] when the formula has no satisfying mass;
    /// [`ServeError::ArtifactMissing`] when the artifact is lost to an
    /// eviction race between compilation and evaluation.
    pub fn query(&mut self, id: KbId, kind: &QueryKind) -> Result<Answer, ServeError> {
        self.ensure_compiled(id)?;
        let fp = self.kbs[id.0].kb.fingerprint();
        // ensure_compiled already paid the counted lookup.
        let stored = self
            .store
            .peek(&fp)
            .ok_or_else(|| ServeError::ArtifactMissing(self.kbs[id.0].kb.name().to_string()))?;
        let buf = &mut self.buf;
        let t0 = Instant::now();
        let answer = match kind {
            QueryKind::Wmc => Answer::Exact(stored.dnnf.probability(&empty(stored), buf)),
            QueryKind::Probability(ev) => Answer::Exact(stored.dnnf.probability(ev, buf)),
            QueryKind::Posterior(ev) => Answer::Exact(stored.dnnf.probability(ev, buf) / stored.z),
            QueryKind::Marginal(ev, var) => {
                Answer::Distribution(stored.dnnf.marginal(ev, *var, buf))
            }
            QueryKind::Mpe(ev) => {
                let res = stored.dnnf.mpe(ev, buf);
                Answer::Assignment { assignment: res.assignment, log_prob: res.log_prob }
            }
        };
        let dt = t0.elapsed().as_secs_f64();
        let entry = &mut self.kbs[id.0];
        entry.telemetry.eval_s = ewma(entry.telemetry.eval_s, dt / kind.exact_evals());
        self.served += 1;
        Ok(answer)
    }

    /// Serves a batch: routes every query, executes the admitted tasks
    /// through the threaded `BatchExecutor` (exact queries become lanes
    /// of one batched-arena task sharing a single traversal per
    /// kernel), and feeds the measured latencies back into the router's
    /// telemetry.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoMass`] when an exact-routed query forces a
    /// compilation and the formula has no satisfying mass.
    pub fn serve(&mut self, id: KbId, queries: &[Query]) -> Result<ServeReport, ServeError> {
        // Refresh the hotness bit from ground truth before routing: the
        // artifact may have been evicted by another KB's traffic since
        // the last serve, and the router must charge the rebuild.
        {
            let entry = &mut self.kbs[id.0];
            let fresh = entry.oracle.is_some() && entry.oracle_revision == entry.kb.revision();
            entry.telemetry.compiled = fresh && self.store.contains(&entry.kb.fingerprint());
        }
        let routes: Vec<Route> = {
            let telemetry = self.kbs[id.0].telemetry;
            queries.iter().map(|q| self.router.route(q, &telemetry)).collect()
        };
        self.serve_routed(id, queries, &routes)
    }

    /// [`serve`](Self::serve) with the routing decided by the caller:
    /// executes `queries[i]` on `routes[i]` instead of consulting the
    /// engine's own adaptive router. This is the dispatch path of the
    /// sharded front-end ([`crate::cluster`]), whose admission
    /// controller decides routes *before* dispatch from a deterministic
    /// cost model — the engine then just executes them, so a replayed
    /// workload reproduces the identical route sequence regardless of
    /// what the engine's live telemetry measured. Deadlines still ride
    /// along: each admitted query's deadline becomes its executor
    /// task's [`BatchTask::deadline`] (the shared exact-batch task takes
    /// the earliest one), so the executor drains the queue EDF.
    ///
    /// # Panics
    ///
    /// Panics when `routes.len() != queries.len()` — a caller bug, not
    /// a serving condition.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoMass`] when an exact-routed query forces a
    /// compilation and the formula has no satisfying mass;
    /// [`ServeError::ArtifactMissing`] on an eviction race;
    /// [`ServeError::NotDegradable`] when a degraded route is paired
    /// with a non-degradable kind
    /// ([`QueryKind::Marginal`]/[`QueryKind::Mpe`]);
    /// [`ServeError::PredictorMissing`] when a [`Route::Predicted`]
    /// query arrives without a trained net. All of these fail the batch
    /// without panicking, so the cluster can degrade or retry it.
    pub fn serve_routed(
        &mut self,
        id: KbId,
        queries: &[Query],
        routes: &[Route],
    ) -> Result<ServeReport, ServeError> {
        assert_eq!(routes.len(), queries.len(), "one route per query");
        if let Some(tel) = &self.telemetry {
            for route in routes {
                let name = match route {
                    Route::Exact => "exact",
                    Route::Approx { .. } => "approx",
                    Route::Predicted => "predicted",
                };
                tel.registry
                    .counter(
                        "serve_queries_total",
                        &[("shard", &self.shard_label), ("route", name)],
                    )
                    .inc();
            }
        }
        if routes.iter().any(|r| matches!(r, Route::Exact)) {
            self.ensure_compiled(id)?;
        }

        let entry = &self.kbs[id.0];
        let base_cnf = entry.kb.cnf();
        let probs: Vec<f64> =
            (0..entry.kb.num_vars()).map(|v| entry.kb.weights().prob(v)).collect();
        let z_trusted = (entry.z_revision == Some(entry.kb.revision())).then_some(entry.z);

        let mut tasks: Vec<BatchTask> = Vec::new();
        let mut plans: Vec<Plan> = Vec::with_capacity(queries.len());

        // Every exact-routed query in the batch becomes one lane of a
        // single `ServeBatch` task over the stored arena: the executor
        // answers the whole group in one batched traversal per kernel
        // instead of re-walking the arena per query. Lane answers are
        // bit-identical to the per-query path, so batching is invisible
        // to callers except in latency.
        let exact_lanes: Vec<ServeQuery> = queries
            .iter()
            .zip(routes)
            .filter(|(_, r)| matches!(r, Route::Exact))
            .map(|(q, _)| to_serve_query(&q.kind))
            .collect();
        // The shared exact task inherits the *earliest* deadline of its
        // lanes: it must clear the pipeline before the tightest one.
        let exact_deadline = queries
            .iter()
            .zip(routes)
            .filter(|(_, r)| matches!(r, Route::Exact))
            .filter_map(|(q, _)| q.deadline)
            .min();
        let exact_task = if exact_lanes.is_empty() {
            None
        } else {
            let stored = self
                .store
                .peek(&entry.kb.fingerprint())
                .ok_or_else(|| ServeError::ArtifactMissing(entry.kb.name().to_string()))?;
            tasks.push(BatchTask {
                name: "exact-batch".into(),
                neural: NeuralStage::Synthetic { duration: Duration::ZERO },
                symbolic: SymbolicStage::ServeBatch {
                    arena: Arc::clone(&stored.dnnf),
                    z: stored.z,
                    queries: exact_lanes,
                },
                deadline: exact_deadline,
            });
            Some(tasks.len() - 1)
        };
        let mut exact_lane = 0usize;

        for (qi, (query, route)) in queries.iter().zip(routes).enumerate() {
            let seed = self.config.approx_seed ^ (self.served << 20) ^ qi as u64;
            match route {
                Route::Exact => {
                    let task = exact_task
                        .ok_or(ServeError::Internal("exact routes share the batch task"))?;
                    plans.push(Plan::Batch { task, lane: exact_lane, route: *route });
                    exact_lane += 1;
                }
                Route::Approx { samples } => {
                    let stage = |cnf: Cnf, samples: u64, seed: u64| SymbolicStage::Approx {
                        cnf,
                        probs: probs.clone(),
                        config: approx_config(samples, seed),
                    };
                    match &query.kind {
                        QueryKind::Wmc => {
                            let task = push_task(
                                &mut tasks,
                                qi,
                                query.deadline,
                                stage(base_cnf.clone(), *samples, seed),
                            );
                            plans.push(Plan::Single { task, route: *route });
                        }
                        QueryKind::Probability(ev) => {
                            let task = push_task(
                                &mut tasks,
                                qi,
                                query.deadline,
                                stage(conjoin(&base_cnf, ev), *samples, seed),
                            );
                            plans.push(Plan::Single { task, route: *route });
                        }
                        QueryKind::Posterior(ev) => match z_trusted {
                            Some(z) => {
                                let joint = push_task(
                                    &mut tasks,
                                    qi,
                                    query.deadline,
                                    stage(conjoin(&base_cnf, ev), *samples, seed),
                                );
                                plans.push(Plan::ApproxOverZ { joint, z, route: *route });
                            }
                            None => {
                                // No trusted normalizer: the budget the
                                // router fitted to the deadline is split
                                // across the joint and base estimates so
                                // the pair still lands inside it.
                                let half = (*samples / 2).max(1);
                                let joint = push_task(
                                    &mut tasks,
                                    qi,
                                    query.deadline,
                                    stage(conjoin(&base_cnf, ev), half, seed),
                                );
                                let base = push_task(
                                    &mut tasks,
                                    qi,
                                    query.deadline,
                                    stage(base_cnf.clone(), half, seed ^ 0xBA5E),
                                );
                                plans.push(Plan::ApproxPair { joint, base, route: *route });
                            }
                        },
                        // The router never degrades these kinds.
                        QueryKind::Marginal(..) | QueryKind::Mpe(..) => {
                            return Err(ServeError::NotDegradable(entry.kb.name().to_string()));
                        }
                    }
                }
                Route::Predicted => {
                    let (mlp, z, _) = entry
                        .predictor
                        .as_ref()
                        .ok_or_else(|| ServeError::PredictorMissing(entry.kb.name().to_string()))?;
                    let (evidence, is_posterior, is_probability) = match &query.kind {
                        QueryKind::Wmc => (Evidence::empty(entry.kb.num_vars()), false, false),
                        QueryKind::Probability(ev) => (ev.clone(), false, true),
                        QueryKind::Posterior(ev) => (ev.clone(), true, false),
                        QueryKind::Marginal(..) | QueryKind::Mpe(..) => {
                            return Err(ServeError::NotDegradable(entry.kb.name().to_string()));
                        }
                    };
                    let options: Vec<Option<bool>> = (0..entry.kb.num_vars())
                        .map(|v| evidence.value(v).map(|x| x == 1))
                        .collect();
                    let input = PredictionNet::encode_query(&options, entry.kb.num_vars());
                    let prior = prior_mass(entry.kb.weights(), &evidence);
                    let task_idx = tasks.len();
                    tasks.push(BatchTask {
                        name: format!("query-{qi}"),
                        neural: NeuralStage::Mlp { mlp: mlp.clone(), input },
                        symbolic: SymbolicStage::Synthetic { duration: Duration::ZERO },
                        deadline: query.deadline,
                    });
                    plans.push(Plan::Predicted {
                        task: task_idx,
                        prior,
                        z: *z,
                        kind_is_posterior: is_posterior,
                        kind_is_probability: is_probability,
                    });
                }
            }
        }

        let report = BatchExecutor::new(self.config.executor)
            .run_with_telemetry(&tasks, self.telemetry.as_deref());
        self.served += queries.len() as u64;

        // Feed measured latencies back into the telemetry. The exact
        // lanes share one batched task, so its measured duration is
        // spread over the batch's total arena evaluations: every exact
        // query contributes the same per-eval latency sample, keeping
        // the EWMA cadence of the per-task path.
        let batch_evals: f64 = plans
            .iter()
            .zip(queries)
            .filter(|(plan, _)| matches!(plan, Plan::Batch { .. }))
            .map(|(_, q)| q.kind.exact_evals())
            .sum();
        {
            let entry = &mut self.kbs[id.0];
            for plan in &plans {
                match plan {
                    Plan::Batch { task, route: Route::Exact, .. } => {
                        let dt = report.results[*task].symbolic_s;
                        entry.telemetry.eval_s = ewma(entry.telemetry.eval_s, dt / batch_evals);
                    }
                    Plan::Single { task, route: Route::Approx { samples } }
                    | Plan::ApproxOverZ { joint: task, route: Route::Approx { samples }, .. } => {
                        let dt = report.results[*task].symbolic_s;
                        entry.telemetry.sample_s =
                            ewma(entry.telemetry.sample_s, dt / *samples as f64);
                    }
                    Plan::ApproxPair { joint, route: Route::Approx { samples }, .. } => {
                        // Each half of the pair ran samples / 2.
                        let dt = report.results[*joint].symbolic_s;
                        let ran = (*samples / 2).max(1);
                        entry.telemetry.sample_s = ewma(entry.telemetry.sample_s, dt / ran as f64);
                    }
                    _ => {}
                }
            }
        }

        let outcomes: Vec<ServeOutcome> =
            plans.iter().map(|plan| outcome(plan, &report.results)).collect();
        if let Some(tel) = &self.telemetry {
            let latency =
                tel.registry.histogram("serve_latency_seconds", &[("shard", &self.shard_label)]);
            for o in &outcomes {
                latency.record(o.latency_s);
            }
        }
        Ok(ServeReport { outcomes, measured: report.measured })
    }

    /// Guarantees the artifact is compiled, hot in the store, and
    /// wrapped in a shareable oracle; measures compile and warm-eval
    /// latency into the telemetry; trains the prediction net on first
    /// compile when configured.
    fn ensure_compiled(&mut self, id: KbId) -> Result<(), ServeError> {
        let telemetry = self.telemetry.clone();
        let entry = &mut self.kbs[id.0];
        let revision = entry.kb.revision();
        let fp = entry.kb.fingerprint();
        let oracle_fresh = entry.oracle.is_some() && entry.oracle_revision == revision;
        // One counted lookup: serving traffic registers as store hits
        // and refreshes the artifact's LRU recency, so a hot KB is
        // never the eviction victim of its own traffic.
        let hot = self.store.get(&fp).is_some();
        if oracle_fresh && hot {
            return Ok(());
        }
        if let Some(tel) = &telemetry {
            let kind = if self.store.contains(&fp) {
                "rehydrate" // artifact hot, oracle stale
            } else if oracle_fresh {
                "reflatten" // oracle fresh, artifact evicted
            } else {
                "cold" // full compilation
            };
            tel.registry
                .counter(
                    "serve_compiles_total",
                    &[("shard", &self.shard_label), ("tenant", entry.kb.name()), ("kind", kind)],
                )
                .inc();
        }
        if let Some(stored) = self.store.peek(&fp) {
            // Rehydrate the oracle from the stored artifact.
            entry.z = stored.z;
            entry.last_stats = stored.stats;
            entry.last_compile_s = stored.compile_s;
            entry.oracle = Some(Arc::new(CompiledWmc::from_circuit(
                Some(stored.circuit.clone()),
                stored.dnnf.num_vars(),
            )));
        } else if oracle_fresh {
            // Evicted while the shared oracle still holds the current
            // revision's circuit: rebuild the store artifact from it —
            // a linear flattening, not a recompile.
            let circuit = entry
                .oracle
                .as_ref()
                .and_then(|o| o.circuit().cloned())
                .ok_or_else(|| ServeError::ArtifactMissing(entry.kb.name().to_string()))?;
            let dnnf = Arc::new(
                Dnnf::from_circuit(&circuit)
                    .map_err(|e| ServeError::BadCircuit(format!("{}: {e:?}", entry.kb.name())))?,
            );
            let z = entry.z;
            let (compile_s, stats) = (entry.last_compile_s, entry.last_stats);
            self.store.insert(fp, StoredCircuit { dnnf, circuit, z, compile_s, stats });
        } else {
            let span = telemetry.as_ref().map(|tel| {
                tel.tracer.span_on(
                    0,
                    "serve.compile",
                    &[("shard", &self.shard_label), ("tenant", entry.kb.name())],
                )
            });
            let t0 = Instant::now();
            let (circuit, stats) = entry.kb.compile_observed(telemetry.as_deref());
            let compile_s = t0.elapsed().as_secs_f64();
            if let Some(span) = span {
                span.end();
            }
            let Some(circuit) = circuit else {
                return Err(ServeError::NoMass(entry.kb.name().to_string()));
            };
            let dnnf = Arc::new(
                Dnnf::from_circuit(&circuit)
                    .map_err(|e| ServeError::BadCircuit(format!("{}: {e:?}", entry.kb.name())))?,
            );
            let z = dnnf.probability(&Evidence::empty(entry.kb.num_vars()), &mut DnnfBuffer::new());
            entry.z = z;
            entry.last_stats = stats;
            entry.last_compile_s = compile_s;
            entry.telemetry.compile_s = compile_s.max(1e-9);
            entry.oracle = Some(Arc::new(CompiledWmc::from_circuit(
                Some(circuit.clone()),
                entry.kb.num_vars(),
            )));
            self.store.insert(fp, StoredCircuit { dnnf, circuit, z, compile_s, stats });
        }
        let entry = &mut self.kbs[id.0];
        entry.oracle_revision = revision;
        entry.z_revision = Some(revision);
        entry.telemetry.compiled = true;
        // Warm-eval measurement: two evaluations, keep the faster.
        let oracle =
            entry.oracle.as_ref().ok_or(ServeError::Internal("compiled oracle was just built"))?;
        let empty_ev = Evidence::empty(entry.kb.num_vars());
        let mut ebuf = reason_pc::EvalBuffer::new();
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            let _ = oracle.probability_with(&empty_ev, &mut ebuf);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        entry.telemetry.eval_s = best.max(1e-9);
        // Train the prediction net once per revision, when configured.
        let needs_net = self.config.predictor.is_some()
            && entry.predictor.as_ref().is_none_or(|(_, _, rev)| *rev != revision);
        if needs_net {
            let cfg = self.config.predictor.expect("checked above");
            let circuit = entry.oracle.as_ref().and_then(|o| o.circuit().cloned());
            if let Some(circuit) = circuit {
                let (net, _loss) =
                    PredictionNet::train_from_circuit(&circuit, entry.kb.weights(), &cfg);
                entry.predictor = Some((net.to_mlp(), entry.z, revision));
                entry.telemetry.has_predictor = true;
            }
        }
        Ok(())
    }
}

/// Builds one query's [`ServeOutcome`] from its executed task(s).
fn outcome(plan: &Plan, results: &[TaskResult]) -> ServeOutcome {
    match plan {
        Plan::Batch { task, lane, route } => {
            let r = &results[*task];
            let Verdict::Batch(answers) = &r.verdict else {
                unreachable!("the exact batch task reports a batch verdict");
            };
            let answer = match &answers[*lane] {
                Verdict::Wmc { estimate, .. } => Answer::Exact(*estimate),
                Verdict::Distribution(d) => Answer::Distribution(d.clone()),
                Verdict::Assignment { assignment, log_prob } => {
                    Answer::Assignment { assignment: assignment.clone(), log_prob: *log_prob }
                }
                other => unreachable!("serve lanes produce WMC-family verdicts: {other:?}"),
            };
            // One task served every exact lane; attribute an equal
            // share of its wall time to each query.
            let share = answers.len().max(1) as f64;
            ServeOutcome { route: *route, answer, latency_s: (r.neural_s + r.symbolic_s) / share }
        }
        Plan::Single { task, route } => {
            let r = &results[*task];
            let Verdict::Wmc { estimate, lower, upper } = &r.verdict else {
                unreachable!("approx lanes produce WMC verdicts");
            };
            ServeOutcome {
                route: *route,
                answer: Answer::Bounds { estimate: *estimate, lower: *lower, upper: *upper },
                latency_s: r.neural_s + r.symbolic_s,
            }
        }
        Plan::ApproxOverZ { joint, z, route } => {
            let r = &results[*joint];
            let Verdict::Wmc { estimate, lower, upper } = &r.verdict else {
                unreachable!("approx lanes produce WMC verdicts");
            };
            ServeOutcome {
                route: *route,
                answer: Answer::Bounds {
                    estimate: (estimate / z).clamp(0.0, 1.0),
                    lower: (lower / z).clamp(0.0, 1.0),
                    upper: (upper / z).clamp(0.0, 1.0),
                },
                latency_s: r.neural_s + r.symbolic_s,
            }
        }
        Plan::ApproxPair { joint, base, route } => {
            let (rj, rb) = (&results[*joint], &results[*base]);
            let (
                Verdict::Wmc { estimate: ej, lower: lj, upper: uj },
                Verdict::Wmc { estimate: eb, lower: lb, upper: ub },
            ) = (&rj.verdict, &rb.verdict)
            else {
                unreachable!("approx lanes produce WMC verdicts");
            };
            // Conservative interval division: joint / base.
            let estimate = if *eb > 0.0 { (ej / eb).clamp(0.0, 1.0) } else { 0.0 };
            let lower = if *ub > 0.0 { (lj / ub).clamp(0.0, 1.0) } else { 0.0 };
            let upper = if *lb > 0.0 { (uj / lb).clamp(0.0, 1.0) } else { 1.0 };
            ServeOutcome {
                route: *route,
                answer: Answer::Bounds { estimate, lower, upper },
                latency_s: rj.neural_s + rj.symbolic_s + rb.neural_s + rb.symbolic_s,
            }
        }
        Plan::Predicted { task, prior, z, kind_is_posterior, kind_is_probability } => {
            let r = &results[*task];
            // The sigmoid head's single output is Pr[φ | e].
            let conditional = r.neural_output[0].clamp(0.0, 1.0);
            let value = if *kind_is_posterior {
                // Pr[e | φ] = Pr[φ | e] · Pr[e] / Pr[φ].
                if *z > 0.0 {
                    (conditional * prior / z).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            } else if *kind_is_probability {
                // Pr[φ ∧ e] = Pr[φ | e] · Pr[e].
                conditional * prior
            } else {
                conditional // Pr[φ | ∅] = Pr[φ]
            };
            ServeOutcome {
                route: Route::Predicted,
                answer: Answer::Predicted(value),
                latency_s: r.neural_s + r.symbolic_s,
            }
        }
    }
}

/// EWMA with a 0.3 step — fast enough to track warm-up, smooth enough
/// to ignore scheduler noise.
fn ewma(old: f64, new: f64) -> f64 {
    0.7 * old + 0.3 * new.max(1e-9)
}

fn empty(stored: &StoredCircuit) -> Evidence {
    Evidence::empty(stored.dnnf.num_vars())
}

fn push_task(
    tasks: &mut Vec<BatchTask>,
    qi: usize,
    deadline: Option<Duration>,
    symbolic: SymbolicStage,
) -> usize {
    tasks.push(BatchTask {
        name: format!("query-{qi}"),
        neural: NeuralStage::Synthetic { duration: Duration::ZERO },
        symbolic,
        deadline,
    });
    tasks.len() - 1
}

fn to_serve_query(kind: &QueryKind) -> ServeQuery {
    match kind {
        QueryKind::Wmc => ServeQuery::Wmc,
        QueryKind::Probability(ev) => ServeQuery::Probability(ev.clone()),
        QueryKind::Posterior(ev) => ServeQuery::Posterior(ev.clone()),
        QueryKind::Marginal(ev, var) => ServeQuery::Marginal(ev.clone(), *var),
        QueryKind::Mpe(ev) => ServeQuery::Mpe(ev.clone()),
    }
}

/// Direct Monte-Carlo with the deadline-fitted budget: cost is linear
/// in the budget, which is exactly what the router's cost model
/// assumes.
fn approx_config(samples: u64, seed: u64) -> ApproxConfig {
    ApproxConfig {
        method: Method::MonteCarlo,
        sampling: SampleConfig { samples, checkpoint: (samples / 8).max(1), seed },
        ..ApproxConfig::default()
    }
}

/// Conjoins partial evidence onto a formula as unit clauses, so
/// `Pr[φ ∧ e]` becomes a plain WMC over the extended formula.
fn conjoin(cnf: &Cnf, evidence: &Evidence) -> Cnf {
    let mut out = cnf.clone();
    for v in 0..evidence.len() {
        if let Some(value) = evidence.value(v) {
            let dimacs = if value == 1 { v as i32 + 1 } else { -(v as i32 + 1) };
            out.add_dimacs_clause(&[dimacs]);
        }
    }
    out
}

/// The prior mass `Pr[e]` of partial evidence under independent
/// per-variable marginals.
fn prior_mass(weights: &WmcWeights, evidence: &Evidence) -> f64 {
    (0..weights.len())
        .map(|v| match evidence.value(v) {
            Some(1) => weights.prob(v),
            Some(_) => 1.0 - weights.prob(v),
            None => 1.0,
        })
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_pc::weighted_model_count;
    use reason_sat::gen::random_ksat;

    fn engine() -> ServeEngine {
        ServeEngine::new(ServeConfig::default())
    }

    fn sat_instance(n: usize, m: usize, seed: u64) -> (Cnf, WmcWeights) {
        let mut s = seed;
        loop {
            let cnf = random_ksat(n, m, 3, s);
            let w = WmcWeights::new((0..n).map(|v| 0.35 + 0.03 * (v % 6) as f64).collect());
            if weighted_model_count(&cnf, &w) > 0.0 {
                return (cnf, w);
            }
            s += 1;
        }
    }

    #[test]
    fn exact_batch_matches_the_oracle_and_hits_the_store() {
        let (cnf, w) = sat_instance(10, 26, 1);
        let mut engine = engine();
        let id = engine.register("kb", &cnf, w.clone());
        let mut ev = Evidence::empty(10);
        ev.set(0, 1).set(3, 0);
        let queries = vec![
            Query::exact(QueryKind::Wmc),
            Query::exact(QueryKind::Probability(ev.clone())),
            Query::exact(QueryKind::Posterior(ev.clone())),
            Query::exact(QueryKind::Marginal(ev.clone(), 5)),
            Query::exact(QueryKind::Mpe(ev.clone())),
        ];
        let report = engine.serve(id, &queries).unwrap();
        assert_eq!(report.outcomes.len(), 5);
        let mut oracle = CompiledWmc::new(&cnf, &w);
        match &report.outcomes[0].answer {
            Answer::Exact(z) => assert_eq!(*z, oracle.wmc()),
            other => panic!("expected exact WMC, got {other:?}"),
        }
        match &report.outcomes[1].answer {
            Answer::Exact(p) => assert_eq!(*p, oracle.probability(&ev)),
            other => panic!("expected exact probability, got {other:?}"),
        }
        match &report.outcomes[2].answer {
            Answer::Exact(p) => assert_eq!(*p, oracle.posterior(&ev).unwrap()),
            other => panic!("expected exact posterior, got {other:?}"),
        }
        assert!(matches!(report.outcomes[3].answer, Answer::Distribution(_)));
        match &report.outcomes[4].answer {
            Answer::Assignment { assignment, .. } => {
                let model: Vec<bool> = assignment.iter().map(|&v| v == 1).collect();
                assert!(cnf.eval(&model));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
        // A second batch answers from the hot store: no new insertion.
        let before = engine.store_stats().insertions;
        let _ = engine.serve(id, &queries[..2]).unwrap();
        assert_eq!(engine.store_stats().insertions, before);
        assert_eq!(engine.router_stats().exact, 7);
    }

    #[test]
    fn fast_path_agrees_with_batch_path_bit_for_bit() {
        let (cnf, w) = sat_instance(9, 24, 3);
        let mut engine = engine();
        let id = engine.register("kb", &cnf, w);
        let mut ev = Evidence::empty(9);
        ev.set(2, 1);
        let fast = engine.query(id, &QueryKind::Posterior(ev.clone())).unwrap();
        let batch = engine.serve(id, &[Query::exact(QueryKind::Posterior(ev))]).unwrap();
        let (Answer::Exact(a), Answer::Exact(b)) = (&fast, &batch.outcomes[0].answer) else {
            panic!("both paths are exact");
        };
        assert_eq!(a.to_bits(), b.to_bits(), "arena and oracle agree bit-for-bit");
    }

    #[test]
    fn deadline_fallback_produces_bounds_containing_the_exact_answer() {
        let (cnf, w) = sat_instance(12, 30, 5);
        let mut engine = engine();
        let id = engine.register("kb", &cnf, w.clone());
        // Cold artifact + tight deadline: the router charges the
        // predicted compile and degrades to anytime bounds.
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_micros(50));
        let report = engine.serve(id, &[q]).unwrap();
        assert!(matches!(report.outcomes[0].route, Route::Approx { .. }));
        let Answer::Bounds { lower, upper, .. } = report.outcomes[0].answer else {
            panic!("deadline fallback must produce bounds");
        };
        let exact = weighted_model_count(&cnf, &w);
        assert!(lower <= exact && exact <= upper, "[{lower}, {upper}] vs {exact}");
        assert_eq!(engine.router_stats().deadline_fallbacks, 1);
        assert_eq!(engine.store_stats().insertions, 0, "no compile happened");
    }

    #[test]
    fn incremental_edits_recompile_with_component_reuse() {
        let (cnf, w) = sat_instance(12, 30, 7);
        let mut engine = engine();
        let id = engine.register("kb", &cnf, w.clone());
        engine.warm(id).unwrap();
        let cold_stats = engine.last_compile_stats(id);
        assert_eq!(cold_stats.persistent_hits, 0);
        engine.add_clause(id, &[1, -2, 3]);
        engine.warm(id).unwrap();
        let warm_stats = engine.last_compile_stats(id);
        assert!(
            warm_stats.persistent_hits > 0,
            "incremental recompile must reuse components: {warm_stats:?}"
        );
        // Answers stay exact after the edit.
        let Answer::Exact(z) = engine.query(id, &QueryKind::Wmc).unwrap() else {
            panic!("exact");
        };
        let expect = weighted_model_count(&engine.kb(id).cnf(), &w);
        assert!((z - expect).abs() < 1e-12);
    }

    #[test]
    fn predictor_rung_activates_under_impossible_deadlines() {
        let (cnf, w) = sat_instance(8, 20, 11);
        let cfg = ServeConfig {
            predictor: Some(PredictConfig {
                queries: 96,
                epochs: 120,
                hidden: 12,
                ..PredictConfig::default()
            }),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(cfg);
        let id = engine.register("kb", &cnf, w);
        engine.warm(id).unwrap();
        assert!(engine.telemetry(id).has_predictor);
        let q = Query::with_deadline(QueryKind::Wmc, Duration::from_nanos(10));
        let report = engine.serve(id, &[q]).unwrap();
        assert_eq!(report.outcomes[0].route, Route::Predicted);
        let Answer::Predicted(p) = report.outcomes[0].answer else {
            panic!("predicted answer");
        };
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn unsat_kbs_are_rejected_with_no_mass() {
        let cnf = Cnf::from_clauses(2, vec![vec![1], vec![-1]]);
        let mut engine = engine();
        let id = engine.register("empty", &cnf, WmcWeights::uniform(2));
        assert_eq!(engine.warm(id), Err(ServeError::NoMass("empty".to_string())));
    }

    #[test]
    fn eviction_roundtrip_preserves_answers_bit_for_bit() {
        let cfg = ServeConfig {
            store: StoreConfig { max_entries: 1, max_bytes: usize::MAX, ..Default::default() },
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(cfg);
        let (cnf_a, w_a) = sat_instance(9, 22, 21);
        let (cnf_b, w_b) = sat_instance(10, 24, 22);
        let a = engine.register("a", &cnf_a, w_a);
        let b = engine.register("b", &cnf_b, w_b);
        let Answer::Exact(z_first) = engine.query(a, &QueryKind::Wmc).unwrap() else {
            panic!("exact");
        };
        // Serving B evicts A (1-entry store); serving A again
        // recompiles and must reproduce the identical bits.
        let _ = engine.query(b, &QueryKind::Wmc).unwrap();
        assert_eq!(engine.store_stats().evictions, 1);
        let Answer::Exact(z_again) = engine.query(a, &QueryKind::Wmc).unwrap() else {
            panic!("exact");
        };
        assert_eq!(z_first.to_bits(), z_again.to_bits());
        assert_eq!(engine.store_stats().insertions, 3);
    }
}
