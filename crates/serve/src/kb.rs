//! Registered knowledge bases: one formula, one weight vector, one
//! cross-query component cache.
//!
//! A [`KnowledgeBase`] is the unit of registration in the serving
//! engine: a CNF rule set over fixed per-variable marginals. It owns
//! the [`PersistentComponentCache`] that carries compiled components
//! across its own recompilations, and it maintains the id-stability
//! contract that cache depends on:
//!
//! * clauses keep their positional ids for their whole lifetime —
//!   additions append at fresh ids, so existing component fingerprints
//!   stay valid and an incremental recompile reuses every component the
//!   new clause does not touch;
//! * a retraction shifts the ids after the removed clause, so the cache
//!   entries mentioning any shifted id are invalidated
//!   ([`PersistentComponentCache::invalidate_clauses_from`]) before the
//!   next compile.
//!
//! Clauses are canonicalized on entry (literals sorted, duplicates
//! dropped) so the fingerprint a [`crate::CircuitStore`] keys on is a
//! function of the logic, not of literal spelling.

use reason_pc::{
    compile_cnf_observed, Circuit, CompileConfig, CompileStats, PersistentComponentCache,
    WmcWeights,
};
use reason_sat::{Clause, Cnf, Lit};
use reason_telemetry::Telemetry;

use crate::fingerprint::FormulaFingerprint;

/// A registered rule set with its weights and cross-query compile
/// cache (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    name: String,
    num_vars: usize,
    clauses: Vec<Clause>,
    weights: WmcWeights,
    cache: PersistentComponentCache,
    config: CompileConfig,
    /// Bumped on every mutation; serving layers use it to notice stale
    /// derived state (oracles, trained predictors).
    revision: u64,
}

/// Sorted-deduplicated canonical form of one clause.
fn canonical_clause(clause: &Clause) -> Clause {
    let mut lits: Vec<Lit> = clause.lits().to_vec();
    lits.sort_unstable_by_key(|l| l.code());
    lits.dedup();
    Clause::new(lits)
}

impl KnowledgeBase {
    /// Registers a formula under its weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != cnf.num_vars()`.
    pub fn new(name: impl Into<String>, cnf: &Cnf, weights: WmcWeights) -> Self {
        assert_eq!(weights.len(), cnf.num_vars(), "weights arity mismatch");
        KnowledgeBase {
            name: name.into(),
            num_vars: cnf.num_vars(),
            clauses: cnf.clauses().iter().map(canonical_clause).collect(),
            weights,
            cache: PersistentComponentCache::new(),
            config: CompileConfig::default(),
            revision: 0,
        }
    }

    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variables in the universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of live clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The per-variable marginals.
    pub fn weights(&self) -> &WmcWeights {
        &self.weights
    }

    /// The live clauses, in id order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Mutation counter: bumped by every add/retract.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Materializes the current formula.
    pub fn cnf(&self) -> Cnf {
        let mut cnf = Cnf::new(self.num_vars);
        for c in &self.clauses {
            cnf.add_clause(c.clone());
        }
        cnf
    }

    /// The store key for the current `(formula, weights)` state.
    pub fn fingerprint(&self) -> FormulaFingerprint {
        FormulaFingerprint::from_parts(self.num_vars, &self.clauses, &self.weights)
    }

    /// Appends a clause at a fresh id. No cache invalidation: existing
    /// component fingerprints never mention the new id, so the next
    /// compile reuses every component the clause does not touch.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable outside the universe.
    pub fn add_clause(&mut self, dimacs: &[i32]) {
        let clause = canonical_clause(&Clause::from_dimacs(dimacs));
        for lit in clause.iter() {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit} out of range for {} variables",
                self.num_vars
            );
        }
        self.clauses.push(clause);
        self.revision += 1;
    }

    /// Retracts the clause at `index`, invalidating every cached
    /// component whose fingerprint mentions a shifted id (ids `>=
    /// index`). Returns the removed clause. Retracting recently-added
    /// clauses is therefore cheap; retracting early clauses flushes
    /// more of the cache — the honest cost of positional ids.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_clauses()`.
    pub fn retract_clause(&mut self, index: usize) -> Clause {
        let removed = self.clauses.remove(index);
        self.cache.invalidate_clauses_from(index as u32);
        self.revision += 1;
        removed
    }

    /// Compiles the current formula through the persistent component
    /// cache: the first call pays the full compile, later calls (after
    /// edits) reuse every untouched component. Returns the circuit
    /// (`None` when the formula carries no mass) and the compile
    /// counters, whose `persistent_hits` field reports the reuse.
    pub fn compile(&mut self) -> (Option<Circuit>, CompileStats) {
        self.compile_observed(None)
    }

    /// [`compile`](Self::compile) with an optional telemetry sink: the
    /// compiler's propagate / component-split / cache-probe phases emit
    /// spans and counters (see [`reason_pc::compile_cnf_observed`]).
    pub fn compile_observed(
        &mut self,
        telemetry: Option<&Telemetry>,
    ) -> (Option<Circuit>, CompileStats) {
        compile_cnf_observed(
            &self.cnf(),
            &self.weights,
            &self.config,
            Some(&mut self.cache),
            telemetry,
        )
    }

    /// The cross-query component cache (sizes, probe counters).
    pub fn component_cache(&self) -> &PersistentComponentCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_pc::{weighted_model_count, Evidence};
    use reason_sat::gen::random_ksat;

    fn z_of(circuit: Option<Circuit>, n: usize) -> f64 {
        circuit.map_or(0.0, |c| c.probability(&Evidence::empty(n)))
    }

    #[test]
    fn lifecycle_add_compile_retract_stays_exact() {
        let cnf = Cnf::from_clauses(6, vec![vec![1, 2], vec![-2, 3], vec![4, 5]]);
        let w = WmcWeights::new(vec![0.4, 0.55, 0.5, 0.35, 0.6, 0.45]);
        let mut kb = KnowledgeBase::new("demo", &cnf, w.clone());
        assert_eq!(kb.revision(), 0);
        let (c0, _) = kb.compile();
        assert!((z_of(c0, 6) - weighted_model_count(&cnf, &w)).abs() < 1e-12);

        kb.add_clause(&[-5, 6]);
        assert_eq!(kb.revision(), 1);
        let (c1, stats1) = kb.compile();
        assert!((z_of(c1, 6) - weighted_model_count(&kb.cnf(), &w)).abs() < 1e-12);
        assert!(
            stats1.persistent_hits > 0,
            "adding a clause must reuse untouched components: {stats1:?}"
        );

        let removed = kb.retract_clause(1);
        assert_eq!(removed.lits().len(), 2);
        assert_eq!(kb.num_clauses(), 3);
        let (c2, _) = kb.compile();
        assert!((z_of(c2, 6) - weighted_model_count(&kb.cnf(), &w)).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_tracks_mutations() {
        let cnf = random_ksat(8, 20, 3, 4);
        let mut kb = KnowledgeBase::new("fp", &cnf, WmcWeights::uniform(8));
        let fp0 = kb.fingerprint();
        kb.add_clause(&[1, -2]);
        let fp1 = kb.fingerprint();
        assert_ne!(fp0, fp1);
        kb.retract_clause(kb.num_clauses() - 1);
        assert_eq!(kb.fingerprint(), fp0, "undoing the edit restores the key");
    }

    #[test]
    fn clauses_are_canonicalized_on_entry() {
        let cnf = Cnf::from_clauses(3, vec![vec![2, 1, 2]]);
        let kb = KnowledgeBase::new("canon", &cnf, WmcWeights::uniform(3));
        let lits: Vec<i32> = kb.clauses()[0].iter().map(|l| l.to_dimacs()).collect();
        assert_eq!(lits, vec![1, 2], "sorted and deduplicated");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_clause_checks_the_universe() {
        let cnf = Cnf::new(2);
        let mut kb = KnowledgeBase::new("small", &cnf, WmcWeights::uniform(2));
        kb.add_clause(&[3]);
    }
}
