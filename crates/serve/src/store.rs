//! The persistent compiled-circuit store: cost-aware, byte-metered.
//!
//! A [`CircuitStore`] maps [`FormulaFingerprint`]s to compiled
//! artifacts so that *every* query after a knowledge base's first
//! compilation is answered from the store instead of repaying
//! compilation. Entries carry the flat d-DNNF arena (the serving hot
//! path), the source circuit (rehydrating shared [`reason_pc::CompiledWmc`]
//! oracles for executor lanes), the cached weighted model count, and
//! the compile telemetry the router's cost model feeds on.
//!
//! The store is bounded two ways — entry count and total artifact
//! bytes — and evicts entries when either bound is crossed. The
//! victim is chosen by the configured [`EvictionPolicy`]: the default
//! [`CostAware`](EvictionPolicy::CostAware) policy scores each entry
//! `bytes × EWMA recompile seconds` (the telemetry every insertion
//! already carries) and evicts the *minimum* — the entry whose loss is
//! cheapest to repay — falling back to recency only to break ties.
//! Plain [`Lru`](EvictionPolicy::Lru) remains available for workloads
//! whose recompile costs are uniform. Either way eviction is safe by
//! construction: recompiling the same `(formula, weights)` key
//! reproduces the artifact bit-for-bit (see the store round-trip
//! property tests), so an evicted entry costs latency, never
//! correctness.

use std::collections::HashMap;
use std::sync::Arc;

use reason_pc::{Circuit, CompileStats, Dnnf};
use reason_telemetry::{Counter, Gauge, Telemetry};

use crate::fingerprint::FormulaFingerprint;

/// How a full [`CircuitStore`] picks its eviction victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used entry.
    Lru,
    /// Evict the entry with the smallest retention score
    /// `bytes × EWMA recompile seconds`: small artifacts that are
    /// cheap to rebuild go first, while large circuits that took real
    /// compile time stick around even when a stream of one-shot keys
    /// churns the recency order. The EWMA survives eviction (keyed by
    /// digest), so a key that keeps bouncing in and out remembers what
    /// its recompilations cost. Ties break least-recently-used.
    #[default]
    CostAware,
}

/// Size bounds of a [`CircuitStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Maximum live entries.
    pub max_entries: usize,
    /// Maximum total artifact bytes (arena + circuit estimates). A
    /// single artifact larger than the bound is still admitted — the
    /// bound then holds everything *else* out.
    pub max_bytes: usize,
    /// Victim selection when a bound is crossed.
    pub policy: EvictionPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { max_entries: 64, max_bytes: 64 << 20, policy: EvictionPolicy::CostAware }
    }
}

/// One compiled artifact.
#[derive(Debug, Clone)]
pub struct StoredCircuit {
    /// The flat, evaluation-ready d-DNNF arena, shared: batch execution
    /// hands the same arena to `reason_system`'s batched serve lane
    /// without copying the node table.
    pub dnnf: Arc<Dnnf>,
    /// The source circuit (rehydrates shared `CompiledWmc` oracles).
    pub circuit: Circuit,
    /// The weighted model count, cached at insertion.
    pub z: f64,
    /// Seconds the producing compilation took.
    pub compile_s: f64,
    /// The producing compilation's counters.
    pub stats: CompileStats,
}

impl StoredCircuit {
    /// Artifact footprint metered against [`StoreConfig::max_bytes`].
    pub fn bytes(&self) -> usize {
        self.dnnf.bytes() + self.circuit.footprint_bytes()
    }
}

/// Hit/miss/eviction counters plus current occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts inserted.
    pub insertions: u64,
    /// Artifacts evicted by the size bounds.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Live artifact bytes right now.
    pub bytes: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    value: StoredCircuit,
    last_used: u64,
    /// EWMA of the recompile seconds observed for this key, carried
    /// from `recompile_ewma` at insertion time.
    cost_s: f64,
}

impl Slot {
    /// Retention score under [`EvictionPolicy::CostAware`]: the
    /// recompile seconds an eviction would eventually repay, weighted
    /// by footprint (bytes and compile effort grow together on this
    /// workload, so the product separates throwaway artifacts from the
    /// ones worth pinning).
    fn score(&self) -> f64 {
        self.value.bytes() as f64 * self.cost_s
    }
}

/// Cached registry handles for an attached telemetry sink — resolved
/// once at attach time so the lookup hot path pays one atomic
/// increment, never a registry lock.
#[derive(Debug)]
struct StoreMetrics {
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    entries: Gauge,
    bytes: Gauge,
}

impl StoreMetrics {
    fn new(tel: &Telemetry, labels: &[(&str, &str)]) -> Self {
        let mut hit = labels.to_vec();
        hit.push(("result", "hit"));
        let mut miss = labels.to_vec();
        miss.push(("result", "miss"));
        StoreMetrics {
            hits: tel.registry.counter("store_lookups_total", &hit),
            misses: tel.registry.counter("store_lookups_total", &miss),
            insertions: tel.registry.counter("store_insertions_total", labels),
            evictions: tel.registry.counter("store_evictions_total", labels),
            entries: tel.registry.gauge("store_entries", labels),
            bytes: tel.registry.gauge("store_bytes", labels),
        }
    }
}

/// The bounded compiled-circuit store (see the [module docs](self)).
pub struct CircuitStore {
    config: StoreConfig,
    entries: HashMap<FormulaFingerprint, Slot>,
    /// Per-digest EWMA of observed recompile seconds. Outlives the
    /// entries themselves so eviction does not erase the cost history
    /// that justifies keeping a key next time.
    recompile_ewma: HashMap<u64, f64>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    metrics: Option<StoreMetrics>,
}

impl CircuitStore {
    /// An empty store with the given bounds.
    pub fn new(config: StoreConfig) -> Self {
        CircuitStore {
            config,
            entries: HashMap::new(),
            recompile_ewma: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            metrics: None,
        }
    }

    /// Attaches a telemetry sink: every lookup, insertion, and eviction
    /// from now on lands in `store_lookups_total{result}` /
    /// `store_insertions_total` / `store_evictions_total` counters and
    /// the `store_entries` / `store_bytes` occupancy gauges, all tagged
    /// with `labels` (the serving layers pass `shard`).
    pub fn attach_telemetry(&mut self, tel: &Telemetry, labels: &[(&str, &str)]) {
        let metrics = StoreMetrics::new(tel, labels);
        metrics.entries.set(self.entries.len() as f64);
        metrics.bytes.set(self.bytes as f64);
        self.metrics = Some(metrics);
    }

    fn sync_occupancy_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.entries.set(self.entries.len() as f64);
            m.bytes.set(self.bytes as f64);
        }
    }

    /// The store's bounds.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Looks an artifact up, counting the hit/miss and refreshing the
    /// entry's recency on a hit.
    pub fn get(&mut self, key: &FormulaFingerprint) -> Option<&StoredCircuit> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                Some(&slot.value)
            }
            None => {
                self.misses += 1;
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                }
                None
            }
        }
    }

    /// `true` when the key is live — no recency bump, no hit/miss
    /// accounting.
    pub fn contains(&self, key: &FormulaFingerprint) -> bool {
        self.entries.contains_key(key)
    }

    /// Reads an entry without touching counters or recency — for a
    /// caller that just paid the accounting through
    /// [`get`](Self::get) and needs a second (immutable) look.
    pub fn peek(&self, key: &FormulaFingerprint) -> Option<&StoredCircuit> {
        self.entries.get(key).map(|slot| &slot.value)
    }

    /// Inserts (or replaces) an artifact, then evicts entries — chosen
    /// by the configured [`EvictionPolicy`] — until both bounds hold
    /// again. The newly inserted artifact is never the eviction
    /// victim. The artifact's `compile_s` telemetry folds into the
    /// key's recompile-cost EWMA before the victim search, so a
    /// re-inserted key is judged by its whole recompilation history.
    pub fn insert(&mut self, key: FormulaFingerprint, value: StoredCircuit) {
        self.tick += 1;
        self.insertions += 1;
        if let Some(m) = &self.metrics {
            m.insertions.inc();
        }
        let added = value.bytes();
        let cost_s = match self.recompile_ewma.get(&key.digest()) {
            Some(&old) => 0.7 * old + 0.3 * value.compile_s.max(0.0),
            None => value.compile_s.max(0.0),
        };
        self.recompile_ewma.insert(key.digest(), cost_s);
        let slot = Slot { value, last_used: self.tick, cost_s };
        if let Some(old) = self.entries.insert(key.clone(), slot) {
            self.bytes -= old.value.bytes();
        }
        self.bytes += added;
        while self.entries.len() > self.config.max_entries
            || (self.bytes > self.config.max_bytes && self.entries.len() > 1)
        {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by(|(_, a), (_, b)| match self.config.policy {
                    EvictionPolicy::Lru => a.last_used.cmp(&b.last_used),
                    EvictionPolicy::CostAware => {
                        a.score().total_cmp(&b.score()).then(a.last_used.cmp(&b.last_used))
                    }
                })
                .map(|(k, _)| k.clone());
            match victim {
                Some(v) => {
                    self.remove(&v);
                    self.evictions += 1;
                    if let Some(m) = &self.metrics {
                        m.evictions.inc();
                    }
                }
                None => break, // only the fresh entry remains
            }
        }
        self.sync_occupancy_gauges();
    }

    /// Drops every entry at once (fault-injection cache wipes). The
    /// recompile-cost history survives, so re-inserted keys are still
    /// judged by their full recompilation record under the cost-aware
    /// eviction policy.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
        self.sync_occupancy_gauges();
    }

    /// Removes an entry outright (KB deregistration), returning it.
    pub fn remove(&mut self, key: &FormulaFingerprint) -> Option<StoredCircuit> {
        let removed = self.entries.remove(key).map(|slot| {
            self.bytes -= slot.value.bytes();
            slot.value
        });
        self.sync_occupancy_gauges();
        removed
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_pc::{compile_cnf, compile_cnf_with_stats, CompileConfig, WmcWeights};
    use reason_sat::gen::random_ksat;
    use reason_sat::Cnf;

    fn artifact(seed: u64) -> (FormulaFingerprint, StoredCircuit) {
        artifact_costing(seed, 1e-3)
    }

    fn artifact_costing(seed: u64, compile_s: f64) -> (FormulaFingerprint, StoredCircuit) {
        let mut s = seed;
        loop {
            let cnf = random_ksat(8, 20, 3, s);
            let w = WmcWeights::uniform(8);
            let (circuit, stats) = compile_cnf_with_stats(&cnf, &w, &CompileConfig::default());
            if let Some(circuit) = circuit {
                let dnnf = Arc::new(Dnnf::from_circuit(&circuit).unwrap());
                let mut buf = reason_pc::DnnfBuffer::new();
                let z = dnnf.probability(&reason_pc::Evidence::empty(8), &mut buf);
                let fp = FormulaFingerprint::new(&cnf, &w);
                return (fp, StoredCircuit { dnnf, circuit, z, compile_s, stats });
            }
            s += 1000;
        }
    }

    #[test]
    fn hit_miss_and_recency_accounting() {
        let mut store = CircuitStore::new(StoreConfig::default());
        let (fp, art) = artifact(1);
        assert!(store.get(&fp).is_none());
        store.insert(fp.clone(), art);
        assert!(store.get(&fp).is_some());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entry_bound_evicts_least_recently_used() {
        let mut store = CircuitStore::new(StoreConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
            policy: EvictionPolicy::Lru,
        });
        let (fp_a, a) = artifact(1);
        let (fp_b, b) = artifact(2);
        let (fp_c, c) = artifact(3);
        store.insert(fp_a.clone(), a);
        store.insert(fp_b.clone(), b);
        let _ = store.get(&fp_a); // refresh A: B becomes the LRU victim
        store.insert(fp_c.clone(), c);
        assert!(store.contains(&fp_a));
        assert!(!store.contains(&fp_b), "stale entry must be evicted");
        assert!(store.contains(&fp_c));
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn byte_bound_holds_but_admits_a_single_oversized_artifact() {
        let (fp_a, a) = artifact(1);
        let (fp_b, b) = artifact(2);
        let tiny = a.bytes() / 2;
        let mut store = CircuitStore::new(StoreConfig {
            max_entries: 10,
            max_bytes: tiny,
            ..Default::default()
        });
        store.insert(fp_a.clone(), a);
        assert_eq!(store.len(), 1, "oversized single artifact is admitted");
        store.insert(fp_b.clone(), b);
        assert_eq!(store.len(), 1, "byte bound evicts the older artifact");
        assert!(store.contains(&fp_b));
    }

    #[test]
    fn recompilation_reproduces_evicted_artifacts_bit_for_bit() {
        let cnf = Cnf::from_clauses(6, vec![vec![1, 2], vec![-2, 3], vec![4, 5, -6]]);
        let w = WmcWeights::new(vec![0.4, 0.55, 0.5, 0.35, 0.6, 0.45]);
        let first = compile_cnf(&cnf, &w).unwrap();
        let z_first = Dnnf::from_circuit(&first)
            .unwrap()
            .probability(&reason_pc::Evidence::empty(6), &mut reason_pc::DnnfBuffer::new());
        // "Evict" and recompile from scratch: identical key → identical
        // artifact → identical bits.
        let second = compile_cnf(&cnf, &w).unwrap();
        assert_eq!(first, second);
        let z_second = Dnnf::from_circuit(&second)
            .unwrap()
            .probability(&reason_pc::Evidence::empty(6), &mut reason_pc::DnnfBuffer::new());
        assert_eq!(z_first.to_bits(), z_second.to_bits());
    }

    #[test]
    fn overwrite_then_evict_keeps_stats_in_sync_with_live_entries() {
        // The full re-insert lifecycle: byte accounting must track the
        // *live* artifacts exactly through overwrites (the old entry's
        // footprint leaves the meter, the new one enters — never both)
        // and through the evictions an oversized overwrite triggers.
        let (fp_a, a) = artifact(1);
        let (fp_b, b) = artifact(2);
        let (_, a2) = artifact(3);
        let (bytes_a, bytes_b, bytes_a2) = (a.bytes(), b.bytes(), a2.bytes());
        // Byte bound fits both originals plus slack, but not an extra
        // stale copy of A: if an overwrite double-counted, the meter
        // would cross the bound and evict spuriously.
        let budget = bytes_a + bytes_b + bytes_a2.max(bytes_a);
        let mut store = CircuitStore::new(StoreConfig {
            max_entries: 8,
            max_bytes: budget,
            policy: EvictionPolicy::Lru,
        });
        store.insert(fp_a.clone(), a);
        store.insert(fp_b.clone(), b);
        assert_eq!(store.stats().bytes, bytes_a + bytes_b);

        // Overwrite A in place: same key, new artifact.
        store.insert(fp_a.clone(), a2);
        let stats = store.stats();
        assert_eq!(stats.entries, 2, "overwrite must not grow the store");
        assert_eq!(
            stats.bytes,
            bytes_a2 + bytes_b,
            "overwrite must swap A's footprint, not accumulate it"
        );
        assert_eq!(stats.evictions, 0, "a within-budget overwrite must not evict");
        assert_eq!(stats.insertions, 3);

        // Meter integrity: the stats byte count equals the recomputed
        // footprints of exactly the live entries.
        let live: usize = [&fp_a, &fp_b].iter().map(|fp| store.peek(fp).unwrap().bytes()).sum();
        assert_eq!(store.stats().bytes, live);

        // An overwrite that blows the byte budget evicts the LRU (B),
        // never the just-refreshed key.
        let mut store = CircuitStore::new(StoreConfig {
            max_entries: 8,
            max_bytes: bytes_a + bytes_b,
            policy: EvictionPolicy::Lru,
        });
        let (_, a) = artifact(1);
        let (_, b) = artifact(2);
        let (_, big) = (3..)
            .map(artifact)
            .find(|(_, art)| art.bytes() > bytes_a)
            .expect("some artifact outgrows A");
        let big_bytes = big.bytes();
        store.insert(fp_a.clone(), a);
        store.insert(fp_b.clone(), b);
        store.insert(fp_a.clone(), big); // bytes_a2 + bytes_b > budget
        assert!(store.contains(&fp_a), "the fresh entry is never the victim");
        assert!(!store.contains(&fp_b), "the LRU entry pays for the overgrown overwrite");
        let stats = store.stats();
        assert_eq!((stats.entries, stats.evictions), (1, 1));
        assert_eq!(stats.bytes, big_bytes);
    }

    #[test]
    fn replacing_an_entry_keeps_byte_accounting_consistent() {
        let mut store = CircuitStore::new(StoreConfig::default());
        let (fp, a) = artifact(1);
        let bytes_a = a.bytes();
        store.insert(fp.clone(), a);
        assert_eq!(store.stats().bytes, bytes_a);
        let (_, b) = artifact(5);
        let bytes_b = b.bytes();
        store.insert(fp.clone(), b);
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().bytes, bytes_b);
        store.remove(&fp);
        assert_eq!(store.stats().bytes, 0);
        assert!(store.is_empty());
    }

    #[test]
    fn cost_aware_eviction_protects_expensive_artifacts_over_recent_cheap_ones() {
        let mut store = CircuitStore::new(StoreConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
            policy: EvictionPolicy::CostAware,
        });
        let (fp_dear, dear) = artifact_costing(1, 2.0); // seconds to recompile
        let (fp_cheap, cheap) = artifact_costing(2, 1e-6);
        let (fp_new, fresh) = artifact_costing(3, 1e-6);
        store.insert(fp_dear.clone(), dear);
        store.insert(fp_cheap.clone(), cheap);
        let _ = store.get(&fp_cheap); // cheap entry is the *most* recent
        store.insert(fp_new.clone(), fresh);
        assert!(store.contains(&fp_dear), "expensive artifact must survive the churn");
        assert!(!store.contains(&fp_cheap), "cheapest-to-repay entry is the victim");
        assert!(store.contains(&fp_new));
    }

    #[test]
    fn recompile_cost_ewma_survives_eviction() {
        // A key whose compilations cost 1.0s is evicted, then
        // re-inserted with an optimistic compile_s of 0 (e.g. a
        // near-free persistent-cache rebuild). The EWMA must remember
        // the expensive history: 0.7 * 1.0 + 0.3 * 0.0 = 0.7s, which
        // still outranks a genuinely cheap competitor.
        let mut store = CircuitStore::new(StoreConfig {
            max_entries: 1,
            max_bytes: usize::MAX,
            policy: EvictionPolicy::CostAware,
        });
        let (fp_dear, dear) = artifact_costing(1, 1.0);
        let (_, dear_rebuilt) = artifact_costing(1, 0.0);
        let (fp_cheap, cheap) = artifact_costing(2, 1e-6);
        store.insert(fp_dear.clone(), dear);
        store.insert(fp_cheap.clone(), cheap); // evicts dear (only other entry)
        assert!(!store.contains(&fp_dear));
        store.insert(fp_dear.clone(), dear_rebuilt); // evicts cheap
        assert_eq!(store.entries[&fp_dear].cost_s, 0.7, "EWMA folds the evicted history back in");
        assert_eq!(store.stats().evictions, 2);
    }

    #[test]
    fn cost_aware_ties_break_least_recently_used() {
        let mut store = CircuitStore::new(StoreConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
            policy: EvictionPolicy::CostAware,
        });
        // Give two *distinct* keys identical scores by storing one
        // artifact body under two fingerprints.
        let (fp_a, a) = artifact_costing(1, 1e-3);
        let (fp_c, c) = artifact_costing(3, 1e-3);
        let fp_b = FormulaFingerprint::from_parts(8, &[], &WmcWeights::new(vec![0.4; 8]));
        let b = a.clone();
        store.insert(fp_a.clone(), a);
        store.insert(fp_b.clone(), b);
        let _ = store.get(&fp_a); // equal scores: B is now the older entry
        store.insert(fp_c.clone(), c); // victim search is over {A, B} only
        assert!(store.contains(&fp_a));
        assert!(!store.contains(&fp_b), "score tie must fall back to recency");
    }
}
