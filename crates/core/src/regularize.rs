//! Stage 3: two-input DAG regularization (paper Sec. IV-C).
//!
//! Nodes with more than two inputs are recursively decomposed into
//! balanced binary trees of two-input intermediate nodes of the same
//! (associative) operation. The transformation preserves semantics exactly
//! and bounds fan-in at 2, matching the two-input tree PEs of the REASON
//! hardware and enabling the depth-bounded block decomposition of the
//! mapping compiler.

use crate::dag::{Dag, DagBuilder, DagOp, NodeId, NodeKind};

/// Rewrites the DAG so every node has fan-in ≤ 2.
///
/// Associative ops (`Add`, `Mul`, `Max`) are rebalanced into binary trees;
/// other ops already satisfy the bound. Dead nodes are compacted away.
///
/// ```
/// use reason_core::{regularize, DagBuilder, DagOp, NodeKind};
/// let mut b = DagBuilder::new();
/// let inputs: Vec<_> = (0..5).map(|i| b.input(i)).collect();
/// let sum = b.node(DagOp::Add, inputs, NodeKind::Generic);
/// let dag = b.build(sum).unwrap();
/// let reg = regularize(&dag);
/// assert!(reg.max_fan_in() <= 2);
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(reg.evaluate_output(&xs), dag.evaluate_output(&xs));
/// ```
pub fn regularize(dag: &Dag) -> Dag {
    let mut b = DagBuilder::without_cse();
    let mut remap: Vec<NodeId> = Vec::with_capacity(dag.num_nodes());
    for node in dag.nodes() {
        let children: Vec<NodeId> = node.children.iter().map(|c| remap[c.index()]).collect();
        let id = if children.len() > 2 && node.op.is_associative() {
            balanced_tree(&mut b, node.op, &children, node.kind)
        } else {
            match node.op {
                DagOp::Input(slot) => b.input(slot),
                DagOp::Const(c) => b.constant(c),
                op => b.node(op, children, node.kind),
            }
        };
        remap.push(id);
    }
    let rebuilt = b.build(remap[dag.output().index()]).expect("regularization preserves validity");
    rebuilt.compact().0
}

/// Builds a balanced binary combination of `children` under `op`.
fn balanced_tree(b: &mut DagBuilder, op: DagOp, children: &[NodeId], kind: NodeKind) -> NodeId {
    if children.len() == 1 {
        return children[0];
    }
    if children.len() == 2 {
        return b.node(op, children.to_vec(), kind);
    }
    let mid = children.len() / 2;
    let left = balanced_tree(b, op, &children[..mid], kind);
    let right = balanced_tree(b, op, &children[mid..], kind);
    b.node(op, vec![left, right], kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::hmm::dag_from_hmm;
    use crate::frontend::pc::dag_from_circuit;
    use crate::frontend::sat::dag_from_cnf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reason_hmm::Hmm;
    use reason_pc::{random_mixture_circuit, StructureConfig};
    use reason_sat::gen::random_ksat;

    fn random_inputs(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    #[test]
    fn preserves_semantics_on_wide_nodes() {
        let mut b = DagBuilder::new();
        let inputs: Vec<_> = (0..9).map(|i| b.input(i)).collect();
        let mul = b.node(DagOp::Mul, inputs[..5].to_vec(), NodeKind::Generic);
        let mut rest = inputs[5..].to_vec();
        rest.push(mul);
        let add = b.node(DagOp::Add, rest, NodeKind::Generic);
        let dag = b.build(add).unwrap();
        let reg = regularize(&dag);
        assert!(reg.max_fan_in() <= 2);
        for seed in 0..10 {
            let xs = random_inputs(9, seed);
            let a = dag.evaluate_output(&xs);
            let r = reg.evaluate_output(&xs);
            assert!((a - r).abs() < 1e-12);
        }
    }

    #[test]
    fn regularized_sat_dag_still_decides() {
        let cnf = random_ksat(8, 30, 3, 4);
        let (dag, _) = dag_from_cnf(&cnf);
        let reg = regularize(&dag);
        assert!(reg.max_fan_in() <= 2);
        for bits in (0..256u32).step_by(7) {
            let inputs: Vec<f64> = (0..8).map(|v| f64::from(bits >> v & 1)).collect();
            assert_eq!(dag.evaluate_output(&inputs), reg.evaluate_output(&inputs));
        }
    }

    #[test]
    fn regularized_pc_dag_matches() {
        let cfg = StructureConfig { num_vars: 6, depth: 3, num_components: 3, seed: 2 };
        let circuit = random_mixture_circuit(&cfg);
        let (dag, _) = dag_from_circuit(&circuit);
        let reg = regularize(&dag);
        assert!(reg.max_fan_in() <= 2);
        for seed in 0..5 {
            let xs = random_inputs(dag.num_inputs(), seed);
            assert!((dag.evaluate_output(&xs) - reg.evaluate_output(&xs)).abs() < 1e-12);
        }
    }

    #[test]
    fn regularized_hmm_dag_matches() {
        let hmm = Hmm::random(4, 3, 9);
        let (dag, map) = dag_from_hmm(&hmm, 6);
        let reg = regularize(&dag);
        assert!(reg.max_fan_in() <= 2);
        let obs: Vec<Option<usize>> = vec![Some(0), Some(2), None, Some(1), None, Some(0)];
        let xs = map.inputs_for_observations(&obs);
        assert!((dag.evaluate_output(&xs) - reg.evaluate_output(&xs)).abs() < 1e-12);
    }

    #[test]
    fn depth_grows_logarithmically() {
        let mut b = DagBuilder::new();
        let inputs: Vec<_> = (0..64).map(|i| b.input(i)).collect();
        let add = b.node(DagOp::Add, inputs, NodeKind::Generic);
        let dag = b.build(add).unwrap();
        let reg = regularize(&dag);
        // 64 leaves → depth exactly log2(64) = 6.
        assert_eq!(reg.depth(), 6);
    }

    #[test]
    fn already_binary_dag_is_unchanged_semantically() {
        let mut b = DagBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let m = b.node(DagOp::Mul, vec![x, y], NodeKind::Generic);
        let dag = b.build(m).unwrap();
        let reg = regularize(&dag);
        assert_eq!(reg.num_nodes(), dag.num_nodes());
        assert_eq!(reg.evaluate_output(&[0.5, 4.0]), 2.0);
    }
}
