//! The unified DAG intermediate representation (paper Sec. IV-A).
//!
//! Nodes compute over `f64` values; Boolean logic is embedded numerically
//! (false = 0, true = 1, `And` = product, `Or` = max, `Not` = 1 − x) so a
//! single evaluator — and a single hardware datapath of adders,
//! multipliers, and comparators (paper Sec. V-B) — serves logical,
//! probabilistic, and sequential kernels alike.

use std::collections::HashMap;
use std::fmt;

/// Index of a node within a [`Dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index. The id is only meaningful for the
    /// DAG whose node list position it names; out-of-range ids surface as
    /// panics on access.
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    pub(crate) fn new(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// The operation a DAG node performs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DagOp {
    /// An external input, identified by slot index.
    Input(u32),
    /// A constant.
    Const(f64),
    /// N-ary addition (probabilistic aggregation, OR-accumulation).
    Add,
    /// N-ary multiplication (factor products, numeric AND).
    Mul,
    /// N-ary maximum (numeric OR, max-product decoding).
    Max,
    /// Unary complement `1 - x` (numeric NOT).
    Not,
}

impl DagOp {
    /// `true` for `Input`/`Const` nodes (no children expected).
    pub fn is_nullary(&self) -> bool {
        matches!(self, DagOp::Input(_) | DagOp::Const(_))
    }

    /// `true` for associative n-ary ops that regularization may rebalance.
    pub fn is_associative(&self) -> bool {
        matches!(self, DagOp::Add | DagOp::Mul | DagOp::Max)
    }
}

/// Provenance tag carried by each node — the paper's per-kernel node
/// typing (Fig. 5: literals/clauses/formulas, sum/product, transition/
/// emission factors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A literal of a logical formula.
    Literal,
    /// A clause (disjunction) node.
    Clause,
    /// A formula (conjunction) root.
    Formula,
    /// A probabilistic sum (mixture) component.
    Sum,
    /// A probabilistic product (factorization).
    Product,
    /// A leaf distribution.
    Leaf,
    /// An HMM transition factor.
    Transition,
    /// An HMM emission factor.
    Emission,
    /// Untyped plumbing (constants, regularization intermediates).
    Generic,
}

/// One node: an op, its children, and a provenance tag.
#[derive(Debug, Clone, PartialEq)]
pub struct DagNode {
    /// The operation.
    pub op: DagOp,
    /// Child node ids (operands), all defined before this node.
    pub children: Vec<NodeId>,
    /// Provenance tag.
    pub kind: NodeKind,
}

/// Structural errors detected by [`DagBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A node references a child at or after its own position.
    NotTopological {
        /// Offending node index.
        node: usize,
    },
    /// A nullary op with children, or an n-ary op without any.
    ArityMismatch {
        /// Offending node index.
        node: usize,
    },
    /// The output id is out of range.
    BadOutput,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NotTopological { node } => {
                write!(f, "node {node} references a child defined later")
            }
            DagError::ArityMismatch { node } => write!(f, "node {node} has an invalid arity"),
            DagError::BadOutput => write!(f, "output id out of range"),
        }
    }
}

impl std::error::Error for DagError {}

/// Shape statistics of a DAG (reported by characterization benches).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagStats {
    /// Total nodes.
    pub nodes: usize,
    /// Total edges.
    pub edges: usize,
    /// Number of input slots.
    pub inputs: usize,
    /// Longest path from any input/const to the output.
    pub depth: usize,
    /// Largest fan-in.
    pub max_fan_in: usize,
    /// Estimated memory footprint in bytes (16/node + 8/edge, two-input
    /// hardware words).
    pub footprint_bytes: usize,
}

/// A validated, topologically ordered DAG with a single output.
#[derive(Debug, Clone, PartialEq)]
pub struct Dag {
    nodes: Vec<DagNode>,
    output: NodeId,
    num_inputs: usize,
}

impl Dag {
    /// All nodes, children-first.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &DagNode {
        &self.nodes[id.index()]
    }

    /// The output node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.children.len()).sum()
    }

    /// Number of input slots (maximum input index + 1).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Largest fan-in across nodes.
    pub fn max_fan_in(&self) -> usize {
        self.nodes.iter().map(|n| n.children.len()).max().unwrap_or(0)
    }

    /// Longest path length from a source to the output.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            depth[i] = node.children.iter().map(|c| depth[c.index()] + 1).max().unwrap_or(0);
        }
        depth[self.output.index()]
    }

    /// Shape statistics.
    pub fn stats(&self) -> DagStats {
        DagStats {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            inputs: self.num_inputs,
            depth: self.depth(),
            max_fan_in: self.max_fan_in(),
            footprint_bytes: 16 * self.num_nodes() + 8 * self.num_edges(),
        }
    }

    /// Evaluates every node under the given input slot values, returning
    /// one value per node.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() < self.num_inputs()`.
    pub fn evaluate(&self, inputs: &[f64]) -> Vec<f64> {
        assert!(inputs.len() >= self.num_inputs, "input vector too short");
        let mut vals = vec![0.0f64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            vals[i] = match node.op {
                DagOp::Input(slot) => inputs[slot as usize],
                DagOp::Const(c) => c,
                DagOp::Add => node.children.iter().map(|c| vals[c.index()]).sum(),
                DagOp::Mul => node.children.iter().map(|c| vals[c.index()]).product(),
                DagOp::Max => {
                    node.children.iter().map(|c| vals[c.index()]).fold(f64::NEG_INFINITY, f64::max)
                }
                DagOp::Not => 1.0 - vals[node.children[0].index()],
            };
        }
        vals
    }

    /// Evaluates and returns only the output value.
    pub fn evaluate_output(&self, inputs: &[f64]) -> f64 {
        self.evaluate(inputs)[self.output.index()]
    }

    /// Builds an all-ones input vector overridden by `(slot, value)` pairs
    /// — convenient for indicator-style inputs where 1 means
    /// "marginalized/unconstrained".
    pub fn input_vector(&self, overrides: &[(usize, f64)]) -> Vec<f64> {
        let mut v = vec![1.0; self.num_inputs];
        for &(slot, value) in overrides {
            v[slot] = value;
        }
        v
    }

    /// Validates topology and arities.
    ///
    /// # Errors
    ///
    /// Returns the first [`DagError`] found.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.output.index() >= self.nodes.len() {
            return Err(DagError::BadOutput);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.children.iter().any(|c| c.index() >= i) {
                return Err(DagError::NotTopological { node: i });
            }
            let bad_arity = match node.op {
                DagOp::Input(_) | DagOp::Const(_) => !node.children.is_empty(),
                DagOp::Not => node.children.len() != 1,
                DagOp::Add | DagOp::Mul | DagOp::Max => node.children.is_empty(),
            };
            if bad_arity {
                return Err(DagError::ArityMismatch { node: i });
            }
        }
        Ok(())
    }

    /// Returns the DAG with dead (unreachable-from-output) nodes removed.
    /// Second value is the number of nodes dropped.
    pub fn compact(&self) -> (Dag, usize) {
        let mut live = vec![false; self.nodes.len()];
        live[self.output.index()] = true;
        for i in (0..self.nodes.len()).rev() {
            if live[i] {
                for c in &self.nodes[i].children {
                    live[c.index()] = true;
                }
            }
        }
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut nodes = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let children =
                node.children.iter().map(|c| remap[c.index()].expect("child live")).collect();
            remap[i] = Some(NodeId::new(nodes.len()));
            nodes.push(DagNode { op: node.op, children, kind: node.kind });
        }
        let dropped = self.nodes.len() - nodes.len();
        let output = remap[self.output.index()].expect("output live");
        (Dag { nodes, output, num_inputs: self.num_inputs }, dropped)
    }
}

/// Hash key for common-subexpression elimination: op discriminant, const
/// bits, and children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CseKey {
    Input(u32),
    Const(u64),
    Op(u8, Vec<NodeId>),
}

/// Incremental builder with optional hash-consing (CSE).
///
/// ```
/// use reason_core::{DagBuilder, DagOp, NodeKind};
/// let mut b = DagBuilder::new();
/// let x = b.input(0);
/// let y = b.input(1);
/// let sum = b.node(DagOp::Add, vec![x, y], NodeKind::Generic);
/// let dag = b.build(sum).unwrap();
/// assert_eq!(dag.evaluate_output(&[2.0, 3.0]), 5.0);
/// ```
#[derive(Debug, Default)]
pub struct DagBuilder {
    nodes: Vec<DagNode>,
    cse: HashMap<CseKey, NodeId>,
    dedup: bool,
    num_inputs: usize,
}

impl DagBuilder {
    /// A builder with CSE enabled.
    pub fn new() -> Self {
        DagBuilder { nodes: Vec::new(), cse: HashMap::new(), dedup: true, num_inputs: 0 }
    }

    /// A builder without common-subexpression elimination.
    pub fn without_cse() -> Self {
        DagBuilder { dedup: false, ..DagBuilder::new() }
    }

    /// Number of nodes so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no node was added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds (or reuses) an input node for `slot`.
    pub fn input(&mut self, slot: u32) -> NodeId {
        self.num_inputs = self.num_inputs.max(slot as usize + 1);
        self.intern(CseKey::Input(slot), DagOp::Input(slot), Vec::new(), NodeKind::Generic)
    }

    /// Adds (or reuses) a constant node.
    pub fn constant(&mut self, value: f64) -> NodeId {
        self.intern(
            CseKey::Const(value.to_bits()),
            DagOp::Const(value),
            Vec::new(),
            NodeKind::Generic,
        )
    }

    /// Adds an operation node.
    ///
    /// # Panics
    ///
    /// Panics on arity violations (nullary op with children, `Not` without
    /// exactly one child, n-ary op with no children).
    pub fn node(&mut self, op: DagOp, children: Vec<NodeId>, kind: NodeKind) -> NodeId {
        match op {
            DagOp::Input(slot) => {
                assert!(children.is_empty(), "input takes no children");
                self.num_inputs = self.num_inputs.max(slot as usize + 1);
                return self.intern(CseKey::Input(slot), op, children, kind);
            }
            DagOp::Const(c) => {
                assert!(children.is_empty(), "const takes no children");
                return self.intern(CseKey::Const(c.to_bits()), op, children, kind);
            }
            DagOp::Not => assert_eq!(children.len(), 1, "Not takes exactly one child"),
            DagOp::Add | DagOp::Mul | DagOp::Max => {
                assert!(!children.is_empty(), "n-ary op needs children")
            }
        }
        let tag = match op {
            DagOp::Add => 0u8,
            DagOp::Mul => 1,
            DagOp::Max => 2,
            DagOp::Not => 3,
            _ => unreachable!("nullary handled above"),
        };
        self.intern(CseKey::Op(tag, children.clone()), op, children, kind)
    }

    fn intern(&mut self, key: CseKey, op: DagOp, children: Vec<NodeId>, kind: NodeKind) -> NodeId {
        if self.dedup {
            if let Some(&id) = self.cse.get(&key) {
                return id;
            }
        }
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(DagNode { op, children, kind });
        if self.dedup {
            self.cse.insert(key, id);
        }
        id
    }

    /// Finalizes with `output` as the DAG's result node.
    ///
    /// # Errors
    ///
    /// Returns a [`DagError`] on structural violations.
    pub fn build(self, output: NodeId) -> Result<Dag, DagError> {
        let dag = Dag { nodes: self.nodes, output, num_inputs: self.num_inputs };
        dag.validate()?;
        Ok(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_arithmetic() {
        let mut b = DagBuilder::new();
        let x = b.input(0);
        let c = b.constant(3.0);
        let mul = b.node(DagOp::Mul, vec![x, c], NodeKind::Generic);
        let y = b.input(1);
        let add = b.node(DagOp::Add, vec![mul, y], NodeKind::Generic);
        let dag = b.build(add).unwrap();
        assert_eq!(dag.evaluate_output(&[2.0, 1.5]), 7.5);
        assert_eq!(dag.num_inputs(), 2);
    }

    #[test]
    fn boolean_embedding() {
        // (x0 OR NOT x1) as Max(x0, Not(x1)).
        let mut b = DagBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let n = b.node(DagOp::Not, vec![x1], NodeKind::Literal);
        let or = b.node(DagOp::Max, vec![x0, n], NodeKind::Clause);
        let dag = b.build(or).unwrap();
        assert_eq!(dag.evaluate_output(&[0.0, 0.0]), 1.0);
        assert_eq!(dag.evaluate_output(&[0.0, 1.0]), 0.0);
        assert_eq!(dag.evaluate_output(&[1.0, 1.0]), 1.0);
    }

    #[test]
    fn cse_shares_nodes() {
        let mut b = DagBuilder::new();
        let x = b.input(0);
        let a1 = b.node(DagOp::Not, vec![x], NodeKind::Generic);
        let a2 = b.node(DagOp::Not, vec![x], NodeKind::Generic);
        assert_eq!(a1, a2);
        let c1 = b.constant(2.5);
        let c2 = b.constant(2.5);
        assert_eq!(c1, c2);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn without_cse_duplicates() {
        let mut b = DagBuilder::without_cse();
        let x = b.input(0);
        let y = b.input(0);
        assert_ne!(x, y);
    }

    #[test]
    fn stats_and_depth() {
        let mut b = DagBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let z = b.input(2);
        let add = b.node(DagOp::Add, vec![x, y, z], NodeKind::Generic);
        let not = b.node(DagOp::Not, vec![add], NodeKind::Generic);
        let dag = b.build(not).unwrap();
        let stats = dag.stats();
        assert_eq!(stats.nodes, 5);
        assert_eq!(stats.edges, 4);
        assert_eq!(stats.max_fan_in, 3);
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.inputs, 3);
    }

    #[test]
    fn compact_removes_dead_nodes() {
        let mut b = DagBuilder::without_cse();
        let x = b.input(0);
        let _dead = b.node(DagOp::Not, vec![x], NodeKind::Generic);
        let live = b.node(DagOp::Not, vec![x], NodeKind::Generic);
        let dag = b.build(live).unwrap();
        let (compacted, dropped) = dag.compact();
        assert_eq!(dropped, 1);
        assert_eq!(compacted.num_nodes(), 2);
        assert_eq!(compacted.evaluate_output(&[0.0]), dag.evaluate_output(&[0.0]));
    }

    #[test]
    fn validation_errors() {
        // Manual construction of an invalid DAG through the builder is
        // prevented by panics; test the validator directly.
        let dag = Dag {
            nodes: vec![DagNode {
                op: DagOp::Add,
                children: vec![NodeId::new(0)],
                kind: NodeKind::Generic,
            }],
            output: NodeId::new(0),
            num_inputs: 0,
        };
        assert!(matches!(dag.validate(), Err(DagError::NotTopological { .. })));
        let dag = Dag { nodes: vec![], output: NodeId::new(3), num_inputs: 0 };
        assert!(matches!(dag.validate(), Err(DagError::BadOutput)));
    }

    #[test]
    #[should_panic(expected = "n-ary op needs children")]
    fn builder_rejects_empty_nary() {
        let mut b = DagBuilder::new();
        let _ = b.node(DagOp::Add, vec![], NodeKind::Generic);
    }

    #[test]
    fn input_vector_defaults_to_ones() {
        let mut b = DagBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let m = b.node(DagOp::Mul, vec![x, y], NodeKind::Generic);
        let dag = b.build(m).unwrap();
        let v = dag.input_vector(&[(1, 0.25)]);
        assert_eq!(v, vec![1.0, 0.25]);
    }
}
