//! Probabilistic circuit → DAG lowering (paper Sec. IV-A (b)).
//!
//! Input slots carry indicator values `λ[var=value]` (the standard circuit
//! input encoding): a complete assignment sets a one-hot pattern per
//! variable, while all-ones marginalizes a variable out. Sum nodes lower
//! to `Add` over `Mul(Const(weight), child)` pairs, product nodes to
//! `Mul`, and leaves to indicator inputs or weighted indicator mixtures
//! (categoricals). Evaluating the DAG reproduces the circuit's
//! (linear-space) probability.

use reason_pc::{Circuit, PcNode};

use crate::dag::{Dag, DagBuilder, DagOp, NodeId, NodeKind};

/// Mapping metadata produced by [`dag_from_circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcDagMap {
    /// Input slot of indicator `[var = value]`: `slot_of[var] + value`.
    pub slot_of: Vec<usize>,
    /// DAG node corresponding to each circuit node.
    pub node_of: Vec<NodeId>,
}

impl PcDagMap {
    /// The input slot of indicator `[var = value]`.
    pub fn indicator_slot(&self, var: usize, value: usize) -> usize {
        self.slot_of[var] + value
    }

    /// Builds a DAG input vector for partial evidence (`None`
    /// marginalizes): one-hot for observed variables, all-ones otherwise.
    pub fn inputs_for_evidence(&self, arities: &[usize], evidence: &[Option<usize>]) -> Vec<f64> {
        let total: usize = arities.iter().sum();
        let mut v = vec![1.0; total];
        for (var, obs) in evidence.iter().enumerate() {
            if let Some(val) = obs {
                for value in 0..arities[var] {
                    v[self.indicator_slot(var, value)] = if value == *val { 1.0 } else { 0.0 };
                }
            }
        }
        v
    }
}

/// Lowers a probabilistic circuit into the unified DAG.
///
/// ```
/// use reason_core::dag_from_circuit;
/// use reason_pc::{CircuitBuilder, Evidence};
///
/// let mut b = CircuitBuilder::new(vec![2]);
/// let t = b.indicator(0, 1);
/// let f = b.indicator(0, 0);
/// let root = b.sum(vec![t, f], vec![0.3, 0.7]);
/// let circuit = b.build(root).unwrap();
/// let (dag, map) = dag_from_circuit(&circuit);
/// let inputs = map.inputs_for_evidence(circuit.arities(), &[Some(1)]);
/// assert!((dag.evaluate_output(&inputs) - 0.3).abs() < 1e-12);
/// ```
pub fn dag_from_circuit(circuit: &Circuit) -> (Dag, PcDagMap) {
    let mut slot_of = Vec::with_capacity(circuit.num_vars());
    let mut next = 0usize;
    for &arity in circuit.arities() {
        slot_of.push(next);
        next += arity;
    }
    let mut b = DagBuilder::new();
    // Materialize all indicator inputs.
    for slot in 0..next {
        let _ = b.input(slot as u32);
    }
    let mut node_of: Vec<NodeId> = Vec::with_capacity(circuit.num_nodes());
    for node in circuit.nodes() {
        let id = match node {
            PcNode::Indicator { var, value } => b.input((slot_of[*var] + value) as u32),
            PcNode::Categorical { var, log_probs } => {
                let parts: Vec<NodeId> = log_probs
                    .iter()
                    .enumerate()
                    .map(|(value, lp)| {
                        let lambda = b.input((slot_of[*var] + value) as u32);
                        let w = b.constant(lp.exp());
                        b.node(DagOp::Mul, vec![w, lambda], NodeKind::Leaf)
                    })
                    .collect();
                b.node(DagOp::Add, parts, NodeKind::Leaf)
            }
            PcNode::Product { children } => {
                let kids: Vec<NodeId> = children.iter().map(|c| node_of[c.index()]).collect();
                if kids.is_empty() {
                    // The empty product (constant-1 tails in compiled
                    // formula circuits).
                    b.constant(1.0)
                } else {
                    b.node(DagOp::Mul, kids, NodeKind::Product)
                }
            }
            PcNode::Sum { children, log_weights } => {
                let parts: Vec<NodeId> = children
                    .iter()
                    .zip(log_weights)
                    .map(|(c, lw)| {
                        let w = b.constant(lw.exp());
                        b.node(DagOp::Mul, vec![w, node_of[c.index()]], NodeKind::Sum)
                    })
                    .collect();
                b.node(DagOp::Add, parts, NodeKind::Sum)
            }
        };
        node_of.push(id);
    }
    let output = node_of[circuit.root().index()];
    let dag = b.build(output).expect("PC lowering emits valid DAGs");
    (dag, PcDagMap { slot_of, node_of })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_pc::{random_mixture_circuit, CircuitBuilder, Evidence, StructureConfig};

    fn check_matches(circuit: &Circuit) {
        let (dag, map) = dag_from_circuit(circuit);
        let n = circuit.num_vars();
        // Complete assignments.
        let mut assignment = vec![0usize; n];
        loop {
            let ev: Vec<Option<usize>> = assignment.iter().map(|&v| Some(v)).collect();
            let inputs = map.inputs_for_evidence(circuit.arities(), &ev);
            let expect = circuit.probability(&Evidence::from_values(&ev));
            let got = dag.evaluate_output(&inputs);
            assert!((got - expect).abs() < 1e-9, "assignment {assignment:?}: {got} vs {expect}");
            // Advance.
            let mut i = 0;
            loop {
                assignment[i] += 1;
                if assignment[i] < circuit.arities()[i] {
                    break;
                }
                assignment[i] = 0;
                i += 1;
                if i == n {
                    return;
                }
            }
        }
    }

    #[test]
    fn matches_circuit_on_complete_evidence() {
        let cfg = StructureConfig { num_vars: 5, depth: 2, num_components: 2, seed: 3 };
        let circuit = random_mixture_circuit(&cfg);
        check_matches(&circuit);
    }

    #[test]
    fn matches_circuit_on_partial_evidence() {
        let cfg = StructureConfig { num_vars: 6, depth: 3, num_components: 2, seed: 8 };
        let circuit = random_mixture_circuit(&cfg);
        let (dag, map) = dag_from_circuit(&circuit);
        let patterns: Vec<Vec<Option<usize>>> = vec![
            vec![None; 6],
            vec![Some(1), None, None, Some(0), None, None],
            vec![None, Some(0), Some(1), None, None, Some(1)],
        ];
        for ev in patterns {
            let inputs = map.inputs_for_evidence(circuit.arities(), &ev);
            let expect = circuit.probability(&Evidence::from_values(&ev));
            let got = dag.evaluate_output(&inputs);
            assert!((got - expect).abs() < 1e-9, "evidence {ev:?}");
        }
    }

    #[test]
    fn categorical_leaves_lower_correctly() {
        let mut cb = CircuitBuilder::new(vec![3]);
        let leaf = cb.categorical(0, &[0.2, 0.3, 0.5]);
        let circuit = cb.build(leaf).unwrap();
        let (dag, map) = dag_from_circuit(&circuit);
        for v in 0..3 {
            let inputs = map.inputs_for_evidence(circuit.arities(), &[Some(v)]);
            let expect = [0.2, 0.3, 0.5][v];
            assert!((dag.evaluate_output(&inputs) - expect).abs() < 1e-12);
        }
        // Marginalized: sums to 1.
        let inputs = map.inputs_for_evidence(circuit.arities(), &[None]);
        assert!((dag.evaluate_output(&inputs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_kinds_follow_the_paper() {
        let cfg = StructureConfig { num_vars: 4, depth: 2, num_components: 2, seed: 0 };
        let circuit = random_mixture_circuit(&cfg);
        let (dag, _) = dag_from_circuit(&circuit);
        let kinds: std::collections::HashSet<_> = dag.nodes().iter().map(|n| n.kind).collect();
        assert!(kinds.contains(&NodeKind::Sum));
        assert!(kinds.contains(&NodeKind::Product));
        assert!(kinds.contains(&NodeKind::Leaf));
    }
}
