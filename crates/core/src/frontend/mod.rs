//! Kernel frontends: lower each reasoning substrate into the unified DAG
//! (paper Fig. 5).
//!
//! | Kernel | DAG nodes | DAG edges | Inference as DAG execution |
//! |---|---|---|---|
//! | SAT/FOL | literals and logical operators | literal → clause → formula dependencies | satisfiability evaluation / search traversal |
//! | PC | primitive distributions, sum and product nodes | weighted probabilistic factorization | bottom-up probability aggregation |
//! | HMM | per-step transition and emission factors | Markov dependencies across steps | sequential message passing |

pub mod hmm;
pub mod pc;
pub mod sat;
