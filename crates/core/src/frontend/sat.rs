//! CNF → DAG lowering (paper Sec. IV-A (a)).
//!
//! Three layers, exactly as the paper describes: a *literal* node for each
//! literal occurrence (negations become `Not` over the variable input), a
//! *clause* node implementing disjunction (`Max` over 0/1 values), and a
//! *formula* node implementing conjunction (`Mul`). Evaluating the DAG at
//! a 0/1 assignment yields 1.0 iff the assignment satisfies the formula.

use reason_sat::Cnf;

use crate::dag::{Dag, DagBuilder, DagOp, NodeId, NodeKind};

/// Mapping metadata produced by [`dag_from_cnf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatDagMap {
    /// `clause_nodes[i]` is the DAG node of clause `i`.
    pub clause_nodes: Vec<NodeId>,
    /// Input slot of each variable (slot `v` holds variable `v`, 0 or 1).
    pub num_vars: usize,
}

/// Lowers a CNF formula into the unified DAG.
///
/// Input slot `v` carries the 0/1 value of variable `v`. The output node
/// evaluates to 1.0 exactly when the assignment satisfies the formula.
///
/// Empty formulas lower to the constant 1; empty clauses to the constant 0.
///
/// ```
/// use reason_core::dag_from_cnf;
/// use reason_sat::Cnf;
/// let cnf = Cnf::from_clauses(2, vec![vec![1, -2]]);
/// let (dag, _map) = dag_from_cnf(&cnf);
/// assert_eq!(dag.evaluate_output(&[1.0, 1.0]), 1.0);
/// assert_eq!(dag.evaluate_output(&[0.0, 1.0]), 0.0);
/// ```
pub fn dag_from_cnf(cnf: &Cnf) -> (Dag, SatDagMap) {
    let mut b = DagBuilder::new();
    let mut clause_nodes = Vec::with_capacity(cnf.num_clauses());
    // Materialize all variable inputs so slot count covers the universe.
    for v in 0..cnf.num_vars() {
        let _ = b.input(v as u32);
    }
    for clause in cnf.iter() {
        let lits: Vec<NodeId> = clause
            .iter()
            .map(|l| {
                let input = b.input(l.var().index() as u32);
                if l.is_neg() {
                    b.node(DagOp::Not, vec![input], NodeKind::Literal)
                } else {
                    input
                }
            })
            .collect();
        let node = if lits.is_empty() {
            b.constant(0.0)
        } else {
            b.node(DagOp::Max, lits, NodeKind::Clause)
        };
        clause_nodes.push(node);
    }
    let output = if clause_nodes.is_empty() {
        b.constant(1.0)
    } else {
        b.node(DagOp::Mul, clause_nodes.clone(), NodeKind::Formula)
    };
    let dag = b.build(output).expect("CNF lowering emits valid DAGs");
    (dag, SatDagMap { clause_nodes, num_vars: cnf.num_vars() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reason_sat::gen::random_ksat;

    fn assignment_to_inputs(model: &[bool]) -> Vec<f64> {
        model.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()
    }

    #[test]
    fn dag_agrees_with_cnf_eval_exhaustively() {
        let cnf = Cnf::from_clauses(3, vec![vec![1, -2], vec![2, 3], vec![-1, -3]]);
        let (dag, _) = dag_from_cnf(&cnf);
        for bits in 0..8u32 {
            let model: Vec<bool> = (0..3).map(|v| bits >> v & 1 == 1).collect();
            let expect = if cnf.eval(&model) { 1.0 } else { 0.0 };
            assert_eq!(
                dag.evaluate_output(&assignment_to_inputs(&model)),
                expect,
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn random_formulas_agree() {
        for seed in 0..10 {
            let cnf = random_ksat(6, 18, 3, seed);
            let (dag, _) = dag_from_cnf(&cnf);
            for bits in 0..64u32 {
                let model: Vec<bool> = (0..6).map(|v| bits >> v & 1 == 1).collect();
                let expect = if cnf.eval(&model) { 1.0 } else { 0.0 };
                assert_eq!(dag.evaluate_output(&assignment_to_inputs(&model)), expect);
            }
        }
    }

    #[test]
    fn structure_follows_paper_layers() {
        let cnf = Cnf::from_clauses(2, vec![vec![1, -2], vec![2]]);
        let (dag, map) = dag_from_cnf(&cnf);
        assert_eq!(map.clause_nodes.len(), 2);
        // Output is a Formula-kind product over clause nodes.
        let out = dag.node(dag.output());
        assert_eq!(out.kind, NodeKind::Formula);
        assert_eq!(out.children.len(), 2);
    }

    #[test]
    fn shared_literals_are_cse_deduplicated() {
        // !x0 appears in both clauses: one Not node.
        let cnf = Cnf::from_clauses(2, vec![vec![-1, 2], vec![-1, -2]]);
        let (dag, _) = dag_from_cnf(&cnf);
        let nots = dag
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, DagOp::Not) && n.kind == NodeKind::Literal)
            .count();
        assert_eq!(nots, 2, "!x0 shared, !x1 separate");
    }

    #[test]
    fn degenerate_formulas() {
        let empty = Cnf::new(2);
        let (dag, _) = dag_from_cnf(&empty);
        assert_eq!(dag.evaluate_output(&[0.0, 0.0]), 1.0);

        let mut with_empty_clause = Cnf::new(1);
        with_empty_clause.add_clause(reason_sat::Clause::new(vec![]));
        let (dag, _) = dag_from_cnf(&with_empty_clause);
        assert_eq!(dag.evaluate_output(&[1.0]), 0.0);
    }
}
