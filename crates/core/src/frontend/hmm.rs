//! HMM → DAG lowering (paper Sec. IV-A (c)).
//!
//! The HMM is unrolled over `len` time steps: each step becomes a DAG
//! layer holding *emission factors* (weighted indicator mixtures over the
//! step's observation slot) and *transition factors* (products of the
//! previous forward message with transition constants, aggregated by
//! `Add`). The output node computes the sequence likelihood — exactly the
//! forward recursion of Eq. 2 expressed as "sequential message passing on
//! this DAG".

use reason_hmm::Hmm;

use crate::dag::{Dag, DagBuilder, DagOp, NodeId, NodeKind};

/// Mapping metadata produced by [`dag_from_hmm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmmDagMap {
    /// Unrolled sequence length.
    pub len: usize,
    /// Observable symbol count (input slots per step).
    pub num_symbols: usize,
    /// `alpha_nodes[t][s]` = DAG node of the forward message for state `s`
    /// after step `t`.
    pub alpha_nodes: Vec<Vec<NodeId>>,
}

impl HmmDagMap {
    /// The input slot of indicator `[x_t = symbol]`.
    pub fn observation_slot(&self, t: usize, symbol: usize) -> usize {
        t * self.num_symbols + symbol
    }

    /// Builds the DAG input vector for an observation sequence (one-hot
    /// per step). `None` entries marginalize the step.
    pub fn inputs_for_observations(&self, obs: &[Option<usize>]) -> Vec<f64> {
        assert_eq!(obs.len(), self.len, "observation length mismatch");
        let mut v = vec![1.0; self.len * self.num_symbols];
        for (t, o) in obs.iter().enumerate() {
            if let Some(sym) = o {
                for s in 0..self.num_symbols {
                    v[self.observation_slot(t, s)] = if s == *sym { 1.0 } else { 0.0 };
                }
            }
        }
        v
    }
}

/// Unrolls an HMM's forward recursion over `len` steps into the unified
/// DAG. Evaluating at a one-hot observation encoding yields the sequence
/// likelihood `p(x_{1..len})` in linear space.
///
/// # Panics
///
/// Panics if `len == 0`.
///
/// ```
/// use reason_core::dag_from_hmm;
/// use reason_hmm::Hmm;
/// let hmm = Hmm::random(3, 4, 1);
/// let (dag, map) = dag_from_hmm(&hmm, 5);
/// let obs = [0usize, 2, 1, 3, 0];
/// let wrapped: Vec<Option<usize>> = obs.iter().map(|&o| Some(o)).collect();
/// let got = dag.evaluate_output(&map.inputs_for_observations(&wrapped));
/// let expect = hmm.log_likelihood(&obs).exp();
/// assert!((got - expect).abs() < 1e-9);
/// ```
pub fn dag_from_hmm(hmm: &Hmm, len: usize) -> (Dag, HmmDagMap) {
    assert!(len > 0, "sequence length must be positive");
    let s = hmm.num_states();
    let v = hmm.num_symbols();
    let mut b = DagBuilder::new();
    for slot in 0..len * v {
        let _ = b.input(slot as u32);
    }

    // Emission factor for state `state` at step `t`:
    // Σ_sym emit[state][sym] * λ[t, sym].
    let emission = |b: &mut DagBuilder, state: usize, t: usize| -> NodeId {
        let parts: Vec<NodeId> = (0..v)
            .map(|sym| {
                let lambda = b.input((t * v + sym) as u32);
                let w = b.constant(hmm.log_emit()[state][sym].exp());
                b.node(DagOp::Mul, vec![w, lambda], NodeKind::Emission)
            })
            .collect();
        b.node(DagOp::Add, parts, NodeKind::Emission)
    };

    // alpha_0(s) = init(s) * emission(s, 0)
    let mut alpha_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(len);
    let mut alpha: Vec<NodeId> = (0..s)
        .map(|state| {
            let init = b.constant(hmm.log_init()[state].exp());
            let e = emission(&mut b, state, 0);
            b.node(DagOp::Mul, vec![init, e], NodeKind::Transition)
        })
        .collect();
    alpha_nodes.push(alpha.clone());

    for t in 1..len {
        let mut next: Vec<NodeId> = Vec::with_capacity(s);
        for j in 0..s {
            let terms: Vec<NodeId> = (0..s)
                .map(|i| {
                    let w = b.constant(hmm.log_trans()[i][j].exp());
                    b.node(DagOp::Mul, vec![w, alpha[i]], NodeKind::Transition)
                })
                .collect();
            let agg = b.node(DagOp::Add, terms, NodeKind::Transition);
            let e = emission(&mut b, j, t);
            next.push(b.node(DagOp::Mul, vec![agg, e], NodeKind::Transition));
        }
        alpha = next;
        alpha_nodes.push(alpha.clone());
    }

    let output = b.node(DagOp::Add, alpha.clone(), NodeKind::Transition);
    let dag = b.build(output).expect("HMM lowering emits valid DAGs");
    (dag, HmmDagMap { len, num_symbols: v, alpha_nodes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn likelihoods_match_forward_algorithm() {
        let hmm = Hmm::random(3, 4, 7);
        for len in [1usize, 2, 5, 10] {
            let (dag, map) = dag_from_hmm(&hmm, len);
            let obs: Vec<usize> = (0..len).map(|t| t % 4).collect();
            let wrapped: Vec<Option<usize>> = obs.iter().map(|&o| Some(o)).collect();
            let got = dag.evaluate_output(&map.inputs_for_observations(&wrapped));
            let expect = hmm.log_likelihood(&obs).exp();
            assert!((got - expect).abs() < 1e-9, "len {len}");
        }
    }

    #[test]
    fn marginalized_steps_sum_out() {
        let hmm = Hmm::random(2, 3, 1);
        let (dag, map) = dag_from_hmm(&hmm, 3);
        // Fully marginalized: probability 1.
        let all = map.inputs_for_observations(&[None, None, None]);
        assert!((dag.evaluate_output(&all) - 1.0).abs() < 1e-9);
        // Middle step marginalized = sum over its symbols.
        let partial = map.inputs_for_observations(&[Some(0), None, Some(2)]);
        let mut expect = 0.0;
        for sym in 0..3 {
            expect += hmm.log_likelihood(&[0, sym, 2]).exp();
        }
        assert!((dag.evaluate_output(&partial) - expect).abs() < 1e-9);
    }

    #[test]
    fn unrolled_layers_per_step() {
        let hmm = Hmm::random(2, 2, 0);
        let (_, map) = dag_from_hmm(&hmm, 4);
        assert_eq!(map.alpha_nodes.len(), 4);
        assert!(map.alpha_nodes.iter().all(|layer| layer.len() == 2));
    }

    #[test]
    fn node_kinds_cover_factors() {
        let hmm = Hmm::random(2, 2, 3);
        let (dag, _) = dag_from_hmm(&hmm, 3);
        let kinds: std::collections::HashSet<_> = dag.nodes().iter().map(|n| n.kind).collect();
        assert!(kinds.contains(&NodeKind::Transition));
        assert!(kinds.contains(&NodeKind::Emission));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        let hmm = Hmm::random(2, 2, 0);
        let _ = dag_from_hmm(&hmm, 0);
    }
}
