//! Stage 2: adaptive DAG pruning (paper Sec. IV-B), unified reporting.
//!
//! Pruning is semantics-aware, so it runs on the *kernel* representations
//! (where the soundness arguments live) before DAG lowering:
//!
//! * symbolic kernels prune hidden literals, failed literals, and
//!   equivalent literals through the binary implication graph
//!   ([`reason_sat::Preprocessor`]);
//! * probabilistic circuits prune low-flow sum edges with the bounded
//!   log-likelihood-loss criterion ([`reason_pc::prune_by_flow`]);
//! * HMMs prune low-posterior-usage transitions
//!   ([`reason_hmm::prune_transitions`]).
//!
//! A generic DAG-level pass ([`prune_dag_dead_nodes`]) removes dead nodes
//! after any transformation. [`UnifiedPruneReport`] aggregates the
//! memory-reduction metrics the paper reports in Table IV.

use crate::dag::Dag;

/// Aggregated pruning metrics across kernels — the Table IV "Memory ↓"
/// numbers come from these.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UnifiedPruneReport {
    /// Footprint before pruning, bytes.
    pub bytes_before: usize,
    /// Footprint after pruning, bytes.
    pub bytes_after: usize,
    /// Structural elements removed (literals/edges/transitions).
    pub elements_removed: usize,
}

impl UnifiedPruneReport {
    /// Combines per-kernel reports.
    pub fn merge(&self, other: &UnifiedPruneReport) -> UnifiedPruneReport {
        UnifiedPruneReport {
            bytes_before: self.bytes_before + other.bytes_before,
            bytes_after: self.bytes_after + other.bytes_after,
            elements_removed: self.elements_removed + other.elements_removed,
        }
    }

    /// Fraction of memory removed, in `[0, 1]`.
    pub fn memory_reduction(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

impl From<&reason_sat::preprocess::PruneStats> for UnifiedPruneReport {
    fn from(s: &reason_sat::preprocess::PruneStats) -> Self {
        UnifiedPruneReport {
            bytes_before: s.bytes_before,
            bytes_after: s.bytes_after,
            elements_removed: s.hidden_literals
                + s.units_fixed
                + s.pure_literals
                + s.equivalences
                + s.failed_literals,
        }
    }
}

impl From<&reason_pc::PruneReport> for UnifiedPruneReport {
    fn from(r: &reason_pc::PruneReport) -> Self {
        UnifiedPruneReport {
            bytes_before: r.bytes_before,
            bytes_after: r.bytes_after,
            elements_removed: r.edges_removed,
        }
    }
}

impl From<&reason_hmm::TransitionPruneReport> for UnifiedPruneReport {
    fn from(r: &reason_hmm::TransitionPruneReport) -> Self {
        UnifiedPruneReport {
            bytes_before: r.bytes_before,
            bytes_after: r.bytes_after,
            elements_removed: r.removed,
        }
    }
}

/// DAG-level cleanup: removes nodes unreachable from the output. Returns
/// the compacted DAG and a report.
pub fn prune_dag_dead_nodes(dag: &Dag) -> (Dag, UnifiedPruneReport) {
    let before = dag.stats().footprint_bytes;
    let (compacted, dropped) = dag.compact();
    let after = compacted.stats().footprint_bytes;
    (
        compacted,
        UnifiedPruneReport { bytes_before: before, bytes_after: after, elements_removed: dropped },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{DagBuilder, DagOp, NodeKind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reason_pc::{prune_by_flow, random_mixture_circuit, StructureConfig};
    use reason_sat::gen::random_ksat;
    use reason_sat::Preprocessor;

    #[test]
    fn unified_report_from_sat() {
        let cnf = random_ksat(20, 90, 3, 3);
        let result = Preprocessor::new().run(&cnf);
        let report = UnifiedPruneReport::from(&result.stats);
        assert_eq!(report.bytes_before, result.stats.bytes_before);
        assert!((report.memory_reduction() - result.stats.memory_reduction()).abs() < 1e-12);
    }

    #[test]
    fn unified_report_from_pc() {
        let cfg = StructureConfig { num_vars: 6, depth: 3, num_components: 3, seed: 1 };
        let circuit = random_mixture_circuit(&cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let data: Vec<Vec<usize>> =
            (0..40).map(|_| (0..6).map(|_| usize::from(rng.gen_bool(0.8))).collect()).collect();
        let pr = prune_by_flow(&circuit, &data, 0.3);
        let report = UnifiedPruneReport::from(&pr);
        assert!(report.memory_reduction() >= 0.0);
        assert_eq!(report.elements_removed, pr.edges_removed);
    }

    #[test]
    fn merge_accumulates() {
        let a = UnifiedPruneReport { bytes_before: 100, bytes_after: 60, elements_removed: 4 };
        let b = UnifiedPruneReport { bytes_before: 300, bytes_after: 240, elements_removed: 6 };
        let m = a.merge(&b);
        assert_eq!(m.bytes_before, 400);
        assert_eq!(m.bytes_after, 300);
        assert_eq!(m.elements_removed, 10);
        assert!((m.memory_reduction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dead_node_pruning() {
        let mut b = DagBuilder::without_cse();
        let x = b.input(0);
        let _dead1 = b.node(DagOp::Not, vec![x], NodeKind::Generic);
        let _dead2 = b.node(DagOp::Not, vec![x], NodeKind::Generic);
        let live = b.node(DagOp::Not, vec![x], NodeKind::Generic);
        let dag = b.build(live).unwrap();
        let (pruned, report) = prune_dag_dead_nodes(&dag);
        assert_eq!(report.elements_removed, 2);
        assert!(report.memory_reduction() > 0.0);
        assert_eq!(pruned.evaluate_output(&[1.0]), 0.0);
    }
}
