//! `reason-core` — the REASON paper's algorithm layer (Sec. IV).
//!
//! REASON's first insight is that the heterogeneous reasoning kernels of
//! neuro-symbolic AI — SAT/FOL deduction, probabilistic-circuit inference,
//! and HMM message passing — share one computational skeleton: a directed
//! acyclic graph whose nodes are atomic reasoning operations and whose
//! edges are data dependencies (paper Fig. 5). This crate implements that
//! unified representation and the two optimizations stacked on it:
//!
//! * **Stage 1 — DAG representation unification** ([`dag`], [`frontend`]):
//!   a numeric DAG IR with `Input`/`Const`/`Add`/`Mul`/`Max`/`Not` ops,
//!   plus compilers from [`reason_sat::Cnf`] (literal → clause → formula
//!   layers), [`reason_pc::Circuit`] (indicator inputs, weighted sums,
//!   products), and [`reason_hmm::Hmm`] (time-unrolled forward recursion
//!   with transition/emission factors).
//! * **Stage 2 — adaptive DAG pruning** ([`prune`]): the symbolic side
//!   prunes hidden/failed/equivalent literals through the binary
//!   implication graph; the probabilistic side prunes low-flow circuit
//!   edges and low-usage HMM transitions. Both delegate to the substrate
//!   crates and are re-exposed here as one pipeline with unified
//!   reporting (the paper's Table IV metrics).
//! * **Stage 3 — two-input regularization** ([`mod@regularize`]): n-ary nodes
//!   decompose into balanced binary trees so the mapped DAG matches the
//!   two-input tree PEs of the REASON hardware (Sec. V).
//!
//! The [`pipeline`] module chains all three stages behind one facade,
//! [`ReasonPipeline`], producing [`OptimizedKernel`]s ready for
//! `reason-compiler`.
//!
//! # Example
//!
//! ```
//! use reason_core::{ReasonPipeline, KernelSource};
//! use reason_sat::Cnf;
//!
//! let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-1, 3], vec![2, 3]]);
//! let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
//! // The optimized DAG is two-input regular:
//! assert!(kernel.dag.max_fan_in() <= 2);
//! // ...and still evaluates the formula: x0=0, x1=1, x2=1 satisfies it.
//! let out = kernel.dag.evaluate(&kernel.dag.input_vector(&[(0, 0.0), (1, 1.0), (2, 1.0)]));
//! assert_eq!(out[kernel.dag.output().index()], 1.0);
//! ```

pub mod dag;
pub mod frontend;
pub mod pipeline;
pub mod prune;
pub mod regularize;

pub use dag::{Dag, DagBuilder, DagError, DagOp, DagStats, NodeId, NodeKind};
pub use frontend::hmm::{dag_from_hmm, HmmDagMap};
pub use frontend::pc::{dag_from_circuit, PcDagMap};
pub use frontend::sat::{dag_from_cnf, SatDagMap};
pub use pipeline::{KernelSource, OptimizedKernel, PipelineConfig, PipelineStats, ReasonPipeline};
pub use prune::{prune_dag_dead_nodes, UnifiedPruneReport};
pub use regularize::regularize;
