//! The unification → pruning → regularization pipeline (paper Sec. IV).
//!
//! "For each symbolic or probabilistic kernel, the compiler generates an
//! initial DAG, applies adaptive pruning, and then performs two-input
//! regularization to produce a unified balanced representation. These
//! DAGs are constructed offline and used to generate an execution binary
//! that is programmed onto REASON hardware." — this module is that flow,
//! up to the hand-off to `reason-compiler`.

use std::fmt;

use reason_hmm::Hmm;
use reason_pc::Circuit;
use reason_sat::{Cnf, Preprocessor};

use crate::dag::{Dag, DagStats};
use crate::frontend::{hmm::dag_from_hmm, pc::dag_from_circuit, sat::dag_from_cnf};
use crate::prune::UnifiedPruneReport;
use crate::regularize::regularize;

/// Which reasoning family a kernel belongs to (paper Fig. 5 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// SAT / FOL deduction.
    Logical,
    /// Probabilistic-circuit inference.
    Probabilistic,
    /// HMM message passing.
    Sequential,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelKind::Logical => write!(f, "logical"),
            KernelKind::Probabilistic => write!(f, "probabilistic"),
            KernelKind::Sequential => write!(f, "sequential"),
        }
    }
}

/// A kernel handed to the pipeline, optionally with the calibration data
/// that drives adaptive pruning.
#[derive(Debug, Clone, Copy)]
pub enum KernelSource<'a> {
    /// A propositional formula.
    Sat(&'a Cnf),
    /// A probabilistic circuit without pruning data (pruning is skipped).
    Pc(&'a Circuit),
    /// A probabilistic circuit with a calibration dataset; `prune_fraction`
    /// of sum edges (lowest flow first) are dropped.
    PcWithData {
        /// The circuit.
        circuit: &'a Circuit,
        /// Complete assignments used to measure flows.
        data: &'a [Vec<usize>],
        /// Fraction of sum edges to prune, in `[0, 1]`.
        prune_fraction: f64,
    },
    /// An HMM unrolled to `len` steps, without pruning data.
    Hmm {
        /// The model.
        hmm: &'a Hmm,
        /// Unroll length.
        len: usize,
    },
    /// An HMM with calibration sequences; transitions under
    /// `usage_threshold` (share of total expected usage) are dropped.
    HmmWithData {
        /// The model.
        hmm: &'a Hmm,
        /// Unroll length.
        len: usize,
        /// Observation sequences used to measure posterior usage.
        data: &'a [Vec<usize>],
        /// Usage-share threshold for pruning.
        usage_threshold: f64,
    },
}

impl KernelSource<'_> {
    /// The kernel family.
    pub fn kind(&self) -> KernelKind {
        match self {
            KernelSource::Sat(_) => KernelKind::Logical,
            KernelSource::Pc(_) | KernelSource::PcWithData { .. } => KernelKind::Probabilistic,
            KernelSource::Hmm { .. } | KernelSource::HmmWithData { .. } => KernelKind::Sequential,
        }
    }
}

/// Errors raised by [`ReasonPipeline::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Pruning was requested with an empty calibration dataset.
    EmptyCalibrationData,
    /// An HMM unroll length of zero was requested.
    ZeroLength,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptyCalibrationData => {
                write!(f, "adaptive pruning requires a non-empty calibration dataset")
            }
            PipelineError::ZeroLength => write!(f, "HMM unroll length must be positive"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Pipeline configuration (stages can be disabled for ablations —
/// paper Table V measures exactly this).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Enable Stage 2 adaptive pruning.
    pub prune: bool,
    /// Enable Stage 3 two-input regularization.
    pub regularize: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { prune: true, regularize: true }
    }
}

/// End-to-end statistics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStats {
    /// DAG shape before optimization (unpruned, unregularized lowering).
    pub before: DagStats,
    /// DAG shape after the full pipeline.
    pub after: DagStats,
    /// Kernel-level pruning report.
    pub prune: UnifiedPruneReport,
}

impl PipelineStats {
    /// Fraction of kernel memory removed by pruning (Table IV metric).
    pub fn memory_reduction(&self) -> f64 {
        self.prune.memory_reduction()
    }
}

/// The optimized kernel handed to the mapping compiler.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedKernel {
    /// The final DAG (pruned and two-input regular by default).
    pub dag: Dag,
    /// The kernel family.
    pub kind: KernelKind,
    /// Pipeline statistics.
    pub stats: PipelineStats,
}

/// The REASON algorithm-level pipeline facade.
#[derive(Debug, Clone, Default)]
pub struct ReasonPipeline {
    config: PipelineConfig,
}

impl ReasonPipeline {
    /// A pipeline with all stages enabled.
    pub fn new() -> Self {
        ReasonPipeline::default()
    }

    /// A pipeline with an explicit configuration.
    pub fn with_config(config: PipelineConfig) -> Self {
        ReasonPipeline { config }
    }

    /// Runs unification, pruning, and regularization on one kernel.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] on empty calibration data or a zero
    /// unroll length.
    pub fn compile(&self, source: KernelSource<'_>) -> Result<OptimizedKernel, PipelineError> {
        let kind = source.kind();
        let (before_dag, prune_report, optimized_dag) = match source {
            KernelSource::Sat(cnf) => {
                let (before, _) = dag_from_cnf(cnf);
                if self.config.prune {
                    let result = Preprocessor::new().run(cnf);
                    let report = UnifiedPruneReport::from(&result.stats);
                    let (dag, _) = dag_from_cnf(&result.cnf);
                    (before, report, dag)
                } else {
                    let dag = before.clone();
                    (before, UnifiedPruneReport::default(), dag)
                }
            }
            KernelSource::Pc(circuit) => {
                let (before, _) = dag_from_circuit(circuit);
                let dag = before.clone();
                (before, UnifiedPruneReport::default(), dag)
            }
            KernelSource::PcWithData { circuit, data, prune_fraction } => {
                let (before, _) = dag_from_circuit(circuit);
                if self.config.prune {
                    if data.is_empty() {
                        return Err(PipelineError::EmptyCalibrationData);
                    }
                    let pr = reason_pc::prune_by_flow(circuit, data, prune_fraction);
                    let report = UnifiedPruneReport::from(&pr);
                    let (dag, _) = dag_from_circuit(&pr.circuit);
                    (before, report, dag)
                } else {
                    let dag = before.clone();
                    (before, UnifiedPruneReport::default(), dag)
                }
            }
            KernelSource::Hmm { hmm, len } => {
                if len == 0 {
                    return Err(PipelineError::ZeroLength);
                }
                let (before, _) = dag_from_hmm(hmm, len);
                let dag = before.clone();
                (before, UnifiedPruneReport::default(), dag)
            }
            KernelSource::HmmWithData { hmm, len, data, usage_threshold } => {
                if len == 0 {
                    return Err(PipelineError::ZeroLength);
                }
                let (before, _) = dag_from_hmm(hmm, len);
                if self.config.prune {
                    if data.is_empty() {
                        return Err(PipelineError::EmptyCalibrationData);
                    }
                    let pr = reason_hmm::prune_transitions(hmm, data, usage_threshold);
                    let report = UnifiedPruneReport::from(&pr);
                    let (dag, _) = dag_from_hmm(&pr.hmm, len);
                    (before, report, dag)
                } else {
                    let dag = before.clone();
                    (before, UnifiedPruneReport::default(), dag)
                }
            }
        };

        let final_dag =
            if self.config.regularize { regularize(&optimized_dag) } else { optimized_dag };
        Ok(OptimizedKernel {
            kind,
            stats: PipelineStats {
                before: before_dag.stats(),
                after: final_dag.stats(),
                prune: prune_report,
            },
            dag: final_dag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reason_pc::{random_mixture_circuit, StructureConfig};
    use reason_sat::gen::random_ksat;

    #[test]
    fn sat_pipeline_produces_two_input_dag() {
        let cnf = random_ksat(12, 50, 3, 1);
        let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
        assert_eq!(kernel.kind, KernelKind::Logical);
        assert!(kernel.dag.max_fan_in() <= 2);
        kernel.dag.validate().unwrap();
    }

    #[test]
    fn sat_pruning_preserves_models_forward() {
        // Every model of the original satisfies the optimized DAG.
        let cnf = random_ksat(8, 24, 3, 9);
        let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
        for bits in 0..256u32 {
            let model: Vec<bool> = (0..8).map(|v| bits >> v & 1 == 1).collect();
            if cnf.eval(&model) {
                let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
                assert_eq!(kernel.dag.evaluate_output(&inputs), 1.0);
            }
        }
    }

    #[test]
    fn pc_pipeline_with_pruning_shrinks() {
        let cfg = StructureConfig { num_vars: 8, depth: 3, num_components: 4, seed: 5 };
        let circuit = random_mixture_circuit(&cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<Vec<usize>> =
            (0..50).map(|_| (0..8).map(|_| usize::from(rng.gen_bool(0.85))).collect()).collect();
        let kernel = ReasonPipeline::new()
            .compile(KernelSource::PcWithData {
                circuit: &circuit,
                data: &data,
                prune_fraction: 0.3,
            })
            .unwrap();
        assert_eq!(kernel.kind, KernelKind::Probabilistic);
        assert!(kernel.stats.memory_reduction() > 0.0);
        assert!(kernel.dag.max_fan_in() <= 2);
    }

    #[test]
    fn hmm_pipeline_unrolls() {
        let hmm = reason_hmm::Hmm::random(3, 4, 2);
        let kernel =
            ReasonPipeline::new().compile(KernelSource::Hmm { hmm: &hmm, len: 8 }).unwrap();
        assert_eq!(kernel.kind, KernelKind::Sequential);
        assert!(kernel.dag.max_fan_in() <= 2);
        assert!(kernel.dag.num_nodes() > 8 * 3);
    }

    #[test]
    fn disabled_stages_are_skipped() {
        let cnf = random_ksat(10, 40, 3, 2);
        let config = PipelineConfig { prune: false, regularize: false };
        let kernel = ReasonPipeline::with_config(config).compile(KernelSource::Sat(&cnf)).unwrap();
        // Without regularization, clause fan-in of 3 remains.
        assert!(kernel.dag.max_fan_in() >= 3);
        assert_eq!(kernel.stats.prune, UnifiedPruneReport::default());
    }

    #[test]
    fn empty_data_is_an_error() {
        let cfg = StructureConfig::default();
        let circuit = random_mixture_circuit(&cfg);
        let err = ReasonPipeline::new()
            .compile(KernelSource::PcWithData { circuit: &circuit, data: &[], prune_fraction: 0.5 })
            .unwrap_err();
        assert_eq!(err, PipelineError::EmptyCalibrationData);
    }

    #[test]
    fn zero_unroll_is_an_error() {
        let hmm = reason_hmm::Hmm::random(2, 2, 0);
        let err =
            ReasonPipeline::new().compile(KernelSource::Hmm { hmm: &hmm, len: 0 }).unwrap_err();
        assert_eq!(err, PipelineError::ZeroLength);
    }

    #[test]
    fn stats_report_before_and_after() {
        let cnf = random_ksat(10, 45, 3, 3);
        let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
        assert!(kernel.stats.before.nodes > 0);
        assert!(kernel.stats.after.nodes > 0);
        assert!(kernel.stats.after.max_fan_in <= 2);
    }
}
