//! `reason-telemetry`: the unified observability layer for the REASON
//! stack (paper Sec. VII's per-stage attribution, made a first-class
//! subsystem).
//!
//! Five pieces, all dependency-free:
//!
//! * a [`MetricsRegistry`] of named counters, gauges, and log-bucketed
//!   histograms with exact deterministic p50/p90/p99 extraction
//!   ([`metrics`]);
//! * hierarchical spans ([`Tracer`] / [`SpanGuard`]) driven by an
//!   injectable [`Clock`] — the wall clock in production, a modeled
//!   [`VirtualClock`] in sweeps, so traces are byte-deterministic per
//!   seed ([`trace`]);
//! * two exporters — Prometheus-style text exposition and Chrome
//!   `trace_event` JSON loadable in Perfetto ([`export`]);
//! * flame-graph profiles folded from span forests — collapsed-stack
//!   text, self/total hotspot tables, differential profiles, and
//!   tail-latency exemplars ([`profile`]);
//! * declarative SLOs over registry metrics with multi-window
//!   burn-rate alerting on the injectable clock ([`slo`]).
//!
//! The serving stack (`reason-pc` compile phases, `reason-serve`
//! store/router/cluster, `reason-system` executor) takes an optional
//! `Arc<Telemetry>`; when attached, a query's whole life — admit →
//! route → store probe → (re)compile → batched arena eval — lands in
//! one connected trace tagged with shard and tenant.
//!
//! ```
//! use reason_telemetry::{Telemetry, VirtualClock};
//!
//! let clock = VirtualClock::shared();
//! let tel = Telemetry::with_clock(clock.clone());
//! let hits = tel.registry.counter("store_hits_total", &[("shard", "0")]);
//! hits.inc();
//! let span = tel.tracer.span_on(0, "serve.query", &[("tenant", "kb-a")]);
//! clock.set(0.002);
//! span.end();
//!
//! let text = reason_telemetry::prometheus_text(&tel.registry.snapshot());
//! assert!(text.contains("store_hits_total{shard=\"0\"} 1"));
//! let trace = reason_telemetry::chrome_trace_json(&tel.tracer.finished());
//! assert!(trace.contains("\"name\":\"serve.query\""));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod slo;
pub mod trace;

use std::sync::Arc;

pub use clock::{Clock, VirtualClock, WallClock};
pub use export::{chrome_trace_json, lint_prometheus, prometheus_text};
pub use metrics::{
    bucket_lower, bucket_upper, valid_metric_name, Counter, Gauge, HistBucket, Histogram,
    HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry, DEFAULT_SERIES_LIMIT,
    DROPPED_SERIES_METRIC,
};
pub use profile::{exemplars, Exemplar, Hotspot, Profile, StackDelta, StackWeight};
pub use slo::{Objective, SloAlert, SloMonitor, SloSpec};
pub use trace::{is_well_formed_forest, SpanGuard, SpanRecord, Tracer};

/// The bundle instrumented components share: one registry plus one
/// tracer on a common clock. Pass it around as `Arc<Telemetry>`.
#[derive(Debug)]
pub struct Telemetry {
    /// The metrics registry.
    pub registry: MetricsRegistry,
    /// The span collector.
    pub tracer: Tracer,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::wall()
    }
}

impl Telemetry {
    /// A telemetry bundle on the monotonic wall clock (production).
    pub fn wall() -> Self {
        Telemetry::with_clock(Arc::new(WallClock::new()))
    }

    /// A telemetry bundle on an injected clock (modeled sweeps inject a
    /// [`VirtualClock`] for byte-deterministic traces).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Telemetry { registry: MetricsRegistry::new(), tracer: Tracer::new(clock) }
    }

    /// A shareable wall-clock bundle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Telemetry::wall())
    }

    /// The clock's current time in seconds.
    pub fn now_s(&self) -> f64 {
        self.tracer.now_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_shares_one_clock() {
        let clock = VirtualClock::shared();
        let tel = Telemetry::with_clock(clock.clone());
        clock.set(4.5);
        assert_eq!(tel.now_s(), 4.5);
        let span = tel.tracer.span("s");
        clock.set(5.0);
        span.end();
        let spans = tel.tracer.finished();
        assert_eq!((spans[0].start_s, spans[0].end_s), (4.5, 5.0));
    }
}
