//! Exporters: Prometheus-style text exposition and Chrome
//! `trace_event` JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! Both exporters render from the deterministic snapshot orders
//! ([`MetricsRegistry::snapshot`](crate::MetricsRegistry::snapshot),
//! [`Tracer::finished`](crate::Tracer::finished)) with a fixed float
//! format, so equal inputs always produce byte-identical output.

use std::fmt::Write as _;

use crate::metrics::{MetricSnapshot, MetricValue};
use crate::trace::SpanRecord;

/// Shortest round-trip rendering of a float (`1.0`, `0.125`, `1e-7`);
/// non-finite values use the Prometheus spellings.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

fn fmt_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", inner.join(","))
}

/// Escapes a label value for the text exposition. Beyond the three
/// escapes the Prometheus format defines (`\\`, `\"`, `\n`), every
/// other control character is rendered as a deterministic `\uXXXX`
/// spelling — raw control bytes would corrupt line framing and fail
/// [`lint_prometheus`]. Non-ASCII text passes through as UTF-8, which
/// the format allows.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders metric snapshots in the Prometheus text exposition format:
/// a `# TYPE` comment per metric family, then one sample line per
/// labeled series; histograms expand into cumulative `_bucket{le=...}`
/// lines plus `_sum` and `_count`.
pub fn prometheus_text(metrics: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_family: Option<(&str, &str)> = None;
    for m in metrics {
        let kind = match &m.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        if last_family != Some((m.name.as_str(), kind)) {
            let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
            last_family = Some((m.name.as_str(), kind));
        }
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, fmt_labels(&m.labels), v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, fmt_labels(&m.labels), fmt_f64(*v));
            }
            MetricValue::Histogram(h) => {
                // Cumulative counts keyed by upper bound; buckets
                // sharing a bound (negative + zero both end at 0.0)
                // merge into one line, and a trailing `+Inf` line always
                // closes the family.
                let mut cumulative = 0u64;
                let mut lines: Vec<(f64, u64)> = Vec::new();
                for b in &h.buckets {
                    cumulative += b.count;
                    match lines.last_mut() {
                        Some((le, c)) if *le == b.upper => *c = cumulative,
                        _ => lines.push((b.upper, cumulative)),
                    }
                }
                if lines.last().map(|(le, _)| *le) != Some(f64::INFINITY) {
                    lines.push((f64::INFINITY, h.count));
                }
                for (le, c) in lines {
                    let mut labels = m.labels.clone();
                    labels.push(("le".to_string(), fmt_f64(le)));
                    let _ = writeln!(out, "{}_bucket{} {}", m.name, fmt_labels(&labels), c);
                }
                let _ = writeln!(out, "{}_sum{} {}", m.name, fmt_labels(&m.labels), fmt_f64(h.sum));
                let _ = writeln!(out, "{}_count{} {}", m.name, fmt_labels(&m.labels), h.count);
            }
        }
    }
    out
}

/// Validates a Prometheus text exposition: every line is either a
/// `# TYPE name counter|gauge|histogram` comment or a
/// `name{key="value",...} number` sample whose name was declared by a
/// preceding `# TYPE` line (modulo `_bucket`/`_sum`/`_count`
/// suffixes). Returns the first offense. This is the format-lint CI
/// runs over every exposition the stack emits.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    use crate::metrics::valid_metric_name;
    let mut declared: Vec<String> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", ln + 1));
        if line.is_empty() {
            continue;
        }
        if line.chars().any(|c| c.is_control()) {
            return err("raw control character");
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return err("malformed TYPE comment");
            };
            if !valid_metric_name(name) {
                return err("invalid metric name in TYPE comment");
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return err("unknown metric kind");
            }
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal
        }
        // Sample line: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return err("sample line has no value"),
        };
        if value.parse::<f64>().is_err()
            && !matches!(value, "+Inf" | "-Inf" | "NaN")
            && value.parse::<u64>().is_err()
        {
            return err("unparsable sample value");
        }
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                let Some(body) = labels.strip_suffix('}') else {
                    return err("unterminated label set");
                };
                for pair in split_label_pairs(body) {
                    let Some((k, v)) = pair.split_once('=') else {
                        return err("label without '='");
                    };
                    if !valid_metric_name(k) {
                        return err("invalid label key");
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return err("unquoted label value");
                    }
                }
                name
            }
            None => series,
        };
        if !valid_metric_name(name) {
            return err("invalid metric name");
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !declared.iter().any(|d| d == name || d == family) {
            return err("sample not declared by a TYPE comment");
        }
    }
    Ok(())
}

/// Splits a label body on commas that are outside quoted values.
fn split_label_pairs(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if in_quotes && !escaped => {
                escaped = true;
                cur.push(c);
            }
            '"' if !escaped => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            _ => {
                escaped = false;
                cur.push(c);
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with a fixed 3-decimal format — Chrome's `ts`/`dur`
/// unit, deterministic to the last byte.
fn fmt_us(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e6)
}

/// Renders spans as Chrome `trace_event` JSON (one complete `"ph":"X"`
/// event per span), loadable in Perfetto or `chrome://tracing`. Tracks
/// map to `tid`s; labels land in `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"reason\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            json_escape(&s.name),
            fmt_us(s.start_s),
            fmt_us(s.end_s - s.start_s),
            s.track
        );
        out.push_str(",\"args\":{");
        for (j, (k, v)) in s.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::trace::Tracer;
    use crate::VirtualClock;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("queries_total", &[("route", "exact")]).add(3);
        reg.counter("queries_total", &[("route", "approx")]).add(1);
        reg.gauge("store_bytes", &[]).set(4096.0);
        let h = reg.histogram("latency_modeled", &[("shard", "0")]);
        h.record(1e-3);
        h.record(2e-3);
        reg
    }

    #[test]
    fn prometheus_exposition_passes_its_own_lint() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE queries_total counter"));
        assert!(text.contains("queries_total{route=\"exact\"} 3"));
        assert!(text.contains("latency_modeled_count{shard=\"0\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
        lint_prometheus(&text).expect("exposition is well-formed");
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        assert!(lint_prometheus("queries_total 3\n").is_err(), "undeclared sample");
        assert!(lint_prometheus("# TYPE x widget\nx 1\n").is_err(), "unknown kind");
        assert!(
            lint_prometheus("# TYPE ok counter\nok{k=unquoted} 1\n").is_err(),
            "unquoted label value"
        );
        assert!(lint_prometheus("# TYPE ok counter\nok notanumber\n").is_err());
        assert!(lint_prometheus("# TYPE ok counter\nok{a=\"b\"} 1\n").is_ok());
    }

    #[test]
    fn exposition_is_deterministic() {
        let a = prometheus_text(&sample_registry().snapshot());
        let b = prometheus_text(&sample_registry().snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn chrome_trace_renders_labeled_events() {
        let clock = VirtualClock::shared();
        let tracer = Tracer::new(clock.clone());
        let g = tracer.span_on(2, "query", &[("shard", "2"), ("tenant", "kb-a")]);
        clock.set(0.0015);
        g.end();
        let json = chrome_trace_json(&tracer.finished());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"dur\":1500.000"));
        assert!(json.contains("\"tenant\":\"kb-a\""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn hostile_label_values_stay_lintable() {
        let reg = MetricsRegistry::new();
        // Control characters, quotes, backslashes, and non-ASCII — the
        // kind of tenant names an adversarial client sends.
        reg.counter("queries_total", &[("tenant", "a\r\nb\tc\u{7}d")]).inc();
        reg.counter("queries_total", &[("tenant", "q\"uo\\te")]).inc();
        reg.counter("queries_total", &[("tenant", "héllo→世界")]).inc();
        let text = prometheus_text(&reg.snapshot());
        lint_prometheus(&text).unwrap_or_else(|e| panic!("unlintable exposition: {e}\n{text}"));
        assert!(!text.chars().any(|c| c.is_control() && c != '\n'), "no raw control bytes");
        assert!(text.contains("a\\r\\nb\\tc\\u0007d"));
        assert!(text.contains("q\\\"uo\\\\te"));
        assert!(text.contains("héllo→世界"), "UTF-8 passes through unescaped");
    }

    #[test]
    fn lint_rejects_raw_control_characters() {
        assert!(lint_prometheus("# TYPE ok counter\nok{a=\"x\ry\"} 1\n").is_err());
        assert!(lint_prometheus("# TYPE ok counter\nok{a=\"x\u{1}y\"} 1\n").is_err());
    }

    #[test]
    fn chrome_trace_escapes_hostile_names_and_labels() {
        let clock = VirtualClock::shared();
        let tracer = Tracer::new(clock.clone());
        let g = tracer.span_on(0, "bad\"name\\with\nctrl\u{1}", &[("k\t", "v\r→世界")]);
        clock.set(1e-3);
        g.end();
        let json = chrome_trace_json(&tracer.finished());
        // Raw control bytes would make the JSON unparsable; everything
        // below 0x20 must come out escaped.
        assert!(!json.chars().any(|c| c.is_control() && c != '\n'), "raw control byte in {json:?}");
        assert!(json.contains("bad\\\"name\\\\with\\nctrl\\u0001"));
        assert!(json.contains("\"k\\t\":\"v\\r→世界\""));
        // Quotes balance after unescaping — a cheap structural check
        // that escaping did not break string framing.
        let unescaped_quotes =
            json.as_bytes().windows(2).filter(|w| w[0] != b'\\' && w[1] == b'"').count();
        assert_eq!(unescaped_quotes % 2, 0, "unescaped quotes pair up");
    }

    #[test]
    fn chrome_trace_is_deterministic_per_seed() {
        let render = || {
            let clock = VirtualClock::shared();
            let tracer = Tracer::new(clock.clone());
            let root = tracer.span_on(0, "root", &[]);
            clock.set(0.25);
            let child = tracer.span_on(0, "child", &[("k", "v")]);
            clock.set(0.5);
            child.end();
            root.end();
            chrome_trace_json(&tracer.finished())
        };
        assert_eq!(render(), render());
    }
}
