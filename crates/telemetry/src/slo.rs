//! Declarative service-level objectives with multi-window burn-rate
//! alerting, evaluated over registry metrics on the injectable clock.
//!
//! An [`SloSpec`] names an [`Objective`] — an error fraction read from
//! the [`MetricsRegistry`](crate::MetricsRegistry) — plus an error
//! *budget* (the tolerable bad fraction) and a fast/slow window pair.
//! An [`SloMonitor`] samples the registry at explicit (usually virtual)
//! timestamps, keeps a cumulative `(t, bad, total)` history per spec,
//! and computes the **burn rate** of each window: the windowed bad
//! fraction divided by the budget. An alert fires when *both* windows
//! burn past the spec's threshold — the classic multi-window guard that
//! keeps one bad second from paging while still catching sustained
//! burns fast — and resolves when the fast window recovers. A window
//! reads `0` until the observation history spans it, so a freshly
//! installed monitor cannot page off its first few samples.
//!
//! Everything the monitor produces is itself telemetry: burn rates land
//! in `slo_burn_rate_fast`/`slo_burn_rate_slow` gauges, firings count in
//! `slo_alerts_total`, the in-alert state shows in `slo_alert_active`,
//! and every resolved alert becomes an `slo.alert` span on the
//! monitor's dedicated track, so a sweep's alert history exports
//! through the same Chrome-trace / Prometheus paths as the workload
//! itself — byte-deterministic per seed.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::metrics::{Counter, Gauge, MetricSnapshot, MetricValue};
use crate::Telemetry;

/// An error fraction read from registry metrics. Both variants reduce
/// to cumulative `(bad, total)` event counts, so burn-rate windows
/// difference them like any Prometheus `increase()`.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// `bad / total` over named counters, each side summed across every
    /// label set of every listed name. `bad` should be a semantic
    /// subset of `total` (e.g. rejects over rejects + admissions).
    CounterRatio {
        /// Counter names whose sum is the bad-event count.
        bad: Vec<String>,
        /// Counter names whose sum is the total-event count.
        total: Vec<String>,
    },
    /// The fraction of histogram samples at or above a latency
    /// threshold, summed across every label set of the named histogram.
    /// A sample counts as bad when its bucket's lower bound is
    /// `>= threshold_s` — deterministic, and conservative by at most
    /// one bucket's width (samples above the threshold inside a
    /// straddling bucket are not counted).
    LatencyAbove {
        /// The histogram metric name.
        histogram: String,
        /// The latency target in seconds.
        threshold_s: f64,
    },
}

impl Objective {
    /// The cumulative `(bad, total)` counts in a registry snapshot.
    pub fn measure(&self, snapshot: &[MetricSnapshot]) -> (u64, u64) {
        match self {
            Objective::CounterRatio { bad, total } => {
                let sum_of = |names: &[String]| -> u64 {
                    snapshot
                        .iter()
                        .filter(|m| names.iter().any(|n| n == &m.name))
                        .filter_map(|m| match &m.value {
                            MetricValue::Counter(c) => Some(*c),
                            _ => None,
                        })
                        .sum()
                };
                (sum_of(bad), sum_of(total))
            }
            Objective::LatencyAbove { histogram, threshold_s } => {
                let mut bad = 0u64;
                let mut total = 0u64;
                for m in snapshot.iter().filter(|m| &m.name == histogram) {
                    if let MetricValue::Histogram(h) = &m.value {
                        total += h.count;
                        bad += h
                            .buckets
                            .iter()
                            .filter(|b| b.lower >= *threshold_s)
                            .map(|b| b.count)
                            .sum::<u64>();
                    }
                }
                (bad, total)
            }
        }
    }
}

/// One service-level objective: what to measure, how much failure the
/// budget tolerates, and how aggressively to alert on budget burn.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name — the `slo` label on every derived metric, span,
    /// and alert. Must be a valid metric label value.
    pub name: String,
    /// The error fraction under objective.
    pub objective: Objective,
    /// The tolerable bad fraction (e.g. `0.01` = 99% target). Must be
    /// positive.
    pub budget: f64,
    /// The fast alerting window in clock seconds (must not exceed the
    /// slow window).
    pub fast_window_s: f64,
    /// The slow alerting window in clock seconds.
    pub slow_window_s: f64,
    /// Fire when both windows burn at `>= burn_threshold` times the
    /// budgeted rate; resolve when the fast window drops back below.
    pub burn_threshold: f64,
}

/// One deterministic alert record: when the burn fired, when (if) it
/// resolved, and the worst burn rates seen while active.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// The [`SloSpec::name`] that fired.
    pub slo: String,
    /// Fire time in clock seconds.
    pub fired_at_s: f64,
    /// Resolve time, or `None` while still active.
    pub resolved_at_s: Option<f64>,
    /// The highest fast-window burn rate observed while active.
    pub peak_burn_fast: f64,
    /// The highest slow-window burn rate observed while active.
    pub peak_burn_slow: f64,
}

/// Cumulative observations of one spec plus its derived metric handles.
#[derive(Debug)]
struct SpecState {
    spec: SloSpec,
    /// `(t, bad, total)` cumulative samples, oldest first. Pruned to
    /// the slow window plus one anchor entry at or before its edge.
    history: VecDeque<(f64, u64, u64)>,
    /// Index into `SloMonitor::alerts` while an alert is active.
    active: Option<usize>,
    burn_fast: Gauge,
    burn_slow: Gauge,
    alerts_total: Counter,
    alert_active: Gauge,
}

/// The windowed burn rate: the bad fraction accrued since the newest
/// history entry at or before `t - window`, divided by the budget.
///
/// A window the history does not yet span reads `0.0`: until `window`
/// seconds of observations exist, no *sustained* burn can be
/// witnessed, so a young monitor stays quiet instead of letting both
/// windows degenerate to noisy "since start" ratios (which would
/// defeat the multi-window guard exactly when samples are fewest).
fn window_burn(history: &VecDeque<(f64, u64, u64)>, t: f64, window: f64, budget: f64) -> f64 {
    let Some(&(_, cur_bad, cur_total)) = history.back() else { return 0.0 };
    let edge = t - window;
    let Some(anchor) = history.iter().rev().find(|(ts, _, _)| *ts <= edge) else {
        return 0.0;
    };
    let d_bad = cur_bad.saturating_sub(anchor.1);
    let d_total = cur_total.saturating_sub(anchor.2);
    if d_total == 0 {
        return 0.0;
    }
    (d_bad as f64 / d_total as f64) / budget
}

/// Evaluates a set of [`SloSpec`]s against a [`Telemetry`] registry at
/// explicit timestamps, recording burn rates, alert state, and resolved
/// alerts back into the same telemetry.
#[derive(Debug)]
pub struct SloMonitor {
    telemetry: Arc<Telemetry>,
    /// The span track `slo.alert` records land on. Pick a track no
    /// workload writes to (the serve cluster reserves `u64::MAX`).
    track: u64,
    specs: Vec<SpecState>,
    alerts: Vec<SloAlert>,
}

impl SloMonitor {
    /// A monitor with no objectives, recording alert spans on `track`.
    pub fn new(telemetry: Arc<Telemetry>, track: u64) -> Self {
        SloMonitor { telemetry, track, specs: Vec::new(), alerts: Vec::new() }
    }

    /// Installs an objective. Its `slo_*` metrics are registered
    /// immediately, so a spec that never burns still exports a full —
    /// and therefore deterministic — metric set.
    ///
    /// # Panics
    ///
    /// On a non-positive budget or threshold, or a fast window longer
    /// than the slow window.
    pub fn add(&mut self, spec: SloSpec) {
        assert!(spec.budget > 0.0, "SLO {:?}: budget must be positive", spec.name);
        assert!(spec.burn_threshold > 0.0, "SLO {:?}: threshold must be positive", spec.name);
        assert!(
            spec.fast_window_s > 0.0 && spec.fast_window_s <= spec.slow_window_s,
            "SLO {:?}: windows must satisfy 0 < fast <= slow",
            spec.name
        );
        let reg = &self.telemetry.registry;
        let labels = [("slo", spec.name.as_str())];
        let state = SpecState {
            burn_fast: reg.gauge("slo_burn_rate_fast", &labels),
            burn_slow: reg.gauge("slo_burn_rate_slow", &labels),
            alerts_total: reg.counter("slo_alerts_total", &labels),
            alert_active: reg.gauge("slo_alert_active", &labels),
            spec,
            history: VecDeque::new(),
            active: None,
        };
        self.specs.push(state);
    }

    /// The installed specs.
    pub fn specs(&self) -> impl Iterator<Item = &SloSpec> {
        self.specs.iter().map(|s| &s.spec)
    }

    /// Samples the registry at time `t` (nondecreasing across calls)
    /// and updates every spec's burn rates and alert state.
    pub fn observe(&mut self, t: f64) {
        let snapshot = self.telemetry.registry.snapshot();
        for st in &mut self.specs {
            let (bad, total) = st.spec.objective.measure(&snapshot);
            st.history.push_back((t, bad, total));
            // Keep one anchor at or before the slow-window edge; drop
            // anything older.
            let edge = t - st.spec.slow_window_s;
            while st.history.len() >= 2 && st.history[1].0 <= edge {
                st.history.pop_front();
            }
            let fast = window_burn(&st.history, t, st.spec.fast_window_s, st.spec.budget);
            let slow = window_burn(&st.history, t, st.spec.slow_window_s, st.spec.budget);
            st.burn_fast.set(fast);
            st.burn_slow.set(slow);
            match st.active {
                None if fast >= st.spec.burn_threshold && slow >= st.spec.burn_threshold => {
                    st.active = Some(self.alerts.len());
                    st.alerts_total.inc();
                    st.alert_active.set(1.0);
                    self.alerts.push(SloAlert {
                        slo: st.spec.name.clone(),
                        fired_at_s: t,
                        resolved_at_s: None,
                        peak_burn_fast: fast,
                        peak_burn_slow: slow,
                    });
                }
                Some(idx) if fast < st.spec.burn_threshold => {
                    let alert = &mut self.alerts[idx];
                    alert.resolved_at_s = Some(t);
                    st.active = None;
                    st.alert_active.set(0.0);
                    self.telemetry.tracer.record_span(
                        self.track,
                        "slo.alert",
                        &[("slo", &st.spec.name)],
                        alert.fired_at_s,
                        t,
                    );
                }
                Some(idx) => {
                    let alert = &mut self.alerts[idx];
                    alert.peak_burn_fast = alert.peak_burn_fast.max(fast);
                    alert.peak_burn_slow = alert.peak_burn_slow.max(slow);
                }
                None => {}
            }
        }
    }

    /// Samples at the telemetry clock's current time.
    pub fn observe_now(&mut self) {
        self.observe(self.telemetry.now_s());
    }

    /// Resolves every still-active alert at time `t` (end of sweep),
    /// recording their spans. Idempotent.
    pub fn finish(&mut self, t: f64) {
        for st in &mut self.specs {
            if let Some(idx) = st.active.take() {
                let alert = &mut self.alerts[idx];
                let end = t.max(alert.fired_at_s);
                alert.resolved_at_s = Some(end);
                st.alert_active.set(0.0);
                self.telemetry.tracer.record_span(
                    self.track,
                    "slo.alert",
                    &[("slo", &st.spec.name)],
                    alert.fired_at_s,
                    end,
                );
            }
        }
    }

    /// Every alert fired so far, in fire order. Active alerts have
    /// `resolved_at_s == None` until [`SloMonitor::finish`] runs.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::trace::is_well_formed_forest;
    use crate::Telemetry;

    fn availability_spec() -> SloSpec {
        SloSpec {
            name: "availability".into(),
            objective: Objective::CounterRatio {
                bad: vec!["rejects_total".into()],
                total: vec!["rejects_total".into(), "admissions_total".into()],
            },
            budget: 0.01,
            fast_window_s: 2.0,
            slow_window_s: 10.0,
            burn_threshold: 10.0,
        }
    }

    fn monitor() -> (Arc<Telemetry>, SloMonitor) {
        let telemetry = Arc::new(Telemetry::with_clock(VirtualClock::shared()));
        let monitor = SloMonitor::new(telemetry.clone(), u64::MAX);
        (telemetry, monitor)
    }

    #[test]
    fn counter_ratio_sums_across_label_sets() {
        let telemetry = Telemetry::wall();
        telemetry.registry.counter("rejects_total", &[("shard", "0")]).add(3);
        telemetry.registry.counter("rejects_total", &[("shard", "1")]).add(2);
        telemetry.registry.counter("admissions_total", &[]).add(95);
        let obj = availability_spec().objective;
        assert_eq!(obj.measure(&telemetry.registry.snapshot()), (5, 100));
    }

    #[test]
    fn latency_objective_counts_slow_buckets() {
        let telemetry = Telemetry::wall();
        let h = telemetry.registry.histogram("latency_seconds", &[]);
        for _ in 0..90 {
            h.record(1e-4);
        }
        for _ in 0..10 {
            h.record(2.0);
        }
        let obj = Objective::LatencyAbove { histogram: "latency_seconds".into(), threshold_s: 1.0 };
        assert_eq!(obj.measure(&telemetry.registry.snapshot()), (10, 100));
        let none =
            Objective::LatencyAbove { histogram: "latency_seconds".into(), threshold_s: 4.0 };
        assert_eq!(none.measure(&telemetry.registry.snapshot()), (0, 100));
    }

    #[test]
    fn quiet_spec_exports_metrics_without_alerting() {
        let (telemetry, mut monitor) = monitor();
        monitor.add(availability_spec());
        let admissions = telemetry.registry.counter("admissions_total", &[]);
        for tick in 0..20 {
            admissions.add(10);
            monitor.observe(tick as f64);
        }
        monitor.finish(20.0);
        assert!(monitor.alerts().is_empty());
        let names: Vec<String> =
            telemetry.registry.snapshot().iter().map(|m| m.name.clone()).collect();
        for expected in
            ["slo_alert_active", "slo_alerts_total", "slo_burn_rate_fast", "slo_burn_rate_slow"]
        {
            assert!(names.iter().any(|n| n == expected), "missing {expected}: {names:?}");
        }
        assert_eq!(
            telemetry.registry.counter("slo_alerts_total", &[("slo", "availability")]).get(),
            0
        );
        assert!(telemetry.tracer.finished().is_empty(), "no alert spans when quiet");
    }

    #[test]
    fn sustained_burn_fires_then_resolves() {
        let (telemetry, mut monitor) = monitor();
        monitor.add(availability_spec());
        let admissions = telemetry.registry.counter("admissions_total", &[]);
        let rejects = telemetry.registry.counter("rejects_total", &[]);
        // Healthy warm-up: well under budget.
        for tick in 0..5 {
            admissions.add(10);
            monitor.observe(tick as f64);
        }
        assert!(monitor.alerts().is_empty());
        // Outage: half of traffic rejected — burn 50x budget.
        let mut fired_at = None;
        for tick in 5..12 {
            admissions.add(5);
            rejects.add(5);
            monitor.observe(tick as f64);
            if fired_at.is_none() && !monitor.alerts().is_empty() {
                fired_at = Some(tick as f64);
            }
        }
        let fired_at = fired_at.expect("sustained burn fires");
        assert_eq!(monitor.alerts().len(), 1, "one alert for one outage");
        assert!(monitor.alerts()[0].resolved_at_s.is_none(), "still burning");
        assert!(monitor.alerts()[0].peak_burn_fast >= 10.0);
        // Recovery: fast window drains and the alert resolves.
        let mut resolved_at = None;
        for tick in 12..30 {
            admissions.add(10);
            monitor.observe(tick as f64);
            if resolved_at.is_none() && monitor.alerts()[0].resolved_at_s.is_some() {
                resolved_at = Some(tick as f64);
            }
        }
        let resolved_at = resolved_at.expect("recovery resolves the alert");
        assert!(resolved_at > fired_at);
        // The alert is telemetry: a counter tick and a span.
        assert_eq!(
            telemetry.registry.counter("slo_alerts_total", &[("slo", "availability")]).get(),
            1
        );
        assert_eq!(
            telemetry.registry.gauge("slo_alert_active", &[("slo", "availability")]).get(),
            0.0
        );
        let spans = telemetry.tracer.finished();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "slo.alert");
        assert_eq!(spans[0].track, u64::MAX);
        assert_eq!((spans[0].start_s, spans[0].end_s), (fired_at, resolved_at));
        assert!(is_well_formed_forest(&spans));
    }

    #[test]
    fn short_spike_does_not_page() {
        let (telemetry, mut monitor) = monitor();
        monitor.add(availability_spec());
        let admissions = telemetry.registry.counter("admissions_total", &[]);
        let rejects = telemetry.registry.counter("rejects_total", &[]);
        // A long healthy history, one bad tick, healthy again: the fast
        // window burns but the slow window absorbs it.
        for tick in 0..40 {
            if tick == 20 {
                rejects.add(5);
                admissions.add(5);
            } else {
                admissions.add(10);
            }
            monitor.observe(tick as f64);
        }
        monitor.finish(40.0);
        assert!(
            monitor.alerts().is_empty(),
            "multi-window gating suppresses one-tick spikes: {:?}",
            monitor.alerts()
        );
    }

    #[test]
    fn finish_resolves_active_alerts() {
        let (telemetry, mut monitor) = monitor();
        monitor.add(availability_spec());
        let rejects = telemetry.registry.counter("rejects_total", &[]);
        // Past the 10 s slow window, an all-reject stream is burning in
        // both windows and fires; the sweep then ends mid-alert.
        for tick in 0..13 {
            rejects.add(10);
            monitor.observe(tick as f64);
        }
        assert_eq!(monitor.alerts().len(), 1);
        assert!(monitor.alerts()[0].resolved_at_s.is_none());
        monitor.finish(13.0);
        monitor.finish(13.0); // idempotent
        assert_eq!(monitor.alerts()[0].resolved_at_s, Some(13.0));
        assert_eq!(telemetry.tracer.finished().len(), 1, "one span despite double finish");
    }

    #[test]
    fn young_windows_stay_quiet_until_spanned() {
        let (telemetry, mut monitor) = monitor();
        monitor.add(availability_spec());
        let rejects = telemetry.registry.counter("rejects_total", &[]);
        // 100% rejects, but the 10 s slow window is not yet covered by
        // history: no sustained burn is witnessable, so no page.
        for tick in 0..9 {
            rejects.add(10);
            monitor.observe(tick as f64);
        }
        assert!(monitor.alerts().is_empty(), "{:?}", monitor.alerts());
        // One more observation past the slow-window span and the same
        // stream fires immediately.
        rejects.add(10);
        monitor.observe(10.5);
        assert_eq!(monitor.alerts().len(), 1);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_is_rejected() {
        let (_, mut monitor) = monitor();
        let mut spec = availability_spec();
        spec.budget = 0.0;
        monitor.add(spec);
    }
}
