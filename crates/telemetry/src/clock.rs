//! Injectable time sources.
//!
//! Everything in `reason-telemetry` reads time through the [`Clock`]
//! trait, never through `Instant::now()` directly. Production code
//! injects a [`WallClock`]; modeled sweeps (the `reason-eval trace`
//! replay, the cluster's virtual-time admission loop) inject a
//! [`VirtualClock`] they advance themselves, so every timestamp in a
//! trace is a pure function of the seed and the export is
//! byte-deterministic.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic time source reporting seconds since an arbitrary epoch.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current time in seconds. Must be monotone non-decreasing.
    fn now_s(&self) -> f64;
}

/// Real wall-clock time, anchored at construction so early spans start
/// near zero.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock { epoch: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// A modeled clock that only moves when told to. Stores the current
/// time as `f64` bits in an atomic, so any number of threads can read
/// it while a driver advances it; in the deterministic sweeps a single
/// driver owns all writes.
#[derive(Debug, Default)]
pub struct VirtualClock {
    bits: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at `t = 0`.
    pub fn new() -> Self {
        VirtualClock { bits: AtomicU64::new(0f64.to_bits()) }
    }

    /// A shareable virtual clock starting at `t = 0`.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Jumps the clock to an absolute time. Never rewinds: setting a
    /// time earlier than the current reading is a no-op, preserving the
    /// [`Clock`] monotonicity contract under out-of-order drivers.
    pub fn set(&self, t_s: f64) {
        let mut cur = self.bits.load(Ordering::Acquire);
        while t_s > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                t_s.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Advances the clock by `dt_s` seconds (negative deltas are
    /// ignored).
    pub fn advance(&self, dt_s: f64) {
        if dt_s > 0.0 {
            self.set(self.now_s() + dt_s);
        }
    }
}

impl Clock for VirtualClock {
    fn now_s(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_s();
        let b = clock.now_s();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn virtual_clock_moves_only_forward() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_s(), 0.0);
        clock.set(2.5);
        assert_eq!(clock.now_s(), 2.5);
        clock.set(1.0); // rewind attempt: ignored
        assert_eq!(clock.now_s(), 2.5);
        clock.advance(0.5);
        assert_eq!(clock.now_s(), 3.0);
        clock.advance(-1.0); // negative delta: ignored
        assert_eq!(clock.now_s(), 3.0);
    }
}
