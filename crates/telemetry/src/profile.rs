//! Deterministic flame-graph profiles folded from recorded span
//! forests.
//!
//! A [`Profile`] aggregates a [`SpanRecord`] forest (any output of
//! [`Tracer::finished`](crate::Tracer::finished)) into collapsed
//! stacks: each span contributes its *self time* — its own interval
//! minus its children's — to the stack of names from its root down to
//! itself. The result folds identical stacks across queries, tracks,
//! and cells, so a ten-thousand-query sweep collapses to a handful of
//! weighted lines.
//!
//! * [`Profile::collapsed`] renders the standard collapsed-stack text
//!   format (`frame;frame;leaf <weight>` per line) that `inferno`,
//!   speedscope, and `flamegraph.pl` all ingest. Weights are integer
//!   nanoseconds, stacks are emitted in lexicographic order, so equal
//!   span forests produce byte-identical text.
//! * [`Profile::hotspots`] ranks frames by self time with total
//!   (inclusive) time alongside — the top-k table a human reads first.
//! * [`Profile::diff`] subtracts a baseline profile stack-by-stack —
//!   the differential view that turns "the crash plan is slower" into
//!   "the regression is all under `serve.compile`".
//! * [`exemplars`] keeps the worst-latency root spans of a sweep with
//!   their full descendant chains — the tail queries worth reading in
//!   a trace viewer, found without eyeballing Perfetto.

use std::collections::BTreeMap;

use crate::trace::SpanRecord;

/// Rounds a span duration to integer nanoseconds — the collapsed-stack
/// weight unit. Microsecond-scale modeled latencies keep 3–4
/// significant digits; rounding is deterministic.
fn duration_ns(seconds: f64) -> u64 {
    if seconds <= 0.0 || !seconds.is_finite() {
        return 0;
    }
    (seconds * 1e9).round() as u64
}

/// Frame names are joined with `;` in collapsed output, so the
/// separator (and whitespace, which delimits the weight) must not
/// appear inside a frame.
fn sanitize_frame(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            ';' => ':',
            c if c.is_whitespace() => '_',
            c if c.is_control() => '_',
            c => c,
        })
        .collect()
}

/// Self- and total-time weights of one collapsed stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackWeight {
    /// Nanoseconds attributed to exactly this stack (span time minus
    /// child time).
    pub self_ns: u64,
    /// Spans that folded into this stack.
    pub count: u64,
}

/// One row of the [`Profile::hotspots`] table: a frame name with its
/// aggregate attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hotspot {
    /// The frame (span) name.
    pub name: String,
    /// Nanoseconds spent in this frame itself, excluding children.
    pub self_ns: u64,
    /// Nanoseconds spent in this frame including children. Recursive
    /// occurrences are counted once (only spans with no same-named
    /// ancestor contribute), so `total_ns` never exceeds the profile's
    /// running time.
    pub total_ns: u64,
    /// Spans bearing this name.
    pub count: u64,
}

/// One row of a differential profile: a stack with its weight in the
/// baseline and candidate profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackDelta {
    /// The collapsed stack, root first.
    pub stack: Vec<String>,
    /// Self nanoseconds in the baseline profile.
    pub baseline_ns: u64,
    /// Self nanoseconds in the candidate profile.
    pub candidate_ns: u64,
}

impl StackDelta {
    /// `candidate - baseline`, signed.
    pub fn delta_ns(&self) -> i64 {
        self.candidate_ns as i64 - self.baseline_ns as i64
    }
}

/// A folded flame-graph profile: collapsed stacks with deterministic
/// integer-nanosecond weights.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Self-time weights keyed by collapsed stack (root-first frame
    /// names). `BTreeMap` keeps every traversal in lexicographic stack
    /// order — the byte-determinism anchor of every export.
    stacks: BTreeMap<Vec<String>, StackWeight>,
}

impl Profile {
    /// Folds a span forest into a profile. Spans may come from any mix
    /// of tracks; stacks follow `parent` links, not track nesting, so
    /// explicitly recorded chains
    /// ([`Tracer::record_span_under`](crate::Tracer::record_span_under))
    /// fold exactly like guard-recorded ones.
    pub fn from_spans(spans: &[SpanRecord]) -> Self {
        // Child time per parent id, for self-time attribution.
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        for s in spans {
            if let Some(p) = s.parent {
                *child_ns.entry(p).or_insert(0) += duration_ns(s.end_s - s.start_s);
            }
        }
        let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
        let mut stacks: BTreeMap<Vec<String>, StackWeight> = BTreeMap::new();
        for s in spans {
            let own = duration_ns(s.end_s - s.start_s);
            let self_ns = own.saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            let mut stack = vec![sanitize_frame(&s.name)];
            let mut cursor = s.parent;
            while let Some(pid) = cursor {
                let Some(p) = by_id.get(&pid) else { break };
                stack.push(sanitize_frame(&p.name));
                cursor = p.parent;
            }
            stack.reverse();
            let w = stacks.entry(stack).or_default();
            w.self_ns += self_ns;
            w.count += 1;
        }
        Profile { stacks }
    }

    /// The folded stacks in lexicographic order.
    pub fn stacks(&self) -> impl Iterator<Item = (&[String], StackWeight)> {
        self.stacks.iter().map(|(k, &v)| (k.as_slice(), v))
    }

    /// Total self nanoseconds across every stack — the profile's
    /// running time (equal to the summed root-span durations, up to
    /// per-span rounding).
    pub fn total_ns(&self) -> u64 {
        self.stacks.values().map(|w| w.self_ns).sum()
    }

    /// The collapsed-stack text export: one
    /// `frame;frame;leaf <self_ns>` line per stack, lexicographic
    /// stack order, `\n`-terminated. Loadable by speedscope, inferno,
    /// and `flamegraph.pl`; byte-identical for equal span forests.
    /// Zero-weight stacks are kept (a marker span is still a frame).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, w) in &self.stacks {
            out.push_str(&stack.join(";"));
            out.push(' ');
            out.push_str(&w.self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// The top-`k` frames by self time (ties broken by name), with
    /// inclusive totals alongside. Recursion-safe: a span only adds to
    /// its name's `total_ns` when no ancestor frame shares the name.
    pub fn hotspots(&self, k: usize) -> Vec<Hotspot> {
        let mut by_name: BTreeMap<&str, Hotspot> = BTreeMap::new();
        for (stack, w) in &self.stacks {
            let leaf = stack.last().expect("stacks are non-empty").as_str();
            let entry = by_name.entry(leaf).or_insert_with(|| Hotspot {
                name: leaf.to_string(),
                self_ns: 0,
                total_ns: 0,
                count: 0,
            });
            entry.self_ns += w.self_ns;
            entry.count += w.count;
            // The stack's self time is inside every frame on it; charge
            // it to each name's total once, at the frame's first
            // (outermost) occurrence.
            let mut seen: Vec<&str> = Vec::with_capacity(stack.len());
            for frame in stack {
                if !seen.contains(&frame.as_str()) {
                    seen.push(frame);
                    by_name
                        .entry(frame)
                        .or_insert_with(|| Hotspot {
                            name: frame.clone(),
                            self_ns: 0,
                            total_ns: 0,
                            count: 0,
                        })
                        .total_ns += w.self_ns;
                }
            }
        }
        let mut rows: Vec<Hotspot> = by_name.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
        rows.truncate(k);
        rows
    }

    /// The differential profile `self - baseline`, one [`StackDelta`]
    /// per stack present in either side, sorted by decreasing absolute
    /// delta (ties lexicographic). Stacks whose weights are equal on
    /// both sides are omitted.
    pub fn diff(&self, baseline: &Profile) -> Vec<StackDelta> {
        let mut keys: Vec<&Vec<String>> = self.stacks.keys().collect();
        for k in baseline.stacks.keys() {
            if !self.stacks.contains_key(k) {
                keys.push(k);
            }
        }
        keys.sort();
        let mut rows: Vec<StackDelta> = keys
            .into_iter()
            .filter_map(|k| {
                let b = baseline.stacks.get(k).map_or(0, |w| w.self_ns);
                let c = self.stacks.get(k).map_or(0, |w| w.self_ns);
                (b != c).then(|| StackDelta { stack: k.clone(), baseline_ns: b, candidate_ns: c })
            })
            .collect();
        rows.sort_by(|a, b| {
            b.delta_ns().abs().cmp(&a.delta_ns().abs()).then_with(|| a.stack.cmp(&b.stack))
        });
        rows
    }
}

/// One tail-latency exemplar: a worst-duration root span with its full
/// descendant chain, in `(start_s, id)` order — the admit → route →
/// compile → eval story of one slow query, ready for a trace viewer or
/// a collapsed-stack fold of its own.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The root span (e.g. `cluster.query`).
    pub root: SpanRecord,
    /// The root plus every transitive child, sorted by `(start_s, id)`.
    pub chain: Vec<SpanRecord>,
}

impl Exemplar {
    /// The root span's duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.root.end_s - self.root.start_s
    }
}

/// The `k` worst-duration spans named `root_name`, each with its full
/// descendant chain. Ties break toward the earlier span id, so the
/// selection is deterministic. Spans under a differently-named root
/// (e.g. a `serve.compile` nested in `cluster.query`) are only
/// eligible via their named ancestor.
pub fn exemplars(spans: &[SpanRecord], root_name: &str, k: usize) -> Vec<Exemplar> {
    let mut roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == root_name).collect();
    roots.sort_by(|a, b| {
        (b.end_s - b.start_s)
            .partial_cmp(&(a.end_s - a.start_s))
            .expect("span times are finite")
            .then_with(|| a.id.cmp(&b.id))
    });
    roots.truncate(k);
    roots
        .into_iter()
        .map(|root| {
            let mut members = vec![root.id];
            let mut chain = vec![root.clone()];
            // Spans are a forest: repeatedly sweep for children of the
            // collected set. Chains are short (one query's spans), so
            // the quadratic sweep is irrelevant.
            let mut grew = true;
            while grew {
                grew = false;
                for s in spans {
                    if s.parent.is_some_and(|p| members.contains(&p)) && !members.contains(&s.id) {
                        members.push(s.id);
                        chain.push(s.clone());
                        grew = true;
                    }
                }
            }
            chain.sort_by(|a, b| {
                (a.start_s, a.id).partial_cmp(&(b.start_s, b.id)).expect("span times are finite")
            });
            Exemplar { root: root.clone(), chain }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::trace::Tracer;

    /// One modeled query chain: root t0..t3 with compile t0..t1 and
    /// eval t1..t3 children.
    fn record_query(tracer: &Tracer, track: u64, t0: f64, t1: f64, t3: f64) {
        let root = tracer.record_span(track, "cluster.query", &[], t0, t3);
        tracer.record_span_under(track, "serve.compile", &[], t0, t1, root);
        tracer.record_span_under(track, "serve.eval", &[], t1, t3, root);
    }

    fn tracer() -> Tracer {
        Tracer::new(VirtualClock::shared())
    }

    #[test]
    fn self_time_excludes_children() {
        let t = tracer();
        // Root 0..10 µs, children cover 0..2 and 2..9: 1 µs self.
        record_query(&t, 1, 0.0, 2e-6, 9e-6);
        let spans = t.finished();
        // Stretch the root beyond its children.
        let mut spans = spans;
        spans[0].end_s = 10e-6;
        let p = Profile::from_spans(&spans);
        let stacks: Vec<_> = p.stacks().collect();
        assert_eq!(stacks.len(), 3);
        let root_self =
            stacks.iter().find(|(s, _)| *s == ["cluster.query".to_string()]).expect("root stack").1;
        assert_eq!(root_self.self_ns, 1_000, "10µs root minus 9µs of children");
        assert_eq!(p.total_ns(), 10_000, "self times sum back to the root duration");
    }

    #[test]
    fn collapsed_output_is_sorted_deterministic_and_parseable() {
        let t = tracer();
        record_query(&t, 1, 0.0, 2e-6, 9e-6);
        record_query(&t, 2, 1e-6, 1e-6, 4e-6); // warm: zero-length compile
        let p = Profile::from_spans(&t.finished());
        let text = p.collapsed();
        let again = Profile::from_spans(&t.finished()).collapsed();
        assert_eq!(text, again, "equal forests fold to identical bytes");
        let mut lines: Vec<&str> = text.lines().collect();
        let sorted = {
            let mut l = lines.clone();
            l.sort();
            l
        };
        assert_eq!(lines, sorted, "stacks are emitted in lexicographic order");
        // Every line is `frames <integer>` with `;`-separated frames.
        for line in &mut lines {
            let (stack, weight) = line.rsplit_once(' ').expect("line has a weight");
            assert!(weight.parse::<u64>().is_ok(), "weight {weight:?}");
            assert!(!stack.is_empty());
            assert!(stack.split(';').all(|f| !f.is_empty()));
        }
        // The two query chains folded onto shared stacks.
        assert!(text.contains("cluster.query;serve.eval "));
        assert!(text.contains("cluster.query;serve.compile "));
    }

    #[test]
    fn frames_with_separator_bytes_are_sanitized() {
        let t = tracer();
        t.record_span(0, "weird; name\twith space", &[], 0.0, 1e-6);
        let text = Profile::from_spans(&t.finished()).collapsed();
        let line = text.lines().next().expect("one stack");
        let (stack, _) = line.rsplit_once(' ').expect("weight");
        assert_eq!(stack, "weird:_name_with_space");
    }

    #[test]
    fn hotspots_rank_by_self_time_with_inclusive_totals() {
        let t = tracer();
        record_query(&t, 1, 0.0, 2e-6, 9e-6); // compile 2µs, eval 7µs
        record_query(&t, 2, 0.0, 1e-6, 3e-6); // compile 1µs, eval 2µs
        let p = Profile::from_spans(&t.finished());
        let top = p.hotspots(10);
        assert_eq!(top[0].name, "serve.eval");
        assert_eq!(top[0].self_ns, 9_000);
        assert_eq!(top[0].count, 2);
        let root = top.iter().find(|h| h.name == "cluster.query").expect("root frame");
        assert_eq!(root.self_ns, 0, "fully covered by children");
        assert_eq!(root.total_ns, 12_000, "inclusive total spans both queries");
        assert_eq!(p.hotspots(1).len(), 1, "k truncates");
    }

    #[test]
    fn recursive_frames_count_total_once() {
        let t = tracer();
        let outer = t.record_span(0, "f", &[], 0.0, 10e-6);
        let inner = t.record_span_under(0, "f", &[], 0.0, 6e-6, outer);
        t.record_span_under(0, "g", &[], 0.0, 1e-6, inner);
        let p = Profile::from_spans(&t.finished());
        let f = p.hotspots(10).into_iter().find(|h| h.name == "f").expect("frame f");
        assert_eq!(f.total_ns, 10_000, "recursion must not double-count totals");
        assert_eq!(f.self_ns, 9_000, "outer 4µs + inner 5µs");
    }

    #[test]
    fn diff_isolates_the_changed_stack() {
        let base = {
            let t = tracer();
            record_query(&t, 1, 0.0, 2e-6, 9e-6);
            Profile::from_spans(&t.finished())
        };
        let cand = {
            let t = tracer();
            record_query(&t, 1, 0.0, 5e-6, 12e-6); // compile grew 2→5µs
            Profile::from_spans(&t.finished())
        };
        let rows = cand.diff(&base);
        assert_eq!(rows.len(), 1, "only the compile stack changed: {rows:?}");
        assert_eq!(rows[0].stack, vec!["cluster.query", "serve.compile"]);
        assert_eq!(rows[0].delta_ns(), 3_000);
        assert!(cand.diff(&cand).is_empty(), "self-diff is empty");
        // Symmetric: the reverse diff negates.
        assert_eq!(base.diff(&cand)[0].delta_ns(), -3_000);
    }

    #[test]
    fn exemplars_pick_the_worst_roots_with_full_chains() {
        let t = tracer();
        record_query(&t, 1, 0.0, 2e-6, 9e-6); // 9 µs
        record_query(&t, 2, 0.0, 1e-6, 30e-6); // 30 µs — the tail
        record_query(&t, 3, 0.0, 1e-6, 4e-6); // 4 µs
        let spans = t.finished();
        let worst = exemplars(&spans, "cluster.query", 2);
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].root.track, 2);
        assert!((worst[0].duration_s() - 30e-6).abs() < 1e-12);
        assert_eq!(worst[1].root.track, 1);
        // The chain carries the whole story, in time order.
        let names: Vec<&str> = worst[0].chain.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["cluster.query", "serve.compile", "serve.eval"]);
        assert!(exemplars(&spans, "no.such.span", 3).is_empty());
    }
}
