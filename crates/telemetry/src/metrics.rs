//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms with exact deterministic quantile extraction.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones that call sites cache once and update lock-free thereafter:
//! counters and gauges are single atomics, so the hot path never takes
//! the registry lock. Histograms serialize recordings through a light
//! mutex — they sit on per-batch paths, not per-node inner loops.
//!
//! # Histogram buckets
//!
//! Recorded values land in logarithmic buckets derived from the IEEE-754
//! bit pattern: bucket index `v.to_bits() >> 49` splits every power of
//! two into 8 sub-buckets (relative width ≤ 12.5%), is monotone in the
//! value, and handles subnormals with no special casing. Bucket bounds
//! are exact (`f64::from_bits(index << 49)`), so quantiles — reported as
//! the lower bound of the bucket holding the nearest-rank sample — are
//! deterministic, always lie within the true bucket bounds, and are
//! monotone in rank. Zero, negative, and `+inf` samples get dedicated
//! buckets; `NaN` recordings are tallied separately and excluded from
//! `count`/`sum`/quantiles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bits shifted off a positive `f64` to get its bucket index: keeps the
/// sign-free exponent plus the top 3 mantissa bits (8 sub-buckets per
/// octave).
const BUCKET_SHIFT: u32 = 49;

/// A canonical metric identity: name plus key-sorted labels.
pub(crate) type MetricId = (String, Vec<(String, String)>);

fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

/// `true` iff `name` is a legal metric/label identifier
/// (`[a-zA-Z_][a-zA-Z0-9_]*`) — the grammar the Prometheus exposition
/// lint enforces.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A monotone event counter. Lock-free: one atomic increment per event.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits in one
/// atomic — lock-free).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistState {
    /// Positive finite samples, keyed by log bucket index.
    finite: BTreeMap<u16, u64>,
    zero: u64,
    negative: u64,
    infinite: u64,
    nan: u64,
    sum: f64,
    count: u64,
}

/// A log-bucketed histogram handle (see the module docs for the bucket
/// layout and quantile semantics).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistState>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        let mut s = self.0.lock().expect("histogram lock");
        if v.is_nan() {
            s.nan += 1;
            return;
        }
        s.count += 1;
        s.sum += v;
        if v == 0.0 {
            s.zero += 1;
        } else if v < 0.0 {
            s.negative += 1;
        } else if v.is_infinite() {
            s.infinite += 1;
        } else {
            *s.finite.entry((v.to_bits() >> BUCKET_SHIFT) as u16).or_insert(0) += 1;
        }
    }

    /// Merges `other`'s current state into `self` — bucket-wise sums,
    /// so the merged histogram's snapshot (buckets, count, sum,
    /// quantiles) is identical to tallying both sample streams into one
    /// histogram. The cross-shard aggregation path: each shard records
    /// locally, the collector merges. Merging a histogram into itself
    /// doubles it.
    pub fn merge(&self, other: &Histogram) {
        // Copy `other` out before locking `self`: the locks never
        // overlap, so self-merge cannot deadlock.
        let o = {
            let s = other.0.lock().expect("histogram lock");
            (s.finite.clone(), s.zero, s.negative, s.infinite, s.nan, s.sum, s.count)
        };
        let mut s = self.0.lock().expect("histogram lock");
        for (idx, c) in o.0 {
            *s.finite.entry(idx).or_insert(0) += c;
        }
        s.zero += o.1;
        s.negative += o.2;
        s.infinite += o.3;
        s.nan += o.4;
        s.sum += o.5;
        s.count += o.6;
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.0.lock().expect("histogram lock");
        let mut buckets = Vec::with_capacity(s.finite.len() + 3);
        if s.negative > 0 {
            buckets.push(HistBucket { lower: f64::NEG_INFINITY, upper: 0.0, count: s.negative });
        }
        if s.zero > 0 {
            buckets.push(HistBucket { lower: 0.0, upper: 0.0, count: s.zero });
        }
        for (&idx, &count) in &s.finite {
            buckets.push(HistBucket { lower: bucket_lower(idx), upper: bucket_upper(idx), count });
        }
        if s.infinite > 0 {
            buckets.push(HistBucket {
                lower: f64::INFINITY,
                upper: f64::INFINITY,
                count: s.infinite,
            });
        }
        HistogramSnapshot { buckets, count: s.count, sum: s.sum, nan: s.nan }
    }
}

/// The exact lower bound of finite bucket `idx`: every sample in the
/// bucket is `>=` this value.
pub fn bucket_lower(idx: u16) -> f64 {
    f64::from_bits((idx as u64) << BUCKET_SHIFT)
}

/// The exclusive upper bound of finite bucket `idx`: every sample in
/// the bucket is `<` this value (the top bucket's bound is `+inf`).
pub fn bucket_upper(idx: u16) -> f64 {
    f64::from_bits(((idx as u64) + 1) << BUCKET_SHIFT)
}

/// One histogram bucket in a snapshot: samples `v` with
/// `lower <= v < upper` (the zero bucket has `lower == upper == 0`, the
/// infinity bucket `lower == upper == +inf`; both hold exact values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistBucket {
    /// Inclusive lower bound.
    pub lower: f64,
    /// Exclusive upper bound (inclusive for the degenerate zero / inf
    /// buckets).
    pub upper: f64,
    /// Samples in the bucket.
    pub count: u64,
}

/// An immutable histogram state: non-empty buckets in ascending value
/// order, plus the sample count and sum.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Non-empty buckets, ascending.
    pub buckets: Vec<HistBucket>,
    /// Total non-NaN samples.
    pub count: u64,
    /// Sum of all non-NaN samples (exact for integer-valued samples
    /// below 2^53 regardless of recording order).
    pub sum: f64,
    /// NaN recordings (excluded from `count`, `sum`, and quantiles).
    pub nan: u64,
}

impl HistogramSnapshot {
    /// The exact nearest-rank `q`-quantile, reported as the lower bound
    /// of the bucket holding the rank-`ceil(q * count)` sample
    /// (`q = 0` reports the first bucket). `None` on an empty
    /// histogram. Deterministic, within the true bucket bounds of the
    /// selected sample, and monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.lower);
            }
        }
        // Unreachable when bucket counts sum to `count`; report the top
        // bucket defensively.
        self.buckets.last().map(|b| b.lower)
    }

    /// Median ([`HistogramSnapshot::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.9)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// One exported metric: canonical identity plus current value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Key-sorted labels.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// The value half of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// The counter that tallies series dropped by the cardinality guard.
/// Exempt from the cap itself, so the drop signal always exports.
pub const DROPPED_SERIES_METRIC: &str = "telemetry_dropped_series_total";

/// Default cap on distinct registered series — far above any sane
/// sweep (hundreds of series) yet a hard stop against adversarial
/// label cardinality (e.g. a tenant id per request).
pub const DEFAULT_SERIES_LIMIT: usize = 10_000;

#[derive(Debug)]
struct RegistryInner {
    counters: BTreeMap<MetricId, Counter>,
    gauges: BTreeMap<MetricId, Gauge>,
    histograms: BTreeMap<MetricId, Histogram>,
    series_limit: usize,
}

impl Default for RegistryInner {
    fn default() -> Self {
        RegistryInner {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series_limit: DEFAULT_SERIES_LIMIT,
        }
    }
}

impl RegistryInner {
    fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// `true` when registering one more series under `name` would
    /// exceed the cap. The drop counter itself is exempt: the overflow
    /// signal must never be a casualty of the overflow.
    fn would_overflow(&self, name: &str) -> bool {
        name != DROPPED_SERIES_METRIC && self.series_count() >= self.series_limit
    }

    /// Tallies one dropped series.
    fn count_drop(&mut self) {
        self.counters.entry((DROPPED_SERIES_METRIC.to_string(), Vec::new())).or_default().inc();
    }
}

/// The process-wide (or sweep-wide) collection of metrics. Handle
/// lookup takes a lock; the returned handles do not.
///
/// # Cardinality guard
///
/// Distinct series (name + label set) are capped — at
/// [`DEFAULT_SERIES_LIMIT`] by default,
/// [`MetricsRegistry::with_series_limit`] to override. Once the cap is
/// reached, lookups of *existing* series keep working, but a lookup
/// that would mint a new series instead returns a detached handle (a
/// live metric that is not exported) and increments
/// [`DROPPED_SERIES_METRIC`] — so adversarial label cardinality
/// degrades to a counted, visible drop instead of unbounded memory.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry with the default series cap.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// An empty registry capped at `limit` distinct series.
    pub fn with_series_limit(limit: usize) -> Self {
        let reg = MetricsRegistry::default();
        reg.inner.lock().expect("registry lock").series_limit = limit;
        reg
    }

    /// Distinct series currently registered.
    pub fn series_count(&self) -> usize {
        self.inner.lock().expect("registry lock").series_count()
    }

    fn id(name: &str, labels: &[(&str, &str)]) -> MetricId {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        debug_assert!(
            labels.iter().all(|(k, _)| valid_metric_name(k)),
            "invalid label key in {labels:?}"
        );
        (name.to_string(), canonical_labels(labels))
    }

    /// The counter registered under `(name, labels)`, created on first
    /// use. Cache the handle; increments are lock-free.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = Self::id(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(c) = inner.counters.get(&id) {
            return c.clone();
        }
        if inner.would_overflow(name) {
            inner.count_drop();
            return Counter::default();
        }
        inner.counters.entry(id).or_default().clone()
    }

    /// The gauge registered under `(name, labels)`, created on first
    /// use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = Self::id(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(g) = inner.gauges.get(&id) {
            return g.clone();
        }
        if inner.would_overflow(name) {
            inner.count_drop();
            return Gauge::default();
        }
        inner.gauges.entry(id).or_default().clone()
    }

    /// The histogram registered under `(name, labels)`, created on
    /// first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = Self::id(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(h) = inner.histograms.get(&id) {
            return h.clone();
        }
        if inner.would_overflow(name) {
            inner.count_drop();
            return Histogram::default();
        }
        inner.histograms.entry(id).or_default().clone()
    }

    /// Every registered metric, sorted by `(name, labels)` — the
    /// deterministic order both exporters emit.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = Vec::new();
        for ((name, labels), c) in &inner.counters {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for ((name, labels), g) in &inner.gauges {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for ((name, labels), h) in &inner.histograms {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Histogram(h.snapshot()),
            });
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_per_identity() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("queries_total", &[("route", "exact")]);
        // Label order is canonicalized, so a permuted spelling is the
        // same counter.
        let b = reg.counter("queries_total", &[("route", "exact")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = reg.counter("queries_total", &[("route", "approx")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn gauge_holds_last_write() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("store_bytes", &[]);
        assert_eq!(g.get(), 0.0);
        g.set(1.5e9);
        assert_eq!(g.get(), 1.5e9);
    }

    #[test]
    fn histogram_buckets_bound_their_samples() {
        let h = Histogram::default();
        for v in [1e-300, 0.1, 0.5, 1.0, 1.5, 2.0, 1e12] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        for b in &snap.buckets {
            assert!(b.lower <= b.upper);
        }
        // Each sample lies inside exactly one snapshot bucket.
        for v in [1e-300, 0.1, 0.5, 1.0, 1.5, 2.0, 1e12] {
            let holding: Vec<_> = snap
                .buckets
                .iter()
                .filter(|b| b.lower <= v && (v < b.upper || (v == b.upper && b.lower == b.upper)))
                .collect();
            assert_eq!(holding.len(), 1, "sample {v} has one bucket");
        }
    }

    #[test]
    fn quantiles_are_exact_on_separated_samples() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50(), Some(1.0));
        assert_eq!(snap.p90(), Some(1.0));
        // Rank ceil(0.99 * 100) = 99 lands in the 1000-bucket; the
        // reported lower bound is within 12.5% below the true value.
        let p99 = snap.p99().unwrap();
        assert!(p99 <= 1000.0 && p99 > 1000.0 * 0.875, "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.count, 0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", &[]).inc();
        reg.gauge("a_value", &[]).set(2.0);
        reg.histogram("c_hist", &[("shard", "0")]).record(1.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a_value", "b_total", "c_hist"]);
    }

    #[test]
    fn merged_histograms_match_a_single_tally() {
        let a = Histogram::default();
        let b = Histogram::default();
        let one = Histogram::default();
        let samples_a = [0.0, 1.0, 7.0, -3.0, f64::INFINITY, f64::NAN, 1e9];
        let samples_b = [2.0, 7.0, 0.0, 512.0];
        for v in samples_a {
            a.record(v);
            one.record(v);
        }
        for v in samples_b {
            b.record(v);
            one.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), one.snapshot(), "merge == tallying into one histogram");
        assert_eq!(a.snapshot().p99(), one.snapshot().p99());
    }

    #[test]
    fn self_merge_doubles() {
        let h = Histogram::default();
        h.record(1.0);
        h.record(4.0);
        h.merge(&h);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 10.0);
    }

    #[test]
    fn cardinality_guard_drops_new_series_past_the_cap() {
        let reg = MetricsRegistry::with_series_limit(3);
        let a = reg.counter("kept_total", &[("tenant", "a")]);
        let b = reg.counter("kept_total", &[("tenant", "b")]);
        reg.gauge("kept_value", &[]);
        assert_eq!(reg.series_count(), 3);
        // At capacity: a new series is dropped, counted, and detached.
        let dropped = reg.counter("kept_total", &[("tenant", "zzz")]);
        dropped.inc();
        reg.histogram("new_hist", &[]).record(1.0);
        reg.gauge("new_value", &[]).set(9.0);
        assert_eq!(reg.counter(DROPPED_SERIES_METRIC, &[]).get(), 3);
        // Existing series still resolve to their shared state...
        a.inc();
        reg.counter("kept_total", &[("tenant", "a")]).inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 0);
        // ...and the snapshot holds the capped set plus the drop
        // counter, not the adversarial series.
        let names: Vec<String> = reg.snapshot().iter().map(|m| m.name.clone()).collect();
        assert_eq!(names, vec!["kept_total", "kept_total", "kept_value", DROPPED_SERIES_METRIC]);
    }

    #[test]
    fn default_limit_is_roomy() {
        let reg = MetricsRegistry::new();
        for i in 0..100 {
            reg.counter("series_total", &[("i", &i.to_string())]).inc();
        }
        assert_eq!(reg.series_count(), 100);
        assert_eq!(reg.counter(DROPPED_SERIES_METRIC, &[]).get(), 0);
    }

    #[test]
    fn metric_name_grammar() {
        assert!(valid_metric_name("serve_queries_total"));
        assert!(valid_metric_name("_hidden"));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
    }
}
