//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms with exact deterministic quantile extraction.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones that call sites cache once and update lock-free thereafter:
//! counters and gauges are single atomics, so the hot path never takes
//! the registry lock. Histograms serialize recordings through a light
//! mutex — they sit on per-batch paths, not per-node inner loops.
//!
//! # Histogram buckets
//!
//! Recorded values land in logarithmic buckets derived from the IEEE-754
//! bit pattern: bucket index `v.to_bits() >> 49` splits every power of
//! two into 8 sub-buckets (relative width ≤ 12.5%), is monotone in the
//! value, and handles subnormals with no special casing. Bucket bounds
//! are exact (`f64::from_bits(index << 49)`), so quantiles — reported as
//! the lower bound of the bucket holding the nearest-rank sample — are
//! deterministic, always lie within the true bucket bounds, and are
//! monotone in rank. Zero, negative, and `+inf` samples get dedicated
//! buckets; `NaN` recordings are tallied separately and excluded from
//! `count`/`sum`/quantiles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bits shifted off a positive `f64` to get its bucket index: keeps the
/// sign-free exponent plus the top 3 mantissa bits (8 sub-buckets per
/// octave).
const BUCKET_SHIFT: u32 = 49;

/// A canonical metric identity: name plus key-sorted labels.
pub(crate) type MetricId = (String, Vec<(String, String)>);

fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

/// `true` iff `name` is a legal metric/label identifier
/// (`[a-zA-Z_][a-zA-Z0-9_]*`) — the grammar the Prometheus exposition
/// lint enforces.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A monotone event counter. Lock-free: one atomic increment per event.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits in one
/// atomic — lock-free).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistState {
    /// Positive finite samples, keyed by log bucket index.
    finite: BTreeMap<u16, u64>,
    zero: u64,
    negative: u64,
    infinite: u64,
    nan: u64,
    sum: f64,
    count: u64,
}

/// A log-bucketed histogram handle (see the module docs for the bucket
/// layout and quantile semantics).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistState>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        let mut s = self.0.lock().expect("histogram lock");
        if v.is_nan() {
            s.nan += 1;
            return;
        }
        s.count += 1;
        s.sum += v;
        if v == 0.0 {
            s.zero += 1;
        } else if v < 0.0 {
            s.negative += 1;
        } else if v.is_infinite() {
            s.infinite += 1;
        } else {
            *s.finite.entry((v.to_bits() >> BUCKET_SHIFT) as u16).or_insert(0) += 1;
        }
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = self.0.lock().expect("histogram lock");
        let mut buckets = Vec::with_capacity(s.finite.len() + 3);
        if s.negative > 0 {
            buckets.push(HistBucket { lower: f64::NEG_INFINITY, upper: 0.0, count: s.negative });
        }
        if s.zero > 0 {
            buckets.push(HistBucket { lower: 0.0, upper: 0.0, count: s.zero });
        }
        for (&idx, &count) in &s.finite {
            buckets.push(HistBucket { lower: bucket_lower(idx), upper: bucket_upper(idx), count });
        }
        if s.infinite > 0 {
            buckets.push(HistBucket {
                lower: f64::INFINITY,
                upper: f64::INFINITY,
                count: s.infinite,
            });
        }
        HistogramSnapshot { buckets, count: s.count, sum: s.sum, nan: s.nan }
    }
}

/// The exact lower bound of finite bucket `idx`: every sample in the
/// bucket is `>=` this value.
pub fn bucket_lower(idx: u16) -> f64 {
    f64::from_bits((idx as u64) << BUCKET_SHIFT)
}

/// The exclusive upper bound of finite bucket `idx`: every sample in
/// the bucket is `<` this value (the top bucket's bound is `+inf`).
pub fn bucket_upper(idx: u16) -> f64 {
    f64::from_bits(((idx as u64) + 1) << BUCKET_SHIFT)
}

/// One histogram bucket in a snapshot: samples `v` with
/// `lower <= v < upper` (the zero bucket has `lower == upper == 0`, the
/// infinity bucket `lower == upper == +inf`; both hold exact values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistBucket {
    /// Inclusive lower bound.
    pub lower: f64,
    /// Exclusive upper bound (inclusive for the degenerate zero / inf
    /// buckets).
    pub upper: f64,
    /// Samples in the bucket.
    pub count: u64,
}

/// An immutable histogram state: non-empty buckets in ascending value
/// order, plus the sample count and sum.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Non-empty buckets, ascending.
    pub buckets: Vec<HistBucket>,
    /// Total non-NaN samples.
    pub count: u64,
    /// Sum of all non-NaN samples (exact for integer-valued samples
    /// below 2^53 regardless of recording order).
    pub sum: f64,
    /// NaN recordings (excluded from `count`, `sum`, and quantiles).
    pub nan: u64,
}

impl HistogramSnapshot {
    /// The exact nearest-rank `q`-quantile, reported as the lower bound
    /// of the bucket holding the rank-`ceil(q * count)` sample
    /// (`q = 0` reports the first bucket). `None` on an empty
    /// histogram. Deterministic, within the true bucket bounds of the
    /// selected sample, and monotone in `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.lower);
            }
        }
        // Unreachable when bucket counts sum to `count`; report the top
        // bucket defensively.
        self.buckets.last().map(|b| b.lower)
    }

    /// Median ([`HistogramSnapshot::quantile`] at 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.9)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// One exported metric: canonical identity plus current value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Key-sorted labels.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// The value half of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricId, Counter>,
    gauges: BTreeMap<MetricId, Gauge>,
    histograms: BTreeMap<MetricId, Histogram>,
}

/// The process-wide (or sweep-wide) collection of metrics. Handle
/// lookup takes a lock; the returned handles do not.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn id(name: &str, labels: &[(&str, &str)]) -> MetricId {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        debug_assert!(
            labels.iter().all(|(k, _)| valid_metric_name(k)),
            "invalid label key in {labels:?}"
        );
        (name.to_string(), canonical_labels(labels))
    }

    /// The counter registered under `(name, labels)`, created on first
    /// use. Cache the handle; increments are lock-free.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = Self::id(name, labels);
        self.inner.lock().expect("registry lock").counters.entry(id).or_default().clone()
    }

    /// The gauge registered under `(name, labels)`, created on first
    /// use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = Self::id(name, labels);
        self.inner.lock().expect("registry lock").gauges.entry(id).or_default().clone()
    }

    /// The histogram registered under `(name, labels)`, created on
    /// first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = Self::id(name, labels);
        self.inner.lock().expect("registry lock").histograms.entry(id).or_default().clone()
    }

    /// Every registered metric, sorted by `(name, labels)` — the
    /// deterministic order both exporters emit.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = Vec::new();
        for ((name, labels), c) in &inner.counters {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for ((name, labels), g) in &inner.gauges {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for ((name, labels), h) in &inner.histograms {
            out.push(MetricSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Histogram(h.snapshot()),
            });
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_per_identity() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("queries_total", &[("route", "exact")]);
        // Label order is canonicalized, so a permuted spelling is the
        // same counter.
        let b = reg.counter("queries_total", &[("route", "exact")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = reg.counter("queries_total", &[("route", "approx")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn gauge_holds_last_write() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("store_bytes", &[]);
        assert_eq!(g.get(), 0.0);
        g.set(1.5e9);
        assert_eq!(g.get(), 1.5e9);
    }

    #[test]
    fn histogram_buckets_bound_their_samples() {
        let h = Histogram::default();
        for v in [1e-300, 0.1, 0.5, 1.0, 1.5, 2.0, 1e12] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        for b in &snap.buckets {
            assert!(b.lower <= b.upper);
        }
        // Each sample lies inside exactly one snapshot bucket.
        for v in [1e-300, 0.1, 0.5, 1.0, 1.5, 2.0, 1e12] {
            let holding: Vec<_> = snap
                .buckets
                .iter()
                .filter(|b| b.lower <= v && (v < b.upper || (v == b.upper && b.lower == b.upper)))
                .collect();
            assert_eq!(holding.len(), 1, "sample {v} has one bucket");
        }
    }

    #[test]
    fn quantiles_are_exact_on_separated_samples() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50(), Some(1.0));
        assert_eq!(snap.p90(), Some(1.0));
        // Rank ceil(0.99 * 100) = 99 lands in the 1000-bucket; the
        // reported lower bound is within 12.5% below the true value.
        let p99 = snap.p99().unwrap();
        assert!(p99 <= 1000.0 && p99 > 1000.0 * 0.875, "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.count, 0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", &[]).inc();
        reg.gauge("a_value", &[]).set(2.0);
        reg.histogram("c_hist", &[("shard", "0")]).record(1.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a_value", "b_total", "c_hist"]);
    }

    #[test]
    fn metric_name_grammar() {
        assert!(valid_metric_name("serve_queries_total"));
        assert!(valid_metric_name("_hidden"));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
    }
}
