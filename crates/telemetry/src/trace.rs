//! Hierarchical spans on an injectable clock.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; each guard opens a span
//! at the clock's current time and closes it when dropped. Spans nest
//! per *track* (one track per shard / thread / logical lane): the open
//! spans of a track form a stack, and a guard that is dropped while
//! descendants are still open force-closes them at the same timestamp —
//! so any interleaving of guard drops yields a well-formed forest (every
//! span's interval is contained in its parent's, no crossings).
//!
//! Modeled sweeps that already know their timestamps (the cluster's
//! virtual-time admission loop) bypass guards and call
//! [`Tracer::record_span`] with explicit start/end times; the resulting
//! records are byte-deterministic per seed.

use std::sync::{Arc, Mutex};

use crate::clock::{Clock, WallClock};

/// One closed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `serve.compile`).
    pub name: String,
    /// Free-form labels (e.g. `shard`, `tenant`, `route`).
    pub labels: Vec<(String, String)>,
    /// Start time in clock seconds.
    pub start_s: f64,
    /// End time in clock seconds (`>= start_s`).
    pub end_s: f64,
    /// The track (shard / thread lane) the span ran on.
    pub track: u64,
    /// Nesting depth within the track at open time (roots are 0).
    pub depth: usize,
    /// Open-order id, unique within the tracer.
    pub id: u64,
    /// The id of the enclosing span, if any.
    pub parent: Option<u64>,
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    labels: Vec<(String, String)>,
    start_s: f64,
    track: u64,
    id: u64,
    parent: Option<u64>,
}

#[derive(Debug, Default)]
struct TraceState {
    next_id: u64,
    /// Open-span stacks, keyed by track (kept sorted; track counts are
    /// tiny — one per shard).
    open: Vec<(u64, Vec<OpenSpan>)>,
    done: Vec<SpanRecord>,
}

impl TraceState {
    fn stack(&mut self, track: u64) -> &mut Vec<OpenSpan> {
        match self.open.iter().position(|(t, _)| *t == track) {
            Some(i) => &mut self.open[i].1,
            None => {
                self.open.push((track, Vec::new()));
                &mut self.open.last_mut().expect("just pushed").1
            }
        }
    }

    fn close_through(&mut self, track: u64, id: u64, end_s: f64) {
        // Everything above `id` on the stack is a still-open descendant:
        // force-close it at the same end time so intervals stay nested.
        loop {
            let stack = self.stack(track);
            let Some(top) = stack.pop() else { return };
            let depth = stack.len();
            let done = top.id == id;
            self.done.push(SpanRecord {
                name: top.name,
                labels: top.labels,
                start_s: top.start_s,
                end_s: end_s.max(top.start_s),
                track: top.track,
                depth,
                id: top.id,
                parent: top.parent,
            });
            if done {
                return;
            }
        }
    }
}

/// The span collector. Clone-cheap (`Arc` inside); guards keep it
/// alive.
#[derive(Debug, Clone)]
pub struct Tracer {
    clock: Arc<dyn Clock>,
    state: Arc<Mutex<TraceState>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(Arc::new(WallClock::new()))
    }
}

impl Tracer {
    /// A tracer reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Tracer { clock, state: Arc::new(Mutex::new(TraceState::default())) }
    }

    /// The injected clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The clock's current time in seconds.
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// Opens a span on track 0. Closes when the guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_on(0, name, &[])
    }

    /// Opens a labeled span on the given track.
    pub fn span_on(&self, track: u64, name: &str, labels: &[(&str, &str)]) -> SpanGuard {
        let start_s = self.clock.now_s();
        let mut state = self.state.lock().expect("trace lock");
        let id = state.next_id;
        state.next_id += 1;
        let stack = state.stack(track);
        let parent = stack.last().map(|s| s.id);
        stack.push(OpenSpan {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            start_s,
            track,
            id,
            parent,
        });
        SpanGuard { tracer: self.clone(), track, id, closed: false }
    }

    /// Records an already-timed span (modeled sweeps with explicit
    /// virtual timestamps). The span is attached under whatever span on
    /// `track` is open at call time; `end_s` is clamped to `>= start_s`.
    /// Returns the record's id so callers can parent further spans via
    /// [`Tracer::record_span_under`].
    pub fn record_span(
        &self,
        track: u64,
        name: &str,
        labels: &[(&str, &str)],
        start_s: f64,
        end_s: f64,
    ) -> u64 {
        self.record_span_inner(track, name, labels, start_s, end_s, None)
    }

    /// Records an already-timed span as a child of `parent` (an id
    /// previously returned by [`Tracer::record_span`]).
    pub fn record_span_under(
        &self,
        track: u64,
        name: &str,
        labels: &[(&str, &str)],
        start_s: f64,
        end_s: f64,
        parent: u64,
    ) -> u64 {
        self.record_span_inner(track, name, labels, start_s, end_s, Some(parent))
    }

    fn record_span_inner(
        &self,
        track: u64,
        name: &str,
        labels: &[(&str, &str)],
        start_s: f64,
        end_s: f64,
        parent: Option<u64>,
    ) -> u64 {
        let mut state = self.state.lock().expect("trace lock");
        let id = state.next_id;
        state.next_id += 1;
        let (parent, depth) = match parent {
            Some(p) => {
                let depth = state.done.iter().find(|s| s.id == p).map(|s| s.depth + 1).unwrap_or(1);
                (Some(p), depth)
            }
            None => {
                let stack = state.stack(track);
                (stack.last().map(|s| s.id), stack.len())
            }
        };
        state.done.push(SpanRecord {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            start_s,
            end_s: end_s.max(start_s),
            track,
            depth,
            id,
            parent,
        });
        id
    }

    /// Every closed span, sorted by `(track, start_s, id)` — the
    /// deterministic order the Chrome exporter emits.
    pub fn finished(&self) -> Vec<SpanRecord> {
        let state = self.state.lock().expect("trace lock");
        let mut out = state.done.clone();
        out.sort_by(|a, b| {
            (a.track, a.start_s, a.id)
                .partial_cmp(&(b.track, b.start_s, b.id))
                .expect("span times are finite")
        });
        out
    }
}

/// RAII handle for an open span; dropping it closes the span at the
/// clock's then-current time.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    track: u64,
    id: u64,
    closed: bool,
}

impl SpanGuard {
    /// Closes the span now (idempotent; `drop` does the same).
    pub fn end(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let end_s = self.tracer.clock.now_s();
        let mut state = self.tracer.state.lock().expect("trace lock");
        // The span may already be closed if an ancestor guard dropped
        // first (force-close); that is fine.
        let still_open = state.stack(self.track).iter().any(|s| s.id == self.id);
        if still_open {
            state.close_through(self.track, self.id, end_s);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

/// `true` iff `spans` form a well-formed forest: per track, spans
/// nest without crossing (any two intervals are disjoint or contained),
/// every child's interval lies within its parent's, and every parent id
/// exists on the same track.
pub fn is_well_formed_forest(spans: &[SpanRecord]) -> bool {
    let tracks: Vec<u64> = {
        let mut t: Vec<u64> = spans.iter().map(|s| s.track).collect();
        t.sort();
        t.dedup();
        t
    };
    for track in tracks {
        let on_track: Vec<&SpanRecord> = spans.iter().filter(|s| s.track == track).collect();
        for s in &on_track {
            if s.end_s < s.start_s {
                return false;
            }
            if let Some(pid) = s.parent {
                let Some(p) = on_track.iter().find(|c| c.id == pid) else {
                    return false; // orphan: parent missing from track
                };
                if s.start_s < p.start_s || s.end_s > p.end_s {
                    return false; // child escapes its parent
                }
            }
        }
        // No partial overlaps between any two spans on the track.
        for (i, a) in on_track.iter().enumerate() {
            for b in on_track.iter().skip(i + 1) {
                let disjoint = a.end_s <= b.start_s || b.end_s <= a.start_s;
                let a_in_b = b.start_s <= a.start_s && a.end_s <= b.end_s;
                let b_in_a = a.start_s <= b.start_s && b.end_s <= a.end_s;
                if !(disjoint || a_in_b || b_in_a) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn virtual_tracer() -> (Arc<VirtualClock>, Tracer) {
        let clock = VirtualClock::shared();
        let tracer = Tracer::new(clock.clone());
        (clock, tracer)
    }

    #[test]
    fn nested_guards_record_a_forest() {
        let (clock, tracer) = virtual_tracer();
        let root = tracer.span_on(3, "root", &[("shard", "3")]);
        clock.set(1.0);
        let child = tracer.span_on(3, "child", &[]);
        clock.set(2.0);
        child.end();
        clock.set(3.0);
        root.end();
        let spans = tracer.finished();
        assert_eq!(spans.len(), 2);
        assert!(is_well_formed_forest(&spans));
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!((root.start_s, root.end_s, root.depth), (0.0, 3.0, 0));
        assert_eq!((child.start_s, child.end_s, child.depth), (1.0, 2.0, 1));
        assert_eq!(child.parent, Some(root.id));
    }

    #[test]
    fn dropping_a_parent_force_closes_descendants() {
        let (clock, tracer) = virtual_tracer();
        let root = tracer.span("root");
        clock.set(1.0);
        let child = tracer.span("child");
        clock.set(2.0);
        drop(root); // child still open: force-closed at t = 2
        clock.set(5.0);
        drop(child); // already closed: no-op
        let spans = tracer.finished();
        assert!(is_well_formed_forest(&spans));
        let child_rec = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child_rec.end_s, 2.0, "force-closed with its parent, not at t = 5");
    }

    #[test]
    fn explicit_records_nest_under_parents() {
        let (_, tracer) = virtual_tracer();
        let q = tracer.record_span(1, "query", &[("tenant", "kb0")], 10.0, 12.0);
        tracer.record_span_under(1, "compile", &[], 10.0, 11.0, q);
        tracer.record_span_under(1, "eval", &[], 11.0, 12.0, q);
        let spans = tracer.finished();
        assert!(is_well_formed_forest(&spans));
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[1].depth, 1);
    }

    #[test]
    fn tracks_are_independent() {
        let (clock, tracer) = virtual_tracer();
        let a = tracer.span_on(0, "a", &[]);
        clock.set(1.0);
        let b = tracer.span_on(1, "b", &[]);
        clock.set(2.0);
        a.end(); // does not force-close b: different track
        clock.set(3.0);
        b.end();
        let spans = tracer.finished();
        assert!(is_well_formed_forest(&spans));
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(b.end_s, 3.0);
        assert_eq!(b.depth, 0);
    }
}
