//! Property and regression tests for the histogram quantile math: the
//! reported p50/p90/p99 must always be the exact lower bound of the
//! bucket holding the nearest-rank sample (hence within the true bucket
//! bounds of that sample), quantiles must be monotone in rank, and the
//! special values (zero, subnormals, infinities, NaN) must follow the
//! documented bucket layout.

use proptest::prelude::*;
use reason_telemetry::{bucket_lower, bucket_upper, Histogram};

/// The documented bucket index of a positive finite sample: exponent
/// plus top 3 mantissa bits (8 sub-buckets per power of two).
fn bucket_index(v: f64) -> u16 {
    assert!(v.is_finite() && v > 0.0);
    (v.to_bits() >> 49) as u16
}

/// The nearest-rank sample a quantile must report the bucket of.
fn rank_sample(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as u64;
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Positive finite samples spanning ~600 octaves: `mant * 2^exp`.
fn samples_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (-300i32..=300, 1.0f64..2.0).prop_map(|(exp, mant)| mant * 2f64.powi(exp)),
        1..=64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_lie_within_the_true_bucket_bounds(
        samples in samples_strategy(),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);

        let sample = rank_sample(&sorted, q);
        let idx = bucket_index(sample);
        let reported = snap.quantile(q).expect("non-empty");
        prop_assert_eq!(
            reported,
            bucket_lower(idx),
            "quantile({}) must be the lower bound of the rank sample's bucket",
            q
        );
        prop_assert!(reported <= sample, "lower bound cannot exceed the sample");
        prop_assert!(sample < bucket_upper(idx), "sample must sit below the bucket's upper bound");
        // Log buckets: the reported bound is within 12.5% of the sample.
        prop_assert!(sample <= reported * 1.125 * (1.0 + 1e-12));
    }

    #[test]
    fn quantiles_are_monotone_in_rank(
        samples in samples_strategy(),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = snap.quantile(lo).expect("non-empty");
        let b = snap.quantile(hi).expect("non-empty");
        prop_assert!(a <= b, "quantile({}) = {} > quantile({}) = {}", lo, a, hi, b);
        prop_assert!(snap.p50() <= snap.p90());
        prop_assert!(snap.p90() <= snap.p99());
    }

    #[test]
    fn bucket_bounds_are_exact_and_monotone(idx in 0u16..=0x3FF7) {
        // 0x3FF7 is the bucket of f64::MAX — the top of the finite
        // domain (its upper bound is +inf).
        let lower = bucket_lower(idx);
        let upper = bucket_upper(idx);
        prop_assert!(lower >= 0.0);
        prop_assert!(lower < upper);
        if idx > 0 {
            prop_assert_eq!(bucket_upper(idx - 1), lower, "buckets tile the positive reals");
        }
    }
}

#[test]
fn zero_samples_pin_the_zero_bucket() {
    let h = Histogram::default();
    h.record(0.0);
    h.record(-0.0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 2);
    assert_eq!(snap.sum, 0.0);
    assert_eq!(snap.p50(), Some(0.0));
    assert_eq!(snap.p99(), Some(0.0));
    assert_eq!(snap.buckets.len(), 1, "both zeros share the dedicated zero bucket");
    assert_eq!((snap.buckets[0].lower, snap.buckets[0].upper), (0.0, 0.0));
}

#[test]
fn subnormal_samples_follow_the_documented_layout() {
    let h = Histogram::default();
    h.record(f64::MIN_POSITIVE / 2.0); // subnormal, bucket index 4
    h.record(5e-324); // smallest positive subnormal, bucket index 0
    let snap = h.snapshot();
    assert_eq!(snap.count, 2);
    // Subnormals need no special casing: they land in ordinary finite
    // buckets (the smallest one's exact lower bound is 0.0), and
    // quantiles stay within those buckets' bounds.
    assert_eq!(snap.p50(), Some(0.0));
    assert_eq!(snap.buckets.len(), 2, "the two subnormals sit in distinct sub-buckets");
    assert_eq!(snap.buckets[0].lower, 0.0);
    assert!(5e-324 < snap.buckets[0].upper);
    assert_eq!(snap.buckets[1].lower, f64::MIN_POSITIVE / 2.0, "bucket bound is exact here");
    assert_eq!(snap.p99(), Some(f64::MIN_POSITIVE / 2.0));
}

#[test]
fn infinite_samples_pin_the_infinity_bucket() {
    let h = Histogram::default();
    h.record(1.0);
    h.record(f64::INFINITY);
    let snap = h.snapshot();
    assert_eq!(snap.count, 2);
    assert_eq!(snap.sum, f64::INFINITY);
    assert_eq!(snap.p50(), Some(1.0));
    assert_eq!(snap.p99(), Some(f64::INFINITY), "top rank reports the infinity bucket");
    let top = snap.buckets.last().unwrap();
    assert_eq!((top.lower, top.upper, top.count), (f64::INFINITY, f64::INFINITY, 1));
}

#[test]
fn negative_samples_report_the_negative_bucket_bound() {
    let h = Histogram::default();
    h.record(-3.0);
    h.record(-1.0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 2);
    assert_eq!(snap.p50(), Some(f64::NEG_INFINITY));
    assert_eq!(snap.buckets.len(), 1);
    assert_eq!(snap.buckets[0].count, 2);
}

#[test]
fn nan_recordings_never_reach_count_sum_or_quantiles() {
    let h = Histogram::default();
    h.record(f64::NAN);
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.nan, 1);
    assert_eq!(snap.sum, 0.0);
    assert_eq!(snap.quantile(0.5), None);

    h.record(2.0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    assert_eq!(snap.nan, 1);
    assert_eq!(snap.sum, 2.0);
    assert!(snap.p50().unwrap() <= 2.0);
}
