//! Property and determinism tests for the span collector: any
//! interleaving of guard drops — including parents dropped while
//! children are still open — must yield a well-formed forest, and
//! virtual-clock traces must be bit-identical across same-seed runs.

use std::sync::Arc;

use proptest::prelude::*;
use reason_telemetry::{chrome_trace_json, is_well_formed_forest, Tracer, VirtualClock};

/// One scripted step: advance the clock by `dt`, then either open a
/// span on `track` (`open = true`) or close the `pick`-th currently
/// open guard, whatever its nesting position.
type Step = (bool, u64, usize, f64);

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((any::<bool>(), 0u64..3, any::<usize>(), 0.0f64..0.5), 1..=48)
}

fn run_script(steps: &[Step]) -> Tracer {
    let clock = VirtualClock::shared();
    let tracer = Tracer::new(clock.clone());
    let mut now = 0.0;
    let mut guards = Vec::new();
    let mut serial = 0usize;
    for &(open, track, pick, dt) in steps {
        now += dt;
        clock.set(now);
        if open || guards.is_empty() {
            let name = format!("span{serial}");
            serial += 1;
            guards.push(tracer.span_on(track, &name, &[("track", &track.to_string())]));
        } else {
            // Close an arbitrary guard — possibly a parent whose
            // children are still held, exercising force-close.
            let guard: reason_telemetry::SpanGuard = guards.swap_remove(pick % guards.len());
            guard.end();
        }
    }
    // Drop the leftovers in reverse-open order with the clock advancing.
    while let Some(guard) = guards.pop() {
        now += 0.25;
        clock.set(now);
        drop(guard);
    }
    tracer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_guard_drop_interleaving_yields_a_well_formed_forest(steps in steps_strategy()) {
        let tracer = run_script(&steps);
        let spans = tracer.finished();
        let opens = steps.iter().filter(|s| s.0).count();
        prop_assert!(spans.len() >= opens, "every opened span must close");
        prop_assert!(
            is_well_formed_forest(&spans),
            "drop order {:?} produced a malformed forest: {:#?}",
            steps,
            spans
        );
        // Parent links agree with the depth bookkeeping.
        for s in &spans {
            match s.parent {
                None => prop_assert_eq!(s.depth, 0),
                Some(pid) => {
                    let p = spans.iter().find(|c| c.id == pid).expect("parent recorded");
                    prop_assert_eq!(s.depth, p.depth + 1);
                    prop_assert_eq!(s.track, p.track);
                }
            }
        }
    }
}

/// A fixed pseudo-random scenario driven entirely by `seed` — the
/// bit-identity harness for virtual-clock traces.
fn scripted_trace(seed: u64) -> String {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        // xorshift64* — deterministic, dependency-free.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let steps: Vec<Step> = (0..64)
        .map(|_| {
            let r = next();
            (r & 1 == 1, (r >> 1) % 3, (r >> 8) as usize, ((r >> 32) % 1000) as f64 * 1e-4)
        })
        .collect();
    let tracer = run_script(&steps);
    chrome_trace_json(&tracer.finished())
}

#[test]
fn virtual_clock_traces_are_bit_identical_per_seed() {
    let a = scripted_trace(42);
    let b = scripted_trace(42);
    assert_eq!(a, b, "same seed, same clock: traces must match byte for byte");
    assert!(is_well_formed_forest(&[]), "empty forest is trivially well-formed");
    let other = scripted_trace(43);
    assert_ne!(a, other, "different seeds should produce different traces");
}

#[test]
fn shared_tracer_clones_append_to_one_trace() {
    let clock = VirtualClock::shared();
    let tracer = Tracer::new(clock.clone() as Arc<_>);
    let clone = tracer.clone();
    let root = tracer.span_on(0, "root", &[]);
    clock.set(1.0);
    let child = clone.span_on(0, "child", &[]);
    clock.set(2.0);
    child.end();
    root.end();
    let spans = tracer.finished();
    assert_eq!(spans.len(), 2);
    assert!(is_well_formed_forest(&spans));
    assert_eq!(spans[1].parent, Some(spans[0].id));
}
