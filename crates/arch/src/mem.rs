//! Banked register file, scratchpad, and DMA models.
//!
//! REASON's RTE reads operands from dual-port banked SRAM through the
//! Benes crossbar and writes results back one-bank-per-PE (paper
//! Sec. V-C). The register-file model tracks per-cycle port conflicts
//! (the quantity the compiler's conflict-aware bank mapping minimizes)
//! and implements the automatic lowest-free write-address policy the
//! paper describes.

use serde::{Deserialize, Serialize};

/// A (bank, address) register-file location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BankAddr {
    /// Bank index.
    pub bank: u16,
    /// Word address within the bank.
    pub addr: u16,
}

impl BankAddr {
    /// Creates a location.
    pub fn new(bank: usize, addr: usize) -> Self {
        BankAddr { bank: bank as u16, addr: addr as u16 }
    }
}

/// Access statistics of the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Register reads served.
    pub reads: u64,
    /// Register writes served.
    pub writes: u64,
    /// Extra cycles lost to same-cycle bank port conflicts.
    pub conflict_cycles: u64,
    /// DMA transfers issued.
    pub dma_transfers: u64,
    /// Bytes moved by DMA.
    pub dma_bytes: u64,
}

/// The banked register file with dual-port banks and automatic write
/// addressing.
#[derive(Debug, Clone)]
pub struct RegisterBanks {
    num_banks: usize,
    regs_per_bank: usize,
    /// `values[bank][addr]`.
    values: Vec<Vec<f64>>,
    /// Occupancy bitmap per bank.
    occupied: Vec<Vec<bool>>,
    stats: MemoryStats,
}

impl RegisterBanks {
    /// Creates an empty register file.
    pub fn new(num_banks: usize, regs_per_bank: usize) -> Self {
        RegisterBanks {
            num_banks,
            regs_per_bank,
            values: vec![vec![0.0; regs_per_bank]; num_banks],
            occupied: vec![vec![false; regs_per_bank]; num_banks],
            stats: MemoryStats::default(),
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Registers per bank.
    pub fn regs_per_bank(&self) -> usize {
        self.regs_per_bank
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Writes `value` at the lowest free address of `bank` (the paper's
    /// automatic write-address generation), returning the location.
    ///
    /// # Panics
    ///
    /// Panics if the bank is full or out of range.
    pub fn alloc_write(&mut self, bank: usize, value: f64) -> BankAddr {
        assert!(bank < self.num_banks, "bank out of range");
        let addr = self.occupied[bank]
            .iter()
            .position(|&o| !o)
            .unwrap_or_else(|| panic!("bank {bank} is full (register spill required)"));
        self.occupied[bank][addr] = true;
        self.values[bank][addr] = value;
        self.stats.writes += 1;
        BankAddr::new(bank, addr)
    }

    /// Predicts the location [`alloc_write`](Self::alloc_write) would use
    /// for `bank` without performing the write — the compiler-side mirror
    /// of automatic write addressing.
    pub fn peek_write_addr(&self, bank: usize) -> Option<BankAddr> {
        self.occupied[bank].iter().position(|&o| !o).map(|addr| BankAddr::new(bank, addr))
    }

    /// Writes to an explicit location (program loads, spill restores).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range locations.
    pub fn write_at(&mut self, at: BankAddr, value: f64) {
        assert!((at.bank as usize) < self.num_banks, "bank out of range");
        assert!((at.addr as usize) < self.regs_per_bank, "address out of range");
        self.values[at.bank as usize][at.addr as usize] = value;
        self.occupied[at.bank as usize][at.addr as usize] = true;
        self.stats.writes += 1;
    }

    /// Reads a location.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or unoccupied locations.
    pub fn read(&mut self, at: BankAddr) -> f64 {
        assert!((at.bank as usize) < self.num_banks, "bank out of range");
        assert!(
            self.occupied[at.bank as usize][at.addr as usize],
            "read of unwritten register {at:?}"
        );
        self.stats.reads += 1;
        self.values[at.bank as usize][at.addr as usize]
    }

    /// Frees a location for reuse (end of live range).
    pub fn free(&mut self, at: BankAddr) {
        self.occupied[at.bank as usize][at.addr as usize] = false;
    }

    /// Extra cycles needed to serve a set of same-cycle reads given
    /// dual-port banks: `max over banks of ceil(reads_in_bank / 2) - 1`.
    ///
    /// Records the conflict penalty in the statistics.
    pub fn conflict_penalty(&mut self, reads: &[BankAddr]) -> u64 {
        let mut per_bank = vec![0u64; self.num_banks];
        for r in reads {
            per_bank[r.bank as usize] += 1;
        }
        let worst = per_bank.iter().map(|&n| n.div_ceil(2)).max().unwrap_or(0);
        let penalty = worst.saturating_sub(1);
        self.stats.conflict_cycles += penalty;
        penalty
    }

    /// Live register count per bank (register-pressure diagnostics).
    pub fn occupancy(&self) -> Vec<usize> {
        self.occupied.iter().map(|b| b.iter().filter(|&&o| o).count()).collect()
    }
}

/// DMA / prefetcher latency model: a fixed issue latency plus a
/// bandwidth-limited transfer term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    /// Issue + DRAM access latency in cycles (LPDDR5-class, ~100 ns at
    /// 500 MHz ⇒ ~50 cycles).
    pub latency_cycles: u64,
    /// Bytes delivered per cycle (104 GB/s at 500 MHz ≈ 208 B/cycle).
    pub bytes_per_cycle: f64,
}

impl DmaModel {
    /// The paper platform's DMA: LPDDR5 at 104 GB/s, 500 MHz core.
    pub fn paper() -> Self {
        DmaModel { latency_cycles: 50, bytes_per_cycle: 208.0 }
    }

    /// Cycles to move `bytes` from DRAM.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        self.latency_cycles + (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_addressing_uses_lowest_free() {
        let mut rf = RegisterBanks::new(4, 4);
        let a = rf.alloc_write(1, 1.0);
        let b = rf.alloc_write(1, 2.0);
        assert_eq!(a, BankAddr::new(1, 0));
        assert_eq!(b, BankAddr::new(1, 1));
        rf.free(a);
        let c = rf.alloc_write(1, 3.0);
        assert_eq!(c, BankAddr::new(1, 0), "freed slot is reused first");
        assert_eq!(rf.read(c), 3.0);
        assert_eq!(rf.read(b), 2.0);
    }

    #[test]
    fn peek_matches_alloc() {
        let mut rf = RegisterBanks::new(2, 4);
        let predicted = rf.peek_write_addr(0).unwrap();
        let actual = rf.alloc_write(0, 5.0);
        assert_eq!(predicted, actual);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let mut rf = RegisterBanks::new(1, 2);
        rf.alloc_write(0, 1.0);
        rf.alloc_write(0, 2.0);
        rf.alloc_write(0, 3.0);
    }

    #[test]
    fn dual_port_conflicts() {
        let mut rf = RegisterBanks::new(4, 8);
        // Two reads in one bank: dual ports cover it.
        let reads = vec![BankAddr::new(0, 0), BankAddr::new(0, 1)];
        assert_eq!(rf.conflict_penalty(&reads), 0);
        // Four reads in one bank: one extra cycle.
        let reads: Vec<BankAddr> = (0..4).map(|a| BankAddr::new(0, a)).collect();
        assert_eq!(rf.conflict_penalty(&reads), 1);
        // Spread across banks: free.
        let reads: Vec<BankAddr> = (0..4).map(|b| BankAddr::new(b, 0)).collect();
        assert_eq!(rf.conflict_penalty(&reads), 0);
        assert_eq!(rf.stats().conflict_cycles, 1);
    }

    #[test]
    fn dma_cycles_scale_with_bytes() {
        let dma = DmaModel::paper();
        let small = dma.transfer_cycles(64);
        let large = dma.transfer_cycles(64 * 1024);
        assert!(small >= dma.latency_cycles);
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "unwritten")]
    fn reading_unwritten_register_panics() {
        let mut rf = RegisterBanks::new(2, 2);
        let _ = rf.read(BankAddr::new(0, 0));
    }
}
