//! Interconnect topology scalability models (paper Fig. 8).
//!
//! REASON's inter-node topology is a tree: broadcast from the root reaches
//! `N` leaves in `O(log N)` hops, versus `O(√N)` for a mesh and `O(N)`
//! for an all-to-one bus whose fan-out forces buffer chains after layout.
//! These models regenerate both Fig. 8(a) (latency breakdown as leaf count
//! grows) and Fig. 8(b) (broadcast-to-root cycle counts).

use serde::{Deserialize, Serialize};

/// Inter-node interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NocTopology {
    /// Binary tree (REASON's choice).
    Tree,
    /// 2-D mesh.
    Mesh,
    /// All-to-one bus.
    AllToOne,
}

impl NocTopology {
    /// All three topologies, in the paper's plotting order.
    pub fn all() -> [NocTopology; 3] {
        [NocTopology::AllToOne, NocTopology::Mesh, NocTopology::Tree]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NocTopology::Tree => "Tree",
            NocTopology::Mesh => "Mesh",
            NocTopology::AllToOne => "All-to-One",
        }
    }
}

/// Cycles for a root-to-leaf broadcast (equivalently leaf-to-root
/// reduction) across `n` leaves.
///
/// * tree: `ceil(log2 n)` pipelined hop stages;
/// * mesh: `2·(√n − 1)` X-Y hops;
/// * all-to-one: `n/2` cycles of serialized bus arbitration and buffer
///   chains (post-layout fan-out repair, paper Sec. V-D).
pub fn broadcast_latency_cycles(topology: NocTopology, n: usize) -> u64 {
    assert!(n >= 1, "need at least one leaf");
    match topology {
        NocTopology::Tree => (usize::BITS - (n - 1).leading_zeros()) as u64,
        NocTopology::Mesh => {
            let side = (n as f64).sqrt().ceil() as u64;
            2 * side.saturating_sub(1)
        }
        NocTopology::AllToOne => (n as u64).div_ceil(2).max(1),
    }
}

/// One bar of Fig. 8(a): normalized latency decomposed into memory, PE,
/// peripheries, and inter-node components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocLatencyBreakdown {
    /// Topology of this bar.
    pub topology: NocTopology,
    /// Leaf count.
    pub leaves: usize,
    /// Memory access component (cycles).
    pub memory: f64,
    /// PE compute component.
    pub pe: f64,
    /// Peripheral logic (decode/control) component.
    pub peripheries: f64,
    /// Inter-node traversal component.
    pub inter_node: f64,
}

impl NocLatencyBreakdown {
    /// Total latency.
    pub fn total(&self) -> f64 {
        self.memory + self.pe + self.peripheries + self.inter_node
    }
}

/// Computes the Fig. 8(a) latency breakdown for a reduction across `n`
/// leaves: memory/PE/peripheries grow slowly and identically across
/// topologies; the inter-node term is what separates them.
pub fn noc_latency_breakdown(topology: NocTopology, n: usize) -> NocLatencyBreakdown {
    let inter = broadcast_latency_cycles(topology, n) as f64;
    // Memory: one banked fetch per leaf, dual-ported, pipelined.
    let memory = 2.0 + (n as f64 / 8.0);
    // PE compute: one op per level of whatever reduction structure exists;
    // approximately log for all (compute is not the differentiator).
    let pe = (n as f64).log2().max(1.0);
    let peripheries = 1.5;
    NocLatencyBreakdown { topology, leaves: n, memory, pe, peripheries, inter_node: inter }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asymptotic_ordering_holds() {
        for &n in &[8usize, 16, 32, 64, 128] {
            let tree = broadcast_latency_cycles(NocTopology::Tree, n);
            let mesh = broadcast_latency_cycles(NocTopology::Mesh, n);
            let bus = broadcast_latency_cycles(NocTopology::AllToOne, n);
            assert!(tree <= mesh, "tree must beat mesh at n={n}");
            assert!(mesh <= bus, "mesh must beat bus at n={n}");
        }
    }

    #[test]
    fn tree_is_logarithmic() {
        assert_eq!(broadcast_latency_cycles(NocTopology::Tree, 2), 1);
        assert_eq!(broadcast_latency_cycles(NocTopology::Tree, 8), 3);
        assert_eq!(broadcast_latency_cycles(NocTopology::Tree, 64), 6);
        // Doubling N adds one cycle.
        for k in 3..8 {
            let a = broadcast_latency_cycles(NocTopology::Tree, 1 << k);
            let b = broadcast_latency_cycles(NocTopology::Tree, 1 << (k + 1));
            assert_eq!(b - a, 1);
        }
    }

    #[test]
    fn mesh_is_sqrt() {
        let a = broadcast_latency_cycles(NocTopology::Mesh, 16);
        let b = broadcast_latency_cycles(NocTopology::Mesh, 64);
        // 4x leaves → 2x latency.
        assert_eq!(a, 6);
        assert_eq!(b, 14);
    }

    #[test]
    fn bus_is_linear() {
        let a = broadcast_latency_cycles(NocTopology::AllToOne, 32);
        let b = broadcast_latency_cycles(NocTopology::AllToOne, 64);
        assert_eq!(b, 2 * a);
    }

    #[test]
    fn breakdown_totals_are_dominated_by_internode_at_scale() {
        let b = noc_latency_breakdown(NocTopology::AllToOne, 256);
        assert!(b.inter_node > b.memory + b.pe + b.peripheries);
        let t = noc_latency_breakdown(NocTopology::Tree, 256);
        assert!(t.total() < b.total());
    }
}
