//! Symbolic mode: watched-literal hardware, BCP FIFO, and the CDCL timing
//! engine (paper Sec. V-D, Fig. 6(e), Fig. 9).
//!
//! Three pieces:
//!
//! * [`WatchedLiteralUnit`] — a functional model of the linked-list SRAM
//!   layout: a head-pointer table indexed by literal id plus clause
//!   records carrying next-watch pointers. Watch moves splice lists; every
//!   SRAM word touched is counted. The unit is validated against a
//!   reference set implementation.
//! * [`BcpFifo`] — the implication queue that serializes concurrently
//!   discovered implications while preserving the causality chain.
//! * [`SymbolicEngine`] — runs the *real* CDCL solver from `reason-sat`
//!   and replays its event stream through the hardware pipeline model:
//!   decisions broadcast down the tree (D cycles), implications return
//!   through the reduction tree pipelined at one per cycle, watched-
//!   literal lookups touch the modeled SRAM, conflicts flush the FIFO with
//!   priority, and clause-database overflow spills to DRAM through the
//!   DMA model.

use std::collections::VecDeque;

use reason_sat::{CdclSolver, Cnf, Lit, Solution, SolverObserver};
use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;
use crate::energy::{EnergyEvents, EnergyModel, EnergyReport};
use crate::mem::DmaModel;
use crate::tree::TreeEngine;

const NULL_PTR: u32 = u32::MAX;

/// One watch record: a clause occurrence on some literal's watch list.
#[derive(Debug, Clone, Copy)]
struct WatchRecord {
    clause: u32,
    next: u32,
}

/// Functional model of the linked-list watched-literal memory layout.
///
/// "A dedicated region stores a head pointer table indexed by literal IDs
/// [...] The main data region stores clauses, each augmented with a
/// next-watch pointer that links to other clauses watching the same
/// literal" (paper Sec. V-D).
#[derive(Debug, Clone)]
pub struct WatchedLiteralUnit {
    heads: Vec<u32>,
    records: Vec<WatchRecord>,
    free: Vec<u32>,
    /// SRAM words read (head fetches + record traversals).
    pub sram_reads: u64,
    /// SRAM words written (list splices).
    pub sram_writes: u64,
}

impl WatchedLiteralUnit {
    /// An empty unit over `2 * num_vars` literals.
    pub fn new(num_vars: usize) -> Self {
        WatchedLiteralUnit {
            heads: vec![NULL_PTR; 2 * num_vars],
            records: Vec::new(),
            free: Vec::new(),
            sram_reads: 0,
            sram_writes: 0,
        }
    }

    /// Builds the unit from a formula, watching the first two literals of
    /// every clause with at least two literals.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut unit = WatchedLiteralUnit::new(cnf.num_vars());
        for (i, clause) in cnf.iter().enumerate() {
            if clause.len() >= 2 {
                unit.add_watch(clause.lits()[0], i as u32);
                unit.add_watch(clause.lits()[1], i as u32);
            }
        }
        unit
    }

    /// Pushes clause `clause` onto `lit`'s watch list (O(1): head splice).
    pub fn add_watch(&mut self, lit: Lit, clause: u32) {
        let slot = if let Some(s) = self.free.pop() {
            self.records[s as usize] = WatchRecord { clause, next: self.heads[lit.code()] };
            s
        } else {
            self.records.push(WatchRecord { clause, next: self.heads[lit.code()] });
            (self.records.len() - 1) as u32
        };
        self.heads[lit.code()] = slot;
        self.sram_reads += 1; // old head fetch
        self.sram_writes += 2; // record + head update
    }

    /// Removes clause `clause` from `lit`'s watch list.
    ///
    /// # Panics
    ///
    /// Panics if the clause is not on the list.
    pub fn remove_watch(&mut self, lit: Lit, clause: u32) {
        let mut prev: Option<u32> = None;
        let mut cur = self.heads[lit.code()];
        self.sram_reads += 1;
        while cur != NULL_PTR {
            let rec = self.records[cur as usize];
            self.sram_reads += 1;
            if rec.clause == clause {
                match prev {
                    None => self.heads[lit.code()] = rec.next,
                    Some(p) => self.records[p as usize].next = rec.next,
                }
                self.sram_writes += 1;
                self.free.push(cur);
                return;
            }
            prev = Some(cur);
            cur = rec.next;
        }
        panic!("clause {clause} not watching {lit}");
    }

    /// Moves a watch from one literal to another (the BCP new-watch case).
    pub fn move_watch(&mut self, from: Lit, to: Lit, clause: u32) {
        self.remove_watch(from, clause);
        self.add_watch(to, clause);
    }

    /// Traverses `lit`'s watch list, returning the watching clauses in
    /// list order and counting the SRAM reads the traversal costs.
    pub fn watchers_of(&mut self, lit: Lit) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = self.heads[lit.code()];
        self.sram_reads += 1; // head fetch
        while cur != NULL_PTR {
            let rec = self.records[cur as usize];
            self.sram_reads += 1;
            out.push(rec.clause);
            cur = rec.next;
        }
        out
    }

    /// Length of `lit`'s watch list without charging SRAM accesses
    /// (diagnostics).
    pub fn watch_len(&self, lit: Lit) -> usize {
        let mut n = 0;
        let mut cur = self.heads[lit.code()];
        while cur != NULL_PTR {
            n += 1;
            cur = self.records[cur as usize].next;
        }
        n
    }
}

/// The implication FIFO atop the output interconnect (paper Fig. 6(e)).
#[derive(Debug, Clone, Default)]
pub struct BcpFifo {
    queue: VecDeque<Lit>,
    /// Total pushes.
    pub pushes: u64,
    /// Total pops.
    pub pops: u64,
    /// Conflict-triggered flushes.
    pub flushes: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
}

impl BcpFifo {
    /// An empty FIFO.
    pub fn new() -> Self {
        BcpFifo::default()
    }

    /// Enqueues an implication.
    pub fn push(&mut self, lit: Lit) {
        self.queue.push_back(lit);
        self.pushes += 1;
        self.max_occupancy = self.max_occupancy.max(self.queue.len());
    }

    /// Dequeues the next implication.
    pub fn pop(&mut self) -> Option<Lit> {
        let l = self.queue.pop_front();
        if l.is_some() {
            self.pops += 1;
        }
        l
    }

    /// Discards all pending implications (conflict priority handling:
    /// "the controller asserts priority control: it halts the ongoing DMA
    /// fetch, flushes the FIFO" — paper Sec. V-E).
    pub fn flush(&mut self) {
        self.queue.clear();
        self.flushes += 1;
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Timing/energy report of a symbolic-mode run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolicReport {
    /// Total cycles.
    pub cycles: u64,
    /// Decisions broadcast.
    pub decisions: u64,
    /// Implications propagated.
    pub implications: u64,
    /// Conflicts handled.
    pub conflicts: u64,
    /// Learned clauses recorded by the scalar PE.
    pub learned: u64,
    /// Watch-list SRAM reads.
    pub wl_sram_reads: u64,
    /// DMA fetches for clause-database misses.
    pub dma_fetches: u64,
    /// FIFO high-water mark.
    pub fifo_max_occupancy: usize,
    /// Raw energy events.
    pub events: EnergyEvents,
    /// Evaluated energy.
    pub energy: EnergyReport,
}

/// The symbolic-mode engine: real CDCL solving with hardware timing.
#[derive(Debug)]
pub struct SymbolicEngine {
    config: ArchConfig,
    energy_model: EnergyModel,
    dma: DmaModel,
}

impl SymbolicEngine {
    /// An engine for the given architecture.
    pub fn new(config: ArchConfig) -> Self {
        config.validate();
        let mut energy_model = EnergyModel::at_node(config.tech);
        energy_model.freq_mhz = config.freq_mhz;
        SymbolicEngine { config, energy_model, dma: DmaModel::paper() }
    }

    /// Solves `cnf` on the modeled hardware: the answer comes from the
    /// real CDCL solver; cycles and energy from replaying its event stream
    /// through the pipeline model.
    pub fn solve(&self, cnf: &Cnf) -> (Solution, SymbolicReport) {
        let tree = TreeEngine::new(self.config.tree_depth);
        // Average watch-list length from the hardware layout: drives the
        // per-implication SRAM traversal cost.
        let wl = WatchedLiteralUnit::from_cnf(cnf);
        let total_lits = 2 * cnf.num_vars();
        let avg_watch_len = if total_lits == 0 {
            0.0
        } else {
            (0..total_lits).map(|code| wl.watch_len(Lit::from_code(code))).sum::<usize>() as f64
                / total_lits as f64
        };

        // Does the clause database fit in the local SRAM? 16 bytes per
        // clause record + 8 per watch head entry.
        let db_bytes = 16 * cnf.num_clauses() + 8 * total_lits;
        let sram_bytes = self.config.sram_kib * 1024;
        let miss_rate =
            if db_bytes <= sram_bytes { 0.0 } else { 1.0 - sram_bytes as f64 / db_bytes as f64 };

        let mut observer = TimingObserver {
            tree,
            fifo: BcpFifo::new(),
            avg_watch_len,
            wl_layout: self.config.ablation.wl_memory_layout,
            num_clauses: cnf.num_clauses() as u64,
            miss_rate,
            dma: self.dma,
            cycles: 0,
            wl_sram_reads: 0,
            dma_fetches: 0,
            implications: 0,
            decisions: 0,
            conflicts: 0,
            learned: 0,
            events: EnergyEvents::default(),
        };
        let mut solver = CdclSolver::new(cnf);
        let solution =
            solver.solve_with(&mut observer, &[]).expect("unlimited solve always completes");

        // Cube-and-conquer distributes independent DPLL branches across
        // the PE array ("Multiple parallelable CDCLs", paper Fig. 9 top):
        // propagation work parallelizes across trees, leaving a fill/drain
        // residue.
        let pes = self.config.num_pes.max(1) as u64;
        observer.cycles = observer.cycles / pes + 2 * self.config.tree_depth as u64;
        observer.events.cycles = observer.cycles;
        let energy = self.energy_model.report(&observer.events);
        let report = SymbolicReport {
            cycles: observer.cycles,
            decisions: observer.decisions,
            implications: observer.implications,
            conflicts: observer.conflicts,
            learned: observer.learned,
            wl_sram_reads: observer.wl_sram_reads,
            dma_fetches: observer.dma_fetches,
            fifo_max_occupancy: observer.fifo.max_occupancy,
            events: observer.events,
            energy,
        };
        (solution, report)
    }
}

/// Observer charging hardware cycles per solver event.
#[derive(Debug)]
struct TimingObserver {
    tree: TreeEngine,
    fifo: BcpFifo,
    avg_watch_len: f64,
    wl_layout: bool,
    num_clauses: u64,
    miss_rate: f64,
    dma: DmaModel,
    cycles: u64,
    wl_sram_reads: u64,
    dma_fetches: u64,
    implications: u64,
    decisions: u64,
    conflicts: u64,
    learned: u64,
    events: EnergyEvents,
}

impl SolverObserver for TimingObserver {
    fn on_decision(&mut self, _lit: Lit, _level: u32) {
        self.decisions += 1;
        // Decision broadcast root→leaves (paper Fig. 9 T1–T4).
        self.cycles += self.tree.broadcast_cycles();
        self.events.tree_hops += self.tree.broadcast_hops();
        self.events.fifo_ops += 1;
    }

    fn on_implication(&mut self, lit: Lit, _clause_len: usize, _level: u32) {
        self.implications += 1;
        self.fifo.push(lit);
        let _ = self.fifo.pop();
        // Watch-list traversal: with the linked-list layout only the
        // relevant clauses are touched; without it BCP scans the database.
        let reads = if self.wl_layout {
            // head pointer + records on the list
            1 + self.avg_watch_len.ceil() as u64
        } else {
            self.num_clauses.max(1)
        };
        self.wl_sram_reads += reads;
        self.events.sram_reads += reads;
        self.events.fifo_ops += 2;
        // Implications pipeline through the reduction tree at one per
        // cycle once full (paper Sec. V-E); SRAM traversal overlaps with
        // the pipeline except for long lists.
        let traversal_overhang = reads.saturating_sub(self.tree.reduction_cycles());
        self.cycles += 1 + traversal_overhang / 4;
        // Clause-database miss: DMA fetch, half hidden by FIFO draining
        // (paper Fig. 9 overlaps DMA with queued implications).
        if self.miss_rate > 0.0 {
            let expected_misses = self.miss_rate; // per implication
            let dma_cycles = self.dma.transfer_cycles(32) as f64 * expected_misses * 0.5;
            self.cycles += dma_cycles as u64;
            self.dma_fetches += (expected_misses.ceil()) as u64;
            self.events.dram_bytes += (32.0 * expected_misses) as u64;
        }
        self.events.alu_ops += self.tree.num_leaves() as u64; // leaf comparators
        self.events.tree_hops += self.tree.reduction_cycles();
    }

    fn on_conflict(&mut self, _level: u32) {
        self.conflicts += 1;
        // Conflict propagates up with priority; FIFO flushes; DMA halts.
        self.cycles += self.tree.reduction_cycles() + 1;
        self.fifo.flush();
        self.events.fifo_ops += 1;
        self.events.tree_hops += self.tree.reduction_cycles();
    }

    fn on_learned(&mut self, len: usize, _lbd: u32) {
        self.learned += 1;
        // Scalar PE conflict analysis: ~2 cycles per learnt literal, plus
        // clause store writeback.
        self.cycles += 2 * len as u64 + 2;
        self.events.sram_writes += len as u64;
    }

    fn on_backjump(&mut self, from: u32, to: u32) {
        // Trail unwinding on the scalar PE.
        self.cycles += u64::from(from.saturating_sub(to));
    }

    fn on_restart(&mut self) {
        self.cycles += self.tree.broadcast_cycles() + 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationConfig;
    use reason_sat::gen::{pigeonhole, random_ksat};
    use reason_sat::Var;
    use std::collections::HashSet;

    #[test]
    fn wl_unit_matches_reference_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let num_vars = 12;
        let mut unit = WatchedLiteralUnit::new(num_vars);
        let mut reference: Vec<HashSet<u32>> = vec![HashSet::new(); 2 * num_vars];
        let mut rng = StdRng::seed_from_u64(5);
        // Random adds/removes, checking traversal agreement.
        for clause in 0..200u32 {
            let code = rng.gen_range(0..2 * num_vars);
            unit.add_watch(Lit::from_code(code), clause);
            reference[code].insert(clause);
        }
        for _ in 0..300 {
            let code = rng.gen_range(0..2 * num_vars);
            let lit = Lit::from_code(code);
            let watchers: HashSet<u32> = unit.watchers_of(lit).into_iter().collect();
            assert_eq!(watchers, reference[code]);
            // Move one watcher elsewhere.
            if let Some(&c) = reference[code].iter().next() {
                let to = rng.gen_range(0..2 * num_vars);
                unit.move_watch(lit, Lit::from_code(to), c);
                reference[code].remove(&c);
                reference[to].insert(c);
            }
        }
        assert!(unit.sram_reads > 0);
        assert!(unit.sram_writes > 0);
    }

    #[test]
    fn fifo_semantics() {
        let mut fifo = BcpFifo::new();
        let a = Var::new(0).pos();
        let b = Var::new(1).neg();
        fifo.push(a);
        fifo.push(b);
        assert_eq!(fifo.len(), 2);
        assert_eq!(fifo.pop(), Some(a));
        fifo.flush();
        assert!(fifo.is_empty());
        assert_eq!(fifo.flushes, 1);
        assert_eq!(fifo.max_occupancy, 2);
    }

    #[test]
    fn engine_answers_match_software_solver() {
        let engine = SymbolicEngine::new(ArchConfig::paper());
        for seed in 0..6 {
            let cnf = random_ksat(15, 63, 3, seed);
            let (hw, report) = engine.solve(&cnf);
            let sw = CdclSolver::new(&cnf).solve();
            assert_eq!(hw.is_sat(), sw.is_sat(), "seed {seed}");
            assert!(report.cycles > 0);
            assert!(report.energy.total_j() > 0.0);
        }
    }

    #[test]
    fn unsat_instances_cost_conflict_cycles() {
        let engine = SymbolicEngine::new(ArchConfig::paper());
        let (sol, report) = engine.solve(&pigeonhole(4));
        assert!(!sol.is_sat());
        assert!(report.conflicts > 0);
        assert!(report.learned > 0);
        assert!(report.fifo_max_occupancy <= 1, "fifo drains every implication");
    }

    #[test]
    fn wl_layout_ablation_costs_cycles() {
        let mut no_wl = ArchConfig::paper();
        no_wl.ablation = AblationConfig { wl_memory_layout: false, ..AblationConfig::default() };
        let cnf = random_ksat(20, 85, 3, 9);
        let (_, with_layout) = SymbolicEngine::new(ArchConfig::paper()).solve(&cnf);
        let (_, without) = SymbolicEngine::new(no_wl).solve(&cnf);
        assert!(
            without.wl_sram_reads > with_layout.wl_sram_reads,
            "database scans must touch more SRAM than watch lists"
        );
        assert!(without.cycles >= with_layout.cycles);
    }

    #[test]
    fn small_db_has_no_dma_traffic() {
        let engine = SymbolicEngine::new(ArchConfig::paper());
        let cnf = random_ksat(10, 40, 3, 2);
        let (_, report) = engine.solve(&cnf);
        assert_eq!(report.dma_fetches, 0, "40 clauses fit in 1.25 MB SRAM");
    }
}
