//! Design-space exploration over (D, B, R) — paper Sec. V-F.
//!
//! The paper sweeps tree depth, bank count, and registers per bank,
//! evaluating latency, energy, and energy-delay product on representative
//! workloads, and selects (D=3, B=64, R=32). [`explore_design_space`]
//! reruns that sweep with a caller-provided evaluation function (the bench
//! harness passes a real compiled-workload runner).

use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Tree depth D.
    pub tree_depth: usize,
    /// Bank count B.
    pub num_banks: usize,
    /// Registers per bank R.
    pub regs_per_bank: usize,
    /// Measured latency (cycles).
    pub cycles: u64,
    /// Measured energy (joules).
    pub energy_j: f64,
}

impl DesignPoint {
    /// Energy-delay product (J·cycles) — the paper's selection metric.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.cycles as f64
    }
}

/// Sweeps the (D, B, R) grid, evaluating each point with `evaluate`
/// (which receives a fully formed [`ArchConfig`] and returns
/// `(cycles, energy_j)`). Returns all points sorted by EDP, best first.
pub fn explore_design_space<F>(
    depths: &[usize],
    banks: &[usize],
    regs: &[usize],
    base: &ArchConfig,
    mut evaluate: F,
) -> Vec<DesignPoint>
where
    F: FnMut(&ArchConfig) -> (u64, f64),
{
    let mut points = Vec::new();
    for &d in depths {
        for &b in banks {
            for &r in regs {
                let config = ArchConfig { tree_depth: d, num_banks: b, regs_per_bank: r, ..*base };
                config.validate();
                let (cycles, energy_j) = evaluate(&config);
                points.push(DesignPoint {
                    tree_depth: d,
                    num_banks: b,
                    regs_per_bank: r,
                    cycles,
                    energy_j,
                });
            }
        }
    }
    points.sort_by(|a, b| a.edp().partial_cmp(&b.edp()).expect("finite EDP"));
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid_and_sorts_by_edp() {
        let base = ArchConfig::paper();
        // Synthetic evaluator: deeper trees are faster but costlier; the
        // middle point should win on EDP.
        let points = explore_design_space(&[2, 3, 4], &[32, 64], &[16, 32], &base, |c| {
            let cycles = 1000 / c.tree_depth as u64 + (c.num_banks as u64) / 8;
            let energy = 1e-6 * (c.tree_depth * c.num_banks * c.regs_per_bank) as f64;
            (cycles, energy)
        });
        assert_eq!(points.len(), 3 * 2 * 2);
        for w in points.windows(2) {
            assert!(w[0].edp() <= w[1].edp());
        }
    }

    #[test]
    fn edp_definition() {
        let p = DesignPoint {
            tree_depth: 3,
            num_banks: 64,
            regs_per_bank: 32,
            cycles: 100,
            energy_j: 0.5,
        };
        assert_eq!(p.edp(), 50.0);
    }
}
