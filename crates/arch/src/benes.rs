//! A real Benes network with route computation.
//!
//! REASON uses an input Benes crossbar so that *any* conflict-free
//! operand-to-leaf assignment is routable, which "decouples SRAM banking
//! from DAG mapping and simplifies compilation of irregular graph
//! structures" (paper Sec. V-A/V-C). To make that claim concrete, this
//! module implements the network itself: the recursive butterfly
//! construction and the classic looping algorithm that computes switch
//! settings for an arbitrary permutation in `O(N log N)`.

use std::fmt;

/// Errors raised by routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The destination vector is not a permutation (duplicate or
    /// out-of-range target).
    NotPermutation,
    /// The request size does not match the network size.
    SizeMismatch,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NotPermutation => write!(f, "destinations do not form a permutation"),
            RouteError::SizeMismatch => write!(f, "request size differs from network size"),
        }
    }
}

impl std::error::Error for RouteError {}

/// An `N`-input Benes network (`N` a power of two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenesNetwork {
    size: usize,
}

impl BenesNetwork {
    /// Creates a network with `size` inputs.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a power of two and at least 2.
    pub fn new(size: usize) -> Self {
        assert!(size >= 2 && size.is_power_of_two(), "Benes size must be a power of two >= 2");
        BenesNetwork { size }
    }

    /// Number of inputs.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of switch stages: `2·log2(N) − 1`.
    pub fn num_stages(&self) -> usize {
        2 * self.size.trailing_zeros() as usize - 1
    }

    /// Total 2×2 switches in the network.
    pub fn num_switches(&self) -> usize {
        self.num_stages() * self.size / 2
    }

    /// Computes switch settings routing input `i` to output `perm[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] if `perm` is not a permutation of
    /// `0..size`.
    pub fn route(&self, perm: &[usize]) -> Result<BenesRouting, RouteError> {
        if perm.len() != self.size {
            return Err(RouteError::SizeMismatch);
        }
        let mut seen = vec![false; self.size];
        for &p in perm {
            if p >= self.size || seen[p] {
                return Err(RouteError::NotPermutation);
            }
            seen[p] = true;
        }
        Ok(route_rec(perm))
    }

    /// Routes a partial assignment: `dests[i] = Some(o)` requires input
    /// `i` to reach output `o`; `None` inputs are assigned to the unused
    /// outputs arbitrarily.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] on duplicate or out-of-range targets.
    pub fn route_partial(&self, dests: &[Option<usize>]) -> Result<BenesRouting, RouteError> {
        if dests.len() != self.size {
            return Err(RouteError::SizeMismatch);
        }
        let mut used = vec![false; self.size];
        for d in dests.iter().flatten() {
            if *d >= self.size || used[*d] {
                return Err(RouteError::NotPermutation);
            }
            used[*d] = true;
        }
        let mut free_outputs = (0..self.size).filter(|&o| !used[o]);
        let perm: Vec<usize> = dests
            .iter()
            .map(|d| d.unwrap_or_else(|| free_outputs.next().expect("counts match")))
            .collect();
        self.route(&perm)
    }
}

/// Computed switch settings for one routed permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenesRouting {
    size: usize,
    /// Input-stage cross bits (one per switch); for `size == 2` this is
    /// the single switch.
    input_cross: Vec<bool>,
    /// Output-stage cross bits (empty for `size == 2`).
    output_cross: Vec<bool>,
    upper: Option<Box<BenesRouting>>,
    lower: Option<Box<BenesRouting>>,
}

impl BenesRouting {
    /// Applies the routing to a value vector: `result[perm[i]] =
    /// inputs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the network size.
    pub fn apply<T: Copy + Default>(&self, inputs: &[T]) -> Vec<T> {
        assert_eq!(inputs.len(), self.size, "input length mismatch");
        if self.size == 2 {
            return if self.input_cross[0] {
                vec![inputs[1], inputs[0]]
            } else {
                vec![inputs[0], inputs[1]]
            };
        }
        let half = self.size / 2;
        let mut upper_in = vec![T::default(); half];
        let mut lower_in = vec![T::default(); half];
        for s in 0..half {
            let (a, b) = (inputs[2 * s], inputs[2 * s + 1]);
            if self.input_cross[s] {
                upper_in[s] = b;
                lower_in[s] = a;
            } else {
                upper_in[s] = a;
                lower_in[s] = b;
            }
        }
        let upper_out = self.upper.as_ref().expect("inner network").apply(&upper_in);
        let lower_out = self.lower.as_ref().expect("inner network").apply(&lower_in);
        let mut out = vec![T::default(); self.size];
        for t in 0..half {
            if self.output_cross[t] {
                out[2 * t] = lower_out[t];
                out[2 * t + 1] = upper_out[t];
            } else {
                out[2 * t] = upper_out[t];
                out[2 * t + 1] = lower_out[t];
            }
        }
        out
    }

    /// Total switch crossings for all `N` routed values (each value
    /// crosses every stage once): `N · (2·log2 N − 1)` — the Benes energy
    /// event count.
    pub fn switch_crossings(&self) -> u64 {
        let stages = 2 * (self.size as u64).trailing_zeros() as u64 - 1;
        self.size as u64 * stages
    }
}

/// The looping algorithm: decompose `perm` into input/output stage
/// settings plus two half-size sub-permutations.
fn route_rec(perm: &[usize]) -> BenesRouting {
    let n = perm.len();
    if n == 2 {
        return BenesRouting {
            size: 2,
            input_cross: vec![perm[0] == 1],
            output_cross: Vec::new(),
            upper: None,
            lower: None,
        };
    }
    let half = n / 2;
    let mut inv = vec![0usize; n];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    // subnet[i]: Some(true) = upper, Some(false) = lower.
    let mut subnet: Vec<Option<bool>> = vec![None; n];
    for start_switch in 0..half {
        if subnet[2 * start_switch].is_some() {
            continue;
        }
        // Start a chain: route the even port upward.
        let mut i = 2 * start_switch;
        subnet[i] = Some(true);
        loop {
            // The output partner of perm[i] must come through the other
            // subnet.
            let o = perm[i];
            let partner_out = o ^ 1;
            let i2 = inv[partner_out];
            let side = !subnet[i].expect("chain head assigned");
            if subnet[i2].is_some() {
                break; // cycle closed
            }
            subnet[i2] = Some(side);
            // The input partner of i2 must take the other side of its
            // switch.
            let i3 = i2 ^ 1;
            if subnet[i3].is_some() {
                break;
            }
            subnet[i3] = Some(!side);
            i = i3;
        }
    }

    let mut input_cross = vec![false; half];
    let mut upper_perm = vec![0usize; half];
    let mut lower_perm = vec![0usize; half];
    let mut output_cross = vec![false; half];
    for s in 0..half {
        let even_up = subnet[2 * s].expect("all inputs assigned");
        input_cross[s] = !even_up;
        let (i_up, i_lo) = if even_up { (2 * s, 2 * s + 1) } else { (2 * s + 1, 2 * s) };
        upper_perm[s] = perm[i_up] / 2;
        lower_perm[s] = perm[i_lo] / 2;
        // Output switch for the upper path: cross when it exits on the odd
        // port.
        output_cross[perm[i_up] / 2] = perm[i_up] & 1 == 1;
    }

    BenesRouting {
        size: n,
        input_cross,
        output_cross,
        upper: Some(Box::new(route_rec(&upper_perm))),
        lower: Some(Box::new(route_rec(&lower_perm))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn check_permutation(net: &BenesNetwork, perm: &[usize]) {
        let routing = net.route(perm).expect("routable");
        let inputs: Vec<usize> = (0..net.size()).collect();
        let outputs = routing.apply(&inputs);
        for (i, &o) in perm.iter().enumerate() {
            assert_eq!(outputs[o], i, "input {i} should land at output {o}: {outputs:?}");
        }
    }

    #[test]
    fn routes_identity_and_reversal() {
        for logn in 1..=5 {
            let n = 1 << logn;
            let net = BenesNetwork::new(n);
            let identity: Vec<usize> = (0..n).collect();
            check_permutation(&net, &identity);
            let reversal: Vec<usize> = (0..n).rev().collect();
            check_permutation(&net, &reversal);
        }
    }

    #[test]
    fn routes_random_permutations() {
        let mut rng = StdRng::seed_from_u64(99);
        for logn in 1..=6 {
            let n = 1 << logn;
            let net = BenesNetwork::new(n);
            for _ in 0..20 {
                let mut perm: Vec<usize> = (0..n).collect();
                perm.shuffle(&mut rng);
                check_permutation(&net, &perm);
            }
        }
    }

    #[test]
    fn rejects_non_permutations() {
        let net = BenesNetwork::new(4);
        assert_eq!(net.route(&[0, 0, 1, 2]), Err(RouteError::NotPermutation));
        assert_eq!(net.route(&[0, 1, 2, 9]), Err(RouteError::NotPermutation));
        assert_eq!(net.route(&[0, 1]), Err(RouteError::SizeMismatch));
    }

    #[test]
    fn partial_routing_honors_constraints() {
        let net = BenesNetwork::new(8);
        let dests = [Some(3), None, Some(0), None, Some(7), None, None, None];
        let routing = net.route_partial(&dests).unwrap();
        let inputs: Vec<usize> = (0..8).collect();
        let outputs = routing.apply(&inputs);
        assert_eq!(outputs[3], 0);
        assert_eq!(outputs[0], 2);
        assert_eq!(outputs[7], 4);
    }

    #[test]
    fn partial_routing_rejects_duplicates() {
        let net = BenesNetwork::new(4);
        assert_eq!(
            net.route_partial(&[Some(1), Some(1), None, None]),
            Err(RouteError::NotPermutation)
        );
    }

    #[test]
    fn stage_and_switch_counts() {
        let net = BenesNetwork::new(8);
        assert_eq!(net.num_stages(), 5);
        assert_eq!(net.num_switches(), 20);
        let routing = net.route(&(0..8).collect::<Vec<_>>()).unwrap();
        assert_eq!(routing.switch_crossings(), 8 * 5);
    }

    #[test]
    fn size_two_network() {
        let net = BenesNetwork::new(2);
        assert_eq!(net.num_stages(), 1);
        check_permutation(&net, &[1, 0]);
        check_permutation(&net, &[0, 1]);
    }
}
