//! Architectural configuration (paper Sec. V-F).

use serde::{Deserialize, Serialize};

use crate::energy::TechNode;

/// REASON architecture parameters.
///
/// The paper's design-space exploration selects `D = 3`, `B = 64`,
/// `R = 32` with 12 tree PEs (Fig. 10: 12 PEs / 80 nodes, 1.25 MB SRAM,
/// 500 MHz); [`ArchConfig::paper`] reproduces that design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Tree depth D: each PE tree has `2^(D-1)` leaves and `2^D - 1`
    /// compute nodes.
    pub tree_depth: usize,
    /// Number of parallel register banks B.
    pub num_banks: usize,
    /// Registers per bank R.
    pub regs_per_bank: usize,
    /// Number of tree PEs.
    pub num_pes: usize,
    /// Shared local SRAM in KiB.
    pub sram_kib: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: u32,
    /// Technology node.
    pub tech: TechNode,
    /// Ablation switches.
    pub ablation: AblationConfig,
}

/// Switches disabling individual hardware techniques, for the Sec. VII-C
/// ablation ("w/o scheduling / reconfigurable array / bank mapping").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Pipeline-aware instruction scheduling (off → every instruction
    /// waits for the full pipeline to drain).
    pub scheduling: bool,
    /// Reconfigurable datapath (off → mode switches flush the pipeline and
    /// cost a reconfiguration penalty per kernel).
    pub reconfigurable: bool,
    /// Conflict-aware register-bank mapping (off → operands land in
    /// banks round-robin, so dual-port conflicts occur).
    pub bank_mapping: bool,
    /// Linked-list watched-literal memory layout (off → BCP scans the
    /// whole clause database).
    pub wl_memory_layout: bool,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            scheduling: true,
            reconfigurable: true,
            bank_mapping: true,
            wl_memory_layout: true,
        }
    }
}

impl ArchConfig {
    /// The paper's chosen design point (Fig. 10 / Sec. V-F).
    pub fn paper() -> Self {
        ArchConfig {
            tree_depth: 3,
            num_banks: 64,
            regs_per_bank: 32,
            num_pes: 12,
            sram_kib: 1280,
            freq_mhz: 500,
            tech: TechNode::N28,
            ablation: AblationConfig::default(),
        }
    }

    /// The DPU-like baseline template of Table III (8 PEs / 56 nodes,
    /// fixed dataflow — used by `reason-sim`'s DPU model).
    pub fn dpu_like() -> Self {
        ArchConfig {
            tree_depth: 3,
            num_banks: 32,
            regs_per_bank: 32,
            num_pes: 8,
            sram_kib: 2400,
            freq_mhz: 500,
            tech: TechNode::N28,
            ablation: AblationConfig { reconfigurable: false, ..AblationConfig::default() },
        }
    }

    /// Compute nodes per PE tree (`2^D - 1`).
    pub fn nodes_per_pe(&self) -> usize {
        (1 << self.tree_depth) - 1
    }

    /// Leaves per PE tree (`2^(D-1)`).
    pub fn leaves_per_pe(&self) -> usize {
        1 << (self.tree_depth - 1)
    }

    /// Total compute nodes across PEs.
    pub fn total_nodes(&self) -> usize {
        self.num_pes * self.nodes_per_pe()
    }

    /// Pipeline depth in cycles for one block issue: operand fetch,
    /// `D` tree levels, writeback.
    pub fn pipeline_depth(&self) -> usize {
        self.tree_depth + 2
    }

    /// Cycle time in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.freq_mhz as f64 * 1e6)
    }

    /// Total register-file capacity (words).
    pub fn regfile_words(&self) -> usize {
        self.num_banks * self.regs_per_bank
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `num_banks` is not a power of
    /// two (the Benes network requires it).
    pub fn validate(&self) {
        assert!(self.tree_depth >= 1, "tree depth must be at least 1");
        assert!(self.num_banks.is_power_of_two(), "bank count must be a power of two");
        assert!(self.regs_per_bank >= 1, "need at least one register per bank");
        assert!(self.num_pes >= 1, "need at least one PE");
        assert!(self.freq_mhz > 0, "frequency must be positive");
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_matches_fig10() {
        let c = ArchConfig::paper();
        c.validate();
        assert_eq!(c.tree_depth, 3);
        assert_eq!(c.num_banks, 64);
        assert_eq!(c.regs_per_bank, 32);
        assert_eq!(c.num_pes, 12);
        assert_eq!(c.freq_mhz, 500);
        // 12 PEs x 7 nodes = 84 compute nodes (the paper rounds its count
        // to 80 after floorplanning).
        assert_eq!(c.total_nodes(), 84);
        assert_eq!(c.leaves_per_pe(), 4);
    }

    #[test]
    fn dpu_baseline_matches_table3() {
        let c = ArchConfig::dpu_like();
        c.validate();
        assert_eq!(c.num_pes, 8);
        assert_eq!(c.total_nodes(), 56);
        assert!(!c.ablation.reconfigurable);
    }

    #[test]
    fn derived_quantities() {
        let c = ArchConfig::paper();
        assert_eq!(c.pipeline_depth(), 5);
        assert_eq!(c.regfile_words(), 64 * 32);
        assert!((c.cycle_seconds() - 2e-9).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_banks() {
        let mut c = ArchConfig::paper();
        c.num_banks = 48;
        c.validate();
    }
}
