//! `reason-arch` — the REASON hardware architecture model (paper Sec. V).
//!
//! REASON is a reconfigurable co-processor built from *tree-structured
//! processing elements*: each PE is a bidirectional binary tree of
//! two-input compute nodes fed by a banked register file through a Benes
//! input crossbar, with a watched-literal memory unit and a BCP FIFO for
//! symbolic (SAT) execution. This crate models that microarchitecture at
//! cycle granularity and layers an event-based energy/area model on top,
//! calibrated to the paper's physical design (TSMC 28 nm, 6 mm², 2.12 W,
//! 1.25 MB SRAM, 12 PEs / 80 tree nodes, 500 MHz — Fig. 10 / Table III).
//!
//! Modules:
//!
//! * [`config`] — architectural parameters (tree depth D, banks B,
//!   registers per bank R, PE count) with the paper's chosen design point
//!   and ablation switches.
//! * [`energy`] — per-event energy constants, technology scaling
//!   (28 → 12 → 8 nm, reproducing Table III), power/area reporting.
//! * [`benes`] — a real Benes network: recursive construction and the
//!   looping route-assignment algorithm, so operand-to-leaf routing is
//!   *computed*, not assumed (paper Sec. V-C "flexible interconnect").
//! * [`tree`] — the reconfigurable tree engine: broadcast and reduction
//!   pipelines with per-level latency (paper Fig. 8, Fig. 9).
//! * [`mem`] — banked SRAM/register-file model with dual-port conflict
//!   accounting, scratchpad, and DMA/prefetch latency.
//! * [`vliw`] — the VLIW program format emitted by `reason-compiler` and
//!   a cycle-accurate executor (functional + timing + energy) for
//!   probabilistic/DAG mode.
//! * [`bcp`] — symbolic mode: the watched-literal unit over a linked-list
//!   SRAM layout, the BCP FIFO, and a timing engine that replays CDCL
//!   solver events through the hardware pipeline (paper Fig. 6(e), Fig. 9).
//! * [`noc`] — interconnect scalability models (tree vs. mesh vs.
//!   all-to-one) behind Fig. 8.
//! * [`dse`] — design-space exploration over (D, B, R) as in Sec. V-F.

pub mod bcp;
pub mod benes;
pub mod config;
pub mod dse;
pub mod energy;
pub mod mem;
pub mod noc;
pub mod tree;
pub mod vliw;

pub use bcp::{BcpFifo, SymbolicEngine, SymbolicReport, WatchedLiteralUnit};
pub use benes::{BenesNetwork, BenesRouting, RouteError};
pub use config::{AblationConfig, ArchConfig};
pub use dse::{explore_design_space, DesignPoint};
pub use energy::{EnergyEvents, EnergyModel, EnergyReport, TechNode};
pub use mem::{BankAddr, MemoryStats, RegisterBanks};
pub use noc::{broadcast_latency_cycles, noc_latency_breakdown, NocTopology};
pub use tree::{TreeEngine, TreeOp};
pub use vliw::{BlockNode, BlockOperand, ExecutionReport, VliwExecutor, VliwInstr, VliwProgram};
