//! The reconfigurable tree engine (RTE): structure and timing.
//!
//! Each PE's datapath is a bidirectional binary tree (paper Fig. 6(c,d)):
//! downward traversal broadcasts (decisions, operands), upward traversal
//! reduces (implications, partial sums). Levels act as pipeline stages, so
//! a value crosses the tree in `depth` cycles and back-to-back operations
//! overlap. Nodes are cycle-reconfigurable among `Add`, `Mul`, `Max`,
//! compare (symbolic BCP), and forward.

use serde::{Deserialize, Serialize};

/// Per-node datapath operation (paper Fig. 6(d): an ALU with adder,
/// multiplier/comparator, and forwarding logic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TreeOp {
    /// Two-input addition.
    Add,
    /// Two-input multiplication.
    Mul,
    /// Two-input maximum.
    Max,
    /// Complement `1 - x` of the left input (right ignored).
    Not,
    /// Forward the left input unchanged.
    Pass,
}

impl TreeOp {
    /// Applies the operation.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            TreeOp::Add => a + b,
            TreeOp::Mul => a * b,
            TreeOp::Max => a.max(b),
            TreeOp::Not => 1.0 - a,
            TreeOp::Pass => a,
        }
    }
}

/// Structure and latency model of one tree PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeEngine {
    /// Number of levels (`depth` = D); the tree has `2^(D-1)` leaves and
    /// `2^D − 1` nodes.
    pub depth: usize,
}

impl TreeEngine {
    /// A tree of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "tree depth must be positive");
        TreeEngine { depth }
    }

    /// Leaf count.
    pub fn num_leaves(&self) -> usize {
        1 << (self.depth - 1)
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        (1 << self.depth) - 1
    }

    /// Cycles for one value to traverse root→leaf (broadcast) — one cycle
    /// per level (paper Fig. 9: T1–T4 for a depth-4 path).
    pub fn broadcast_cycles(&self) -> u64 {
        self.depth as u64
    }

    /// Cycles for a reduction leaf→root.
    pub fn reduction_cycles(&self) -> u64 {
        self.depth as u64
    }

    /// Cycles to stream `count` independent broadcasts through the
    /// pipelined tree: fill latency plus one per extra item.
    pub fn pipelined_broadcast_cycles(&self, count: u64) -> u64 {
        if count == 0 {
            0
        } else {
            self.broadcast_cycles() + (count - 1)
        }
    }

    /// Link traversals (energy events) of a full broadcast to all leaves:
    /// every tree edge carries the value once.
    pub fn broadcast_hops(&self) -> u64 {
        (self.num_nodes() - 1) as u64
    }

    /// Evaluates a full reduction over `leaves` values with node op `op`,
    /// returning the root value (functional model of reduction mode).
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len()` differs from the leaf count.
    pub fn reduce(&self, op: TreeOp, leaves: &[f64]) -> f64 {
        assert_eq!(leaves.len(), self.num_leaves(), "leaf count mismatch");
        let mut level: Vec<f64> = leaves.to_vec();
        while level.len() > 1 {
            level = level.chunks(2).map(|pair| op.apply(pair[0], pair[1])).collect();
        }
        level[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts() {
        let t = TreeEngine::new(3);
        assert_eq!(t.num_leaves(), 4);
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.broadcast_cycles(), 3);
        assert_eq!(t.broadcast_hops(), 6);
    }

    #[test]
    fn ops_apply() {
        assert_eq!(TreeOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(TreeOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(TreeOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(TreeOp::Not.apply(0.25, 9.0), 0.75);
        assert_eq!(TreeOp::Pass.apply(0.25, 9.0), 0.25);
    }

    #[test]
    fn reduction_is_correct() {
        let t = TreeEngine::new(3);
        assert_eq!(t.reduce(TreeOp::Add, &[1.0, 2.0, 3.0, 4.0]), 10.0);
        assert_eq!(t.reduce(TreeOp::Max, &[1.0, 9.0, 3.0, 4.0]), 9.0);
        assert_eq!(t.reduce(TreeOp::Mul, &[1.0, 2.0, 3.0, 4.0]), 24.0);
    }

    #[test]
    fn pipelining_overlaps() {
        let t = TreeEngine::new(4);
        assert_eq!(t.pipelined_broadcast_cycles(0), 0);
        assert_eq!(t.pipelined_broadcast_cycles(1), 4);
        // 10 items: 4 cycles fill + 9 more.
        assert_eq!(t.pipelined_broadcast_cycles(10), 13);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        let _ = TreeEngine::new(0);
    }
}
