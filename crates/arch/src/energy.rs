//! Event-based energy, power, and area model with technology scaling.
//!
//! Calibration anchors come straight from the paper: the 28 nm design
//! point draws 2.12 W average at 500 MHz in 6 mm² (Fig. 10), and Table III
//! gives the DeepScaleTool-derived 12 nm (1.37 mm², 1.21 W) and 8 nm
//! (0.51 mm², 0.98 W) scalings at 0.8 V / 500 MHz. Dynamic energy is
//! accumulated per microarchitectural event; static power is a fixed
//! fraction of the calibrated average.

use serde::{Deserialize, Serialize};

/// Process node of the physical design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// TSMC 28 nm (the paper's primary design point).
    N28,
    /// 12 nm scaling per DeepScaleTool.
    N12,
    /// 8 nm scaling per DeepScaleTool.
    N8,
}

impl TechNode {
    /// Die area of the REASON design at this node, mm² (Table III).
    pub fn area_mm2(self) -> f64 {
        match self {
            TechNode::N28 => 6.00,
            TechNode::N12 => 1.37,
            TechNode::N8 => 0.51,
        }
    }

    /// Average power of the REASON design at this node, W (Table III).
    pub fn avg_power_w(self) -> f64 {
        match self {
            TechNode::N28 => 2.12,
            TechNode::N12 => 1.21,
            TechNode::N8 => 0.98,
        }
    }

    /// Dynamic-energy scale factor relative to 28 nm.
    pub fn energy_scale(self) -> f64 {
        self.avg_power_w() / TechNode::N28.avg_power_w()
    }
}

/// Counts of energy-bearing microarchitectural events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyEvents {
    /// Two-input ALU operations (add/mul/max/compare) in tree nodes.
    pub alu_ops: u64,
    /// Register-bank reads.
    pub reg_reads: u64,
    /// Register-bank writes.
    pub reg_writes: u64,
    /// SRAM (shared scratchpad / clause store) reads of 32-bit words.
    pub sram_reads: u64,
    /// SRAM writes of 32-bit words.
    pub sram_writes: u64,
    /// Benes switch traversals (per 2×2 switch crossing).
    pub benes_hops: u64,
    /// Inter-node tree link traversals (broadcast/reduction).
    pub tree_hops: u64,
    /// Bytes transferred from off-chip DRAM.
    pub dram_bytes: u64,
    /// FIFO pushes/pops.
    pub fifo_ops: u64,
    /// Total cycles elapsed (for static energy).
    pub cycles: u64,
}

impl EnergyEvents {
    /// Accumulates another event set.
    pub fn accumulate(&mut self, other: &EnergyEvents) {
        self.alu_ops += other.alu_ops;
        self.reg_reads += other.reg_reads;
        self.reg_writes += other.reg_writes;
        self.sram_reads += other.sram_reads;
        self.sram_writes += other.sram_writes;
        self.benes_hops += other.benes_hops;
        self.tree_hops += other.tree_hops;
        self.dram_bytes += other.dram_bytes;
        self.fifo_ops += other.fifo_ops;
        self.cycles += other.cycles;
    }
}

/// Energy/power/area results for a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic energy in joules.
    pub dynamic_j: f64,
    /// Static energy in joules.
    pub static_j: f64,
    /// Wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Average power in watts.
    pub avg_power_w: f64,
    /// Die area in mm².
    pub area_mm2: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }
}

/// Per-event energy constants (picojoules) at 28 nm, with tech scaling.
///
/// The constants follow standard 28 nm energy folklore (≈0.5 pJ for a
/// 32-bit ALU op, a few pJ per small-SRAM access, ~20 pJ/B for LPDDR
/// traffic) and are jointly chosen so that a fully utilized 12-PE array at
/// 500 MHz lands at the paper's 2.12 W average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Technology node.
    pub tech: TechNode,
    /// Clock frequency (MHz) used for static energy and wall-clock time.
    pub freq_mhz: u32,
    /// pJ per two-input ALU op.
    pub alu_pj: f64,
    /// pJ per register-bank access.
    pub reg_pj: f64,
    /// pJ per 32-bit SRAM access.
    pub sram_pj: f64,
    /// pJ per Benes 2×2 switch crossing.
    pub benes_pj: f64,
    /// pJ per tree link traversal.
    pub tree_hop_pj: f64,
    /// pJ per DRAM byte.
    pub dram_pj_per_byte: f64,
    /// pJ per FIFO operation.
    pub fifo_pj: f64,
    /// Static power in watts at 28 nm.
    pub static_w: f64,
}

impl EnergyModel {
    /// The calibrated 28 nm model at 500 MHz.
    pub fn paper() -> Self {
        EnergyModel {
            tech: TechNode::N28,
            freq_mhz: 500,
            alu_pj: 0.9,
            reg_pj: 0.35,
            sram_pj: 2.4,
            benes_pj: 0.12,
            tree_hop_pj: 0.18,
            dram_pj_per_byte: 20.0,
            fifo_pj: 0.4,
            static_w: 0.32,
        }
    }

    /// The same constants scaled to another node.
    pub fn at_node(tech: TechNode) -> Self {
        EnergyModel { tech, ..EnergyModel::paper() }
    }

    /// Evaluates an event trace into an energy report.
    pub fn report(&self, events: &EnergyEvents) -> EnergyReport {
        let scale = self.tech.energy_scale();
        let dynamic_pj = events.alu_ops as f64 * self.alu_pj
            + (events.reg_reads + events.reg_writes) as f64 * self.reg_pj
            + (events.sram_reads + events.sram_writes) as f64 * self.sram_pj
            + events.benes_hops as f64 * self.benes_pj
            + events.tree_hops as f64 * self.tree_hop_pj
            + events.dram_bytes as f64 * self.dram_pj_per_byte
            + events.fifo_ops as f64 * self.fifo_pj;
        let dynamic_j = dynamic_pj * 1e-12 * scale;
        let seconds = events.cycles as f64 / (self.freq_mhz as f64 * 1e6);
        let static_j = self.static_w * scale * seconds;
        let total = dynamic_j + static_j;
        EnergyReport {
            dynamic_j,
            static_j,
            seconds,
            avg_power_w: if seconds > 0.0 { total / seconds } else { 0.0 },
            area_mm2: self.tech.area_mm2(),
        }
    }

    /// A busy-workload event profile for one cycle of a fully active
    /// array, used to sanity-check the power calibration against the
    /// paper's 2.12 W.
    pub fn busy_cycle_events(
        num_pes: usize,
        nodes_per_pe: usize,
        leaves_per_pe: usize,
    ) -> EnergyEvents {
        EnergyEvents {
            alu_ops: (num_pes * nodes_per_pe) as u64,
            reg_reads: (num_pes * leaves_per_pe * 2) as u64,
            reg_writes: num_pes as u64,
            sram_reads: (num_pes * 2) as u64,
            sram_writes: num_pes as u64,
            benes_hops: (num_pes * leaves_per_pe * 6) as u64,
            tree_hops: (num_pes * nodes_per_pe) as u64,
            // Symbolic/probabilistic kernels are DRAM-bound (paper
            // Table II: 60-70% bandwidth utilization) — ~160 B/cycle of a
            // 208 B/cycle peak.
            dram_bytes: 160,
            fifo_ops: num_pes as u64,
            cycles: 1,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tech_scaling_reproduces_table3() {
        assert_eq!(TechNode::N28.area_mm2(), 6.00);
        assert_eq!(TechNode::N12.area_mm2(), 1.37);
        assert_eq!(TechNode::N8.area_mm2(), 0.51);
        assert_eq!(TechNode::N28.avg_power_w(), 2.12);
        assert_eq!(TechNode::N12.avg_power_w(), 1.21);
        assert_eq!(TechNode::N8.avg_power_w(), 0.98);
    }

    #[test]
    fn busy_power_lands_near_paper_average() {
        // A fully busy 12-PE array at 500 MHz should draw on the order of
        // the paper's 2.12 W (±40%): this pins the constants to reality.
        let model = EnergyModel::paper();
        let per_cycle = EnergyModel::busy_cycle_events(12, 7, 4);
        let mut events = EnergyEvents::default();
        for _ in 0..1000 {
            events.accumulate(&per_cycle);
        }
        let report = model.report(&events);
        assert!(
            (1.3..=3.0).contains(&report.avg_power_w),
            "busy power {} W is far from 2.12 W",
            report.avg_power_w
        );
    }

    #[test]
    fn energy_scales_down_with_node() {
        let events = {
            let mut e = EnergyEvents::default();
            for _ in 0..100 {
                e.accumulate(&EnergyModel::busy_cycle_events(12, 7, 4));
            }
            e
        };
        let e28 = EnergyModel::at_node(TechNode::N28).report(&events);
        let e12 = EnergyModel::at_node(TechNode::N12).report(&events);
        let e8 = EnergyModel::at_node(TechNode::N8).report(&events);
        assert!(e28.total_j() > e12.total_j());
        assert!(e12.total_j() > e8.total_j());
        // Scaling ratio matches Table III's power ratio.
        let ratio = e12.total_j() / e28.total_j();
        assert!((ratio - 1.21 / 2.12).abs() < 1e-9);
    }

    #[test]
    fn zero_events_zero_energy() {
        let report = EnergyModel::paper().report(&EnergyEvents::default());
        assert_eq!(report.total_j(), 0.0);
        assert_eq!(report.avg_power_w, 0.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = EnergyEvents { alu_ops: 1, cycles: 2, ..EnergyEvents::default() };
        let b = EnergyEvents { alu_ops: 3, dram_bytes: 7, cycles: 1, ..EnergyEvents::default() };
        a.accumulate(&b);
        assert_eq!(a.alu_ops, 4);
        assert_eq!(a.dram_bytes, 7);
        assert_eq!(a.cycles, 3);
    }
}
