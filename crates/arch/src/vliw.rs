//! VLIW program format and the cycle-accurate probabilistic/DAG-mode
//! executor.
//!
//! `reason-compiler` lowers a two-input-regular DAG into *blocks*: depth-
//! bounded subtrees that issue as single VLIW instructions. Each
//! instruction reads operands from the banked register file (through the
//! Benes crossbar), streams them through the tree pipeline, and writes the
//! block root back to a bank using automatic lowest-free addressing
//! (paper Sec. V-C). The executor here is both *functional* (it computes
//! the real values, verified against DAG evaluation) and *timed* (issue
//! pipelining, RAW hazards, dual-port bank conflicts, energy events).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;
use crate::energy::{EnergyEvents, EnergyModel, EnergyReport};
use crate::mem::{BankAddr, RegisterBanks};
use crate::tree::TreeOp;

/// An operand of a block node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockOperand {
    /// The `i`-th entry of the instruction's read list.
    Read(usize),
    /// The result of an earlier node in the same block.
    Node(usize),
}

/// One two-input compute node inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockNode {
    /// The operation.
    pub op: TreeOp,
    /// Left and right operands (`Not`/`Pass` use only the left).
    pub inputs: [BlockOperand; 2],
}

/// One VLIW instruction: a register read set, a block of tree ops, and a
/// writeback bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VliwInstr {
    /// Register locations read this issue.
    pub reads: Vec<BankAddr>,
    /// Block nodes in topological order; the last node is the block root.
    pub nodes: Vec<BlockNode>,
    /// Bank receiving the block result (one-bank-one-PE writeback).
    pub write_bank: usize,
    /// Compiler-predicted write location, checked against the hardware's
    /// automatic addressing at runtime.
    pub predicted_write: Option<BankAddr>,
    /// Registers whose live ranges end after this instruction.
    pub frees: Vec<BankAddr>,
}

impl VliwInstr {
    /// The pipeline depth this block needs (longest node chain).
    pub fn block_depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let d = node
                .inputs
                .iter()
                .map(|op| match op {
                    BlockOperand::Read(_) => 0,
                    BlockOperand::Node(j) => depth[*j] + 1,
                })
                .max()
                .unwrap_or(0);
            depth[i] = d;
        }
        depth.last().map_or(0, |d| d + 1)
    }
}

/// A complete program for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VliwProgram {
    /// Values preloaded into the register file before execution
    /// (constants and kernel inputs).
    pub preload: Vec<(BankAddr, f64)>,
    /// The instruction stream.
    pub instructions: Vec<VliwInstr>,
    /// Index of the instruction whose result is the kernel output.
    pub output_instr: usize,
    /// Banks in the register file this program was compiled for.
    pub num_banks: usize,
    /// Maximum block depth (must not exceed the PE tree depth).
    pub max_block_depth: usize,
}

impl VliwProgram {
    /// Static validation against an architecture.
    ///
    /// # Panics
    ///
    /// Panics when the program is incompatible with `config` (bank count,
    /// block depth) or self-inconsistent (operand indices).
    pub fn validate(&self, config: &ArchConfig) {
        assert!(self.num_banks <= config.num_banks, "program uses too many banks");
        assert!(
            self.max_block_depth <= config.tree_depth,
            "block depth {} exceeds tree depth {}",
            self.max_block_depth,
            config.tree_depth
        );
        assert!(self.output_instr < self.instructions.len(), "output index out of range");
        for (k, instr) in self.instructions.iter().enumerate() {
            assert!(!instr.nodes.is_empty(), "instruction {k} has no nodes");
            assert!(instr.block_depth() <= self.max_block_depth, "instruction {k} too deep");
            for node in &instr.nodes {
                for op in &node.inputs {
                    match op {
                        BlockOperand::Read(i) => {
                            assert!(*i < instr.reads.len(), "instruction {k} read out of range")
                        }
                        BlockOperand::Node(j) => {
                            assert!(*j < instr.nodes.len(), "instruction {k} node ref out of range")
                        }
                    }
                }
            }
        }
    }
}

/// Result of executing a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Total cycles.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Cycles lost to read-after-write hazards.
    pub raw_stall_cycles: u64,
    /// Cycles lost to bank port conflicts.
    pub conflict_stall_cycles: u64,
    /// The kernel output value.
    pub output: f64,
    /// Raw energy events.
    pub events: EnergyEvents,
    /// Evaluated energy/power/area.
    pub energy: EnergyReport,
}

impl ExecutionReport {
    /// Wall-clock seconds of the run.
    pub fn seconds(&self) -> f64 {
        self.energy.seconds
    }

    /// Fraction of cycles not lost to stalls. Stall cycles on different
    /// PEs can overlap, so the metric clamps at zero.
    pub fn pipeline_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (1.0 - (self.raw_stall_cycles + self.conflict_stall_cycles) as f64 / self.cycles as f64)
            .clamp(0.0, 1.0)
    }
}

/// The cycle-accurate executor for DAG-mode programs.
#[derive(Debug)]
pub struct VliwExecutor {
    config: ArchConfig,
    energy_model: EnergyModel,
}

impl VliwExecutor {
    /// An executor for the given architecture.
    pub fn new(config: ArchConfig) -> Self {
        config.validate();
        let mut energy_model = EnergyModel::at_node(config.tech);
        energy_model.freq_mhz = config.freq_mhz;
        VliwExecutor { config, energy_model }
    }

    /// The architecture being modeled.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Runs `program`, returning timing, energy, and the output value.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation or the compiler's predicted
    /// write addresses diverge from the hardware's automatic addressing.
    pub fn execute(&self, program: &VliwProgram) -> ExecutionReport {
        program.validate(&self.config);
        let mut rf = RegisterBanks::new(self.config.num_banks, self.config.regs_per_bank);
        let mut events = EnergyEvents::default();

        // Preload constants and inputs (DMA from the shared scratchpad).
        for &(at, value) in &program.preload {
            rf.write_at(at, value);
        }
        events.sram_reads += program.preload.len() as u64;
        events.reg_writes += program.preload.len() as u64;
        events.dram_bytes += 4 * program.preload.len() as u64;

        let pipeline_depth = self.config.pipeline_depth() as u64;
        let benes_stages = if self.config.num_banks >= 2 {
            2 * (self.config.num_banks as u64).trailing_zeros() as u64 - 1
        } else {
            0
        };

        // producer[addr] = completion cycle of the instruction that wrote it.
        let mut ready_at: HashMap<BankAddr, u64> = HashMap::new();
        let mut cycle: u64 = 0;
        let mut raw_stalls = 0u64;
        let mut conflict_stalls = 0u64;
        let mut results: Vec<f64> = Vec::with_capacity(program.instructions.len());
        let mut output = 0.0f64;
        // The array issues one block per tree PE per cycle: instruction k
        // lands on PE (k mod num_pes), which frees one cycle after its
        // previous issue.
        let mut pe_free = vec![0u64; self.config.num_pes.max(1)];

        if !self.config.ablation.reconfigurable {
            // Non-reconfigurable datapath: pay a mode-configuration penalty
            // before the kernel starts.
            cycle += 2 * pipeline_depth + self.config.total_nodes() as u64;
            pe_free.iter_mut().for_each(|t| *t = cycle);
        }

        for (k, instr) in program.instructions.iter().enumerate() {
            // Issue constraints: the assigned PE must be free...
            let pe = k % pe_free.len();
            let mut issue = pe_free[pe] + 1;
            if self.config.ablation.scheduling {
                // ...and RAW hazards require operands written back.
                for r in &instr.reads {
                    if let Some(&t) = ready_at.get(r) {
                        if t > issue {
                            raw_stalls += t - issue;
                            issue = t;
                        }
                    }
                }
            } else {
                // No pipeline-aware scheduling: serialize fully.
                issue = issue.max(cycle + pipeline_depth);
            }
            // Bank port conflicts extend the read phase.
            let conflict = rf.conflict_penalty(&instr.reads);
            conflict_stalls += conflict;
            let issue = issue + conflict;

            // Functional evaluation of the block.
            let operand_values: Vec<f64> = instr.reads.iter().map(|&r| rf.read(r)).collect();
            let mut node_values: Vec<f64> = Vec::with_capacity(instr.nodes.len());
            for node in &instr.nodes {
                let fetch = |op: &BlockOperand| -> f64 {
                    match op {
                        BlockOperand::Read(i) => operand_values[*i],
                        BlockOperand::Node(j) => node_values[*j],
                    }
                };
                let a = fetch(&node.inputs[0]);
                let b = fetch(&node.inputs[1]);
                node_values.push(node.op.apply(a, b));
            }
            let result = *node_values.last().expect("non-empty block");

            // Writeback with automatic addressing; verify the compiler's
            // prediction (paper: "the compiler precisely predicts these
            // write addresses at compile time").
            let written = rf.alloc_write(instr.write_bank, result);
            if let Some(predicted) = instr.predicted_write {
                assert_eq!(
                    written, predicted,
                    "instruction {k}: hardware auto-address diverged from compiler prediction"
                );
            }
            let completion = issue + pipeline_depth;
            ready_at.insert(written, completion);
            for f in &instr.frees {
                rf.free(*f);
                ready_at.remove(f);
            }
            results.push(result);
            if k == program.output_instr {
                output = result;
            }

            // Energy events for this issue.
            events.reg_reads += instr.reads.len() as u64;
            events.reg_writes += 1;
            events.benes_hops += instr.reads.len() as u64 * benes_stages;
            events.alu_ops += instr.nodes.len() as u64;
            events.tree_hops += instr.nodes.len() as u64;

            pe_free[pe] = issue;
            cycle = cycle.max(issue);
        }

        // Drain the pipeline.
        let total_cycles = cycle + pipeline_depth;
        events.cycles = total_cycles;
        let mem = rf.stats();
        let _ = mem;
        let energy = self.energy_model.report(&events);
        ExecutionReport {
            cycles: total_cycles,
            instructions: program.instructions.len() as u64,
            raw_stall_cycles: raw_stalls,
            conflict_stall_cycles: conflict_stalls,
            output,
            events,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationConfig;

    /// Hand-assembles a program computing ((a+b) * (c+d)) with a = 1,
    /// b = 2, c = 3, d = 4 → 21.
    fn sum_product_program() -> VliwProgram {
        let a = BankAddr::new(0, 0);
        let b = BankAddr::new(1, 0);
        let c = BankAddr::new(2, 0);
        let d = BankAddr::new(3, 0);
        VliwProgram {
            preload: vec![(a, 1.0), (b, 2.0), (c, 3.0), (d, 4.0)],
            instructions: vec![VliwInstr {
                reads: vec![a, b, c, d],
                nodes: vec![
                    BlockNode {
                        op: TreeOp::Add,
                        inputs: [BlockOperand::Read(0), BlockOperand::Read(1)],
                    },
                    BlockNode {
                        op: TreeOp::Add,
                        inputs: [BlockOperand::Read(2), BlockOperand::Read(3)],
                    },
                    BlockNode {
                        op: TreeOp::Mul,
                        inputs: [BlockOperand::Node(0), BlockOperand::Node(1)],
                    },
                ],
                write_bank: 0,
                predicted_write: Some(BankAddr::new(0, 1)),
                frees: vec![],
            }],
            output_instr: 0,
            num_banks: 4,
            max_block_depth: 2,
        }
    }

    #[test]
    fn executes_sum_product_block() {
        let exec = VliwExecutor::new(ArchConfig::paper());
        let report = exec.execute(&sum_product_program());
        assert_eq!(report.output, 21.0);
        assert!(report.cycles > 0);
        assert!(report.energy.total_j() > 0.0);
    }

    #[test]
    fn raw_hazard_stalls_dependent_instructions() {
        // Two instructions where the second reads the first's result.
        let a = BankAddr::new(0, 0);
        let b = BankAddr::new(1, 0);
        let first_out = BankAddr::new(2, 0);
        let program = VliwProgram {
            preload: vec![(a, 2.0), (b, 3.0)],
            instructions: vec![
                VliwInstr {
                    reads: vec![a, b],
                    nodes: vec![BlockNode {
                        op: TreeOp::Add,
                        inputs: [BlockOperand::Read(0), BlockOperand::Read(1)],
                    }],
                    write_bank: 2,
                    predicted_write: Some(first_out),
                    frees: vec![],
                },
                VliwInstr {
                    reads: vec![first_out, a],
                    nodes: vec![BlockNode {
                        op: TreeOp::Mul,
                        inputs: [BlockOperand::Read(0), BlockOperand::Read(1)],
                    }],
                    write_bank: 3,
                    predicted_write: None,
                    frees: vec![],
                },
            ],
            output_instr: 1,
            num_banks: 4,
            max_block_depth: 1,
        };
        let exec = VliwExecutor::new(ArchConfig::paper());
        let report = exec.execute(&program);
        assert_eq!(report.output, 10.0);
        assert!(report.raw_stall_cycles > 0, "dependent issue must stall");
    }

    #[test]
    fn scheduling_ablation_slows_execution() {
        let mut no_sched = ArchConfig::paper();
        no_sched.ablation = AblationConfig { scheduling: false, ..AblationConfig::default() };
        let base = VliwExecutor::new(ArchConfig::paper()).execute(&sum_product_program());
        let slow = VliwExecutor::new(no_sched).execute(&sum_product_program());
        assert_eq!(base.output, slow.output, "ablation must not change results");
        assert!(slow.cycles >= base.cycles);
    }

    #[test]
    fn reconfigurability_ablation_adds_setup() {
        let mut fixed = ArchConfig::paper();
        fixed.ablation = AblationConfig { reconfigurable: false, ..AblationConfig::default() };
        let base = VliwExecutor::new(ArchConfig::paper()).execute(&sum_product_program());
        let slow = VliwExecutor::new(fixed).execute(&sum_product_program());
        assert!(slow.cycles > base.cycles);
    }

    #[test]
    fn bank_conflicts_are_counted() {
        // Four reads from one bank: dual ports ⇒ one extra cycle.
        let addrs: Vec<BankAddr> = (0..4).map(|i| BankAddr::new(0, i)).collect();
        let program = VliwProgram {
            preload: addrs.iter().map(|&a| (a, 1.0)).collect(),
            instructions: vec![VliwInstr {
                reads: addrs.clone(),
                nodes: vec![
                    BlockNode {
                        op: TreeOp::Add,
                        inputs: [BlockOperand::Read(0), BlockOperand::Read(1)],
                    },
                    BlockNode {
                        op: TreeOp::Add,
                        inputs: [BlockOperand::Read(2), BlockOperand::Read(3)],
                    },
                    BlockNode {
                        op: TreeOp::Add,
                        inputs: [BlockOperand::Node(0), BlockOperand::Node(1)],
                    },
                ],
                write_bank: 1,
                predicted_write: None,
                frees: vec![],
            }],
            output_instr: 0,
            num_banks: 2,
            max_block_depth: 2,
        };
        let exec = VliwExecutor::new(ArchConfig::paper());
        let report = exec.execute(&program);
        assert_eq!(report.output, 4.0);
        assert_eq!(report.conflict_stall_cycles, 1);
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn wrong_write_prediction_is_caught() {
        let mut program = sum_product_program();
        program.instructions[0].predicted_write = Some(BankAddr::new(0, 5));
        VliwExecutor::new(ArchConfig::paper()).execute(&program);
    }

    #[test]
    fn block_depth_computed() {
        let program = sum_product_program();
        assert_eq!(program.instructions[0].block_depth(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds tree depth")]
    fn too_deep_blocks_rejected() {
        let mut program = sum_product_program();
        program.max_block_depth = 9;
        VliwExecutor::new(ArchConfig::paper()).execute(&program);
    }
}
