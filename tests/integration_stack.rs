//! Cross-crate integration: the full REASON stack, from reasoning kernel
//! to cycle-level hardware execution.
//!
//! These tests pin the reproduction's central invariant: every layer —
//! exact substrate algorithms, the unified DAG, the compiled VLIW
//! program on the simulated accelerator, and the co-processor interface —
//! computes the same answers.

use reason::arch::{ArchConfig, SymbolicEngine, VliwExecutor};
use reason::compiler::ReasonCompiler;
use reason::core::{dag_from_circuit, dag_from_cnf, dag_from_hmm, KernelSource, ReasonPipeline};
use reason::fol::{clausify, ground_clauses, parse_formula, prove, Formula, ProofResult};
use reason::hmm::Hmm;
use reason::neural::{CsrMatrix, LlmProxy, Matrix, MlpBuilder};
use reason::pc::{random_mixture_circuit, Evidence, StructureConfig};
use reason::sat::{brute_force, gen::random_ksat, CdclSolver, DpllSolver, Solution};
use reason::system::{
    BatchExecutor, ExecutorConfig, ReasonDevice, SharedMemory, StageCost, TwoLevelPipeline,
};

#[test]
fn four_sat_engines_agree() {
    for seed in 0..8 {
        let cnf = random_ksat(10, 40, 3, seed);
        let expect = brute_force(&cnf).is_sat();
        assert_eq!(CdclSolver::new(&cnf).solve().is_sat(), expect, "cdcl seed {seed}");
        assert_eq!(DpllSolver::new(&cnf).solve().is_sat(), expect, "dpll seed {seed}");
        let (hw, _) = SymbolicEngine::new(ArchConfig::paper()).solve(&cnf);
        assert_eq!(hw.is_sat(), expect, "hardware seed {seed}");
    }
}

#[test]
fn sat_dag_on_hardware_evaluates_satisfying_assignments() {
    let cnf = random_ksat(9, 32, 3, 3);
    let config = ArchConfig::paper();
    let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
    let compiled = ReasonCompiler::new(config).compile(&kernel.dag).unwrap();
    let exec = VliwExecutor::new(config);
    let mut checked = 0;
    for bits in 0..512u32 {
        let model: Vec<bool> = (0..9).map(|v| bits >> v & 1 == 1).collect();
        if cnf.eval(&model) {
            let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
            let report = exec.execute(&compiled.program(&inputs));
            assert_eq!(report.output, 1.0, "model {bits:09b} must satisfy the compiled kernel");
            checked += 1;
        }
    }
    assert!(checked > 0, "instance should have models");
}

#[test]
fn pc_inference_matches_through_every_layer() {
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 7,
        depth: 3,
        num_components: 2,
        seed: 11,
    });
    let config = ArchConfig::paper();
    let (dag, map) = dag_from_circuit(&circuit);
    let dag = reason::core::regularize(&dag);
    let compiled = ReasonCompiler::new(config).compile(&dag).unwrap();
    let exec = VliwExecutor::new(config);
    for seed in 0..10u64 {
        // Random partial evidence.
        let ev: Vec<Option<usize>> = (0..7)
            .map(|v| match (seed + v) % 3 {
                0 => Some(((seed >> v) & 1) as usize),
                _ => None,
            })
            .collect();
        let exact = circuit.probability(&Evidence::from_values(&ev));
        let dag_val = dag.evaluate_output(&map.inputs_for_evidence(circuit.arities(), &ev));
        let hw = exec.execute(&compiled.program(&map.inputs_for_evidence(circuit.arities(), &ev)));
        assert!((dag_val - exact).abs() < 1e-9, "DAG vs circuit, evidence {ev:?}");
        assert!((hw.output - exact).abs() < 1e-9, "hardware vs circuit, evidence {ev:?}");
    }
}

#[test]
fn hmm_likelihood_matches_through_every_layer() {
    let hmm = Hmm::random(4, 5, 77);
    let len = 7;
    let config = ArchConfig::paper();
    let (dag, map) = dag_from_hmm(&hmm, len);
    let dag = reason::core::regularize(&dag);
    let compiled = ReasonCompiler::new(config).compile(&dag).unwrap();
    let exec = VliwExecutor::new(config);
    for seed in 0..5u64 {
        let obs: Vec<usize> = (0..len).map(|t| ((seed + t as u64 * 3) % 5) as usize).collect();
        let wrapped: Vec<Option<usize>> = obs.iter().map(|&o| Some(o)).collect();
        let exact = hmm.log_likelihood(&obs).exp();
        let hw = exec.execute(&compiled.program(&map.inputs_for_observations(&wrapped)));
        assert!(
            (hw.output - exact).abs() < 1e-9,
            "hardware {} vs forward algorithm {exact}",
            hw.output
        );
    }
}

#[test]
fn pruned_sat_kernel_still_accepts_models_on_hardware() {
    // The full REASON pipeline (with pruning) composed with hardware
    // execution: every model of the original formula must still evaluate
    // to 1.0 on the accelerator.
    let cnf = random_ksat(8, 26, 3, 21);
    let config = ArchConfig::paper();
    let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
    let compiled = ReasonCompiler::new(config).compile(&kernel.dag).unwrap();
    let exec = VliwExecutor::new(config);
    for bits in 0..256u32 {
        let model: Vec<bool> = (0..8).map(|v| bits >> v & 1 == 1).collect();
        if cnf.eval(&model) {
            let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
            assert_eq!(exec.execute(&compiled.program(&inputs)).output, 1.0);
        }
    }
}

#[test]
fn fol_resolution_agrees_with_grounded_sat_on_every_engine() {
    // A goal the resolution prover derives in two chained steps.
    let axioms = vec![
        parse_formula("forall X. (man(X) -> mortal(X))").unwrap(),
        parse_formula("forall X. (mortal(X) -> fallible(X))").unwrap(),
        parse_formula("man(socrates)").unwrap(),
        parse_formula("man(plato)").unwrap(),
    ];
    let goal = parse_formula("fallible(socrates)").unwrap();
    assert!(
        matches!(prove(&axioms, &goal, 10_000), ProofResult::Proved { .. }),
        "resolution must derive the chained implication"
    );

    // The same entailment question, grounded to propositional SAT:
    // axioms ∧ ¬goal must be UNSAT, and every SAT engine — exact
    // brute force, CDCL, and the watched-literal BCP hardware — must
    // agree with the prover.
    let mut formulas = axioms.clone();
    formulas.push(Formula::not(goal));
    let grounding = ground_clauses(&clausify(&formulas), &[]).expect("function-free");
    let cnf = grounding.cnf;
    assert!(!brute_force(&cnf).is_sat(), "prover and grounding must agree: UNSAT");
    assert!(!CdclSolver::new(&cnf).solve().is_sat(), "cdcl");
    assert!(!DpllSolver::new(&cnf).solve().is_sat(), "dpll");
    let (hw, _) = SymbolicEngine::new(ArchConfig::paper()).solve(&cnf);
    assert!(!hw.is_sat(), "BCP hardware");
}

#[test]
fn unprovable_fol_goal_grounds_to_sat_models_on_hardware() {
    // `mortal(plato)` does not follow without `man(plato)`: resolution
    // saturates, so the grounded counterexample search must be SAT.
    let axioms = vec![
        parse_formula("forall X. (man(X) -> mortal(X))").unwrap(),
        parse_formula("man(socrates)").unwrap(),
        parse_formula("person(plato)").unwrap(),
    ];
    let goal = parse_formula("mortal(plato)").unwrap();
    assert!(
        !matches!(prove(&axioms, &goal, 10_000), ProofResult::Proved { .. }),
        "goal must not be entailed"
    );

    let mut formulas = axioms.clone();
    formulas.push(Formula::not(goal));
    let grounding = ground_clauses(&clausify(&formulas), &[]).expect("function-free");
    let cnf = grounding.cnf;
    assert!(brute_force(&cnf).is_sat(), "prover and grounding must agree: SAT");

    // Push the grounded kernel through the full stack: the CDCL model
    // must evaluate to 1.0 on the unified DAG and on the compiled VLIW
    // program, exactly as the substrate's `Cnf::eval` says.
    let model = match CdclSolver::new(&cnf).solve() {
        Solution::Sat(m) => m,
        Solution::Unsat => panic!("instance is satisfiable"),
    };
    assert!(cnf.eval(&model));
    let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
    let (dag, _) = dag_from_cnf(&cnf);
    assert_eq!(dag.evaluate_output(&inputs), 1.0, "DAG agrees with Cnf::eval");
    let config = ArchConfig::paper();
    let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
    let compiled = ReasonCompiler::new(config).compile(&kernel.dag).unwrap();
    let report = VliwExecutor::new(config).execute(&compiled.program(&inputs));
    assert_eq!(report.output, 1.0, "hardware agrees with Cnf::eval");
}

#[test]
fn neural_sparse_kernels_agree_with_dense_reference() {
    // The tree-PE's SpMSpM mode executes CSR kernels; they must compute
    // exactly what the dense tensor substrate computes.
    let a = Matrix::random(12, 16, 1.0, 42);
    let b = Matrix::random(16, 10, 1.0, 43);
    let exact = a.matmul(&b);
    let sparse = CsrMatrix::from_dense(&a).spmspm(&CsrMatrix::from_dense(&b)).to_dense();
    assert_eq!(sparse.rows(), exact.rows());
    assert_eq!(sparse.cols(), exact.cols());
    for r in 0..exact.rows() {
        for c in 0..exact.cols() {
            assert!(
                (sparse.at(r, c) - exact.at(r, c)).abs() < 1e-4,
                "SpMSpM [{r},{c}]: {} vs dense {}",
                sparse.at(r, c),
                exact.at(r, c)
            );
        }
    }

    // SpMV against the dense row-by-row reference.
    let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
    let y = CsrMatrix::from_dense(&a).spmv(&x);
    for r in 0..a.rows() {
        let dense_dot: f32 = (0..a.cols()).map(|c| a.at(r, c) * x[c]).sum();
        assert!((y[r] - dense_dot).abs() < 1e-4, "SpMV row {r}");
    }

    // The MLP head must emit a probability distribution per batch row.
    let mlp = MlpBuilder::new(8).layer(16, true, 1).layer(4, false, 2).softmax().build();
    let batch = Matrix::random(5, 8, 1.0, 44);
    let out = mlp.forward(&batch);
    assert_eq!(out.rows(), 5);
    for r in 0..out.rows() {
        let total: f32 = (0..out.cols()).map(|c| out.at(r, c)).sum();
        assert!((total - 1.0).abs() < 1e-5, "softmax row {r} sums to {total}");
    }
}

#[test]
fn llm_proxy_costs_drive_the_two_level_pipeline() {
    // Neural stage: LLM proxy on an A6000-like device (~155 TFLOP/s fp16,
    // ~768 GB/s). Symbolic stage: the cycle-accurate cost of the compiled
    // PC kernel on the REASON device.
    let proxy = LlmProxy::preset("7B");
    let config = ArchConfig::paper();
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 6,
        depth: 3,
        num_components: 2,
        seed: 13,
    });
    let (dag, map) = dag_from_circuit(&circuit);
    let dag = reason::core::regularize(&dag);
    let compiled = ReasonCompiler::new(config).compile(&dag).unwrap();
    let exec = VliwExecutor::new(config);

    let mut tasks = Vec::new();
    for seed in 0..6u64 {
        let neural = proxy.cost(256, 8 + 4 * seed, 155e12, 768e9);
        let ev: Vec<Option<usize>> =
            (0..6).map(|v| if (seed + v) % 2 == 0 { Some(1) } else { None }).collect();
        let report =
            exec.execute(&compiled.program(&map.inputs_for_evidence(circuit.arities(), &ev)));
        // The symbolic answer itself must stay exact while we time it.
        let exact = circuit.probability(&Evidence::from_values(&ev));
        assert!((report.output - exact).abs() < 1e-9, "seed {seed}");
        tasks.push(StageCost {
            neural_s: neural.seconds,
            symbolic_s: report.cycles as f64 * config.cycle_seconds(),
        });
    }

    let schedule = TwoLevelPipeline::new().schedule(&tasks);
    // The schedule's serial time must equal the exact sum of stage costs,
    // and pipelining must land between the dominant stage and serial.
    let serial: f64 = tasks.iter().map(|t| t.neural_s + t.symbolic_s).sum();
    assert!((schedule.serial_s - serial).abs() < 1e-12);
    let neural_total: f64 = tasks.iter().map(|t| t.neural_s).sum();
    let symbolic_total: f64 = tasks.iter().map(|t| t.symbolic_s).sum();
    assert!(schedule.pipelined_s <= schedule.serial_s + 1e-12);
    assert!(schedule.pipelined_s + 1e-12 >= neural_total.max(symbolic_total));
}

#[test]
fn device_interface_round_trips_through_shared_memory() {
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 5,
        depth: 2,
        num_components: 2,
        seed: 5,
    });
    let config = ArchConfig::paper();
    let (dag, map) = dag_from_circuit(&circuit);
    let dag = reason::core::regularize(&dag);
    let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();

    let shm = SharedMemory::new();
    let mut device = ReasonDevice::new(config, shm.clone());
    for batch in 0..4u64 {
        let ev: Vec<Option<usize>> =
            (0..5).map(|v| if v as u64 == batch { Some(1) } else { None }).collect();
        shm.publish_neural(batch, map.inputs_for_evidence(circuit.arities(), &ev));
        let outcome = device.execute_dag(batch, &kernel);
        let expect = circuit.probability(&Evidence::from_values(&ev));
        let published = shm.wait_symbolic(batch)[0];
        assert!((published - expect).abs() < 1e-9, "batch {batch}");
        assert!(outcome.cycles() > 0);
    }
}

#[test]
fn threaded_executor_is_deterministic_across_the_stack() {
    // The acceptance contract of the batch executor: any worker
    // configuration — serial, single-lane overlap, wide symbolic pool,
    // multiple neural producers — returns identical verdicts and
    // marginals on the same mixed SAT/PC batch, and the measured schedule
    // stays consistent with the flow-shop cost model's vocabulary.
    let tasks = reason::system::demo_batch(8, 123);
    let serial = BatchExecutor::new(ExecutorConfig::sequential()).run(&tasks);
    assert_eq!(serial.results.len(), 8);

    for config in [
        ExecutorConfig::overlapped(1),
        ExecutorConfig::overlapped(4),
        ExecutorConfig { neural_workers: 2, symbolic_workers: 3, overlap: true },
    ] {
        let threaded = BatchExecutor::new(config).run(&tasks);
        assert!(threaded.agrees_with(&serial), "{config:?}");
        // Stage sums are measured per run but count the same work.
        assert!(threaded.measured.serial_s > 0.0);
        assert_eq!(threaded.measured.tasks, 8);
        // The neural buffers that crossed the shared-memory protocol are
        // bit-identical to the inline computation.
        for (a, b) in threaded.results.iter().zip(&serial.results) {
            assert_eq!(a.neural_output, b.neural_output, "{config:?}");
        }
    }
}

#[test]
fn ablations_change_cycles_but_never_results() {
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 8,
        depth: 3,
        num_components: 3,
        seed: 9,
    });
    let (dag, map) = dag_from_circuit(&circuit);
    let dag = reason::core::regularize(&dag);
    let inputs = map.inputs_for_evidence(circuit.arities(), &[None; 8]);

    let full = ArchConfig::paper();
    let mut crippled = full;
    crippled.ablation.scheduling = false;
    crippled.ablation.bank_mapping = false;
    crippled.ablation.reconfigurable = false;

    let fast_kernel = ReasonCompiler::new(full).compile(&dag).unwrap();
    let slow_kernel = ReasonCompiler::new(crippled).compile(&dag).unwrap();
    let fast = VliwExecutor::new(full).execute(&fast_kernel.program(&inputs));
    let slow = VliwExecutor::new(crippled).execute(&slow_kernel.program(&inputs));
    assert!((fast.output - slow.output).abs() < 1e-12, "ablations must be timing-only");
    assert!(slow.cycles > fast.cycles, "removing every technique must cost cycles");
}
