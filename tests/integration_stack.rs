//! Cross-crate integration: the full REASON stack, from reasoning kernel
//! to cycle-level hardware execution.
//!
//! These tests pin the reproduction's central invariant: every layer —
//! exact substrate algorithms, the unified DAG, the compiled VLIW
//! program on the simulated accelerator, and the co-processor interface —
//! computes the same answers.

use reason::arch::{ArchConfig, SymbolicEngine, VliwExecutor};
use reason::compiler::ReasonCompiler;
use reason::core::{dag_from_circuit, dag_from_cnf, dag_from_hmm, KernelSource, ReasonPipeline};
use reason::hmm::Hmm;
use reason::pc::{random_mixture_circuit, Evidence, StructureConfig};
use reason::sat::{brute_force, gen::random_ksat, CdclSolver, DpllSolver};
use reason::system::{ReasonDevice, SharedMemory};

#[test]
fn four_sat_engines_agree() {
    for seed in 0..8 {
        let cnf = random_ksat(10, 40, 3, seed);
        let expect = brute_force(&cnf).is_sat();
        assert_eq!(CdclSolver::new(&cnf).solve().is_sat(), expect, "cdcl seed {seed}");
        assert_eq!(DpllSolver::new(&cnf).solve().is_sat(), expect, "dpll seed {seed}");
        let (hw, _) = SymbolicEngine::new(ArchConfig::paper()).solve(&cnf);
        assert_eq!(hw.is_sat(), expect, "hardware seed {seed}");
    }
}

#[test]
fn sat_dag_on_hardware_evaluates_satisfying_assignments() {
    let cnf = random_ksat(9, 32, 3, 3);
    let config = ArchConfig::paper();
    let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
    let compiled = ReasonCompiler::new(config).compile(&kernel.dag).unwrap();
    let exec = VliwExecutor::new(config);
    let mut checked = 0;
    for bits in 0..512u32 {
        let model: Vec<bool> = (0..9).map(|v| bits >> v & 1 == 1).collect();
        if cnf.eval(&model) {
            let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
            let report = exec.execute(&compiled.program(&inputs));
            assert_eq!(report.output, 1.0, "model {bits:09b} must satisfy the compiled kernel");
            checked += 1;
        }
    }
    assert!(checked > 0, "instance should have models");
}

#[test]
fn pc_inference_matches_through_every_layer() {
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 7,
        depth: 3,
        num_components: 2,
        seed: 11,
    });
    let config = ArchConfig::paper();
    let (dag, map) = dag_from_circuit(&circuit);
    let dag = reason::core::regularize(&dag);
    let compiled = ReasonCompiler::new(config).compile(&dag).unwrap();
    let exec = VliwExecutor::new(config);
    for seed in 0..10u64 {
        // Random partial evidence.
        let ev: Vec<Option<usize>> = (0..7)
            .map(|v| match (seed + v) % 3 {
                0 => Some(((seed >> v) & 1) as usize),
                _ => None,
            })
            .collect();
        let exact = circuit.probability(&Evidence::from_values(&ev));
        let dag_val = dag.evaluate_output(&map.inputs_for_evidence(circuit.arities(), &ev));
        let hw = exec.execute(&compiled.program(&map.inputs_for_evidence(circuit.arities(), &ev)));
        assert!((dag_val - exact).abs() < 1e-9, "DAG vs circuit, evidence {ev:?}");
        assert!((hw.output - exact).abs() < 1e-9, "hardware vs circuit, evidence {ev:?}");
    }
}

#[test]
fn hmm_likelihood_matches_through_every_layer() {
    let hmm = Hmm::random(4, 5, 77);
    let len = 7;
    let config = ArchConfig::paper();
    let (dag, map) = dag_from_hmm(&hmm, len);
    let dag = reason::core::regularize(&dag);
    let compiled = ReasonCompiler::new(config).compile(&dag).unwrap();
    let exec = VliwExecutor::new(config);
    for seed in 0..5u64 {
        let obs: Vec<usize> = (0..len).map(|t| ((seed + t as u64 * 3) % 5) as usize).collect();
        let wrapped: Vec<Option<usize>> = obs.iter().map(|&o| Some(o)).collect();
        let exact = hmm.log_likelihood(&obs).exp();
        let hw = exec.execute(&compiled.program(&map.inputs_for_observations(&wrapped)));
        assert!(
            (hw.output - exact).abs() < 1e-9,
            "hardware {} vs forward algorithm {exact}",
            hw.output
        );
    }
}

#[test]
fn pruned_sat_kernel_still_accepts_models_on_hardware() {
    // The full REASON pipeline (with pruning) composed with hardware
    // execution: every model of the original formula must still evaluate
    // to 1.0 on the accelerator.
    let cnf = random_ksat(8, 26, 3, 21);
    let config = ArchConfig::paper();
    let kernel = ReasonPipeline::new().compile(KernelSource::Sat(&cnf)).unwrap();
    let compiled = ReasonCompiler::new(config).compile(&kernel.dag).unwrap();
    let exec = VliwExecutor::new(config);
    for bits in 0..256u32 {
        let model: Vec<bool> = (0..8).map(|v| bits >> v & 1 == 1).collect();
        if cnf.eval(&model) {
            let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
            assert_eq!(exec.execute(&compiled.program(&inputs)).output, 1.0);
        }
    }
}

#[test]
fn device_interface_round_trips_through_shared_memory() {
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 5,
        depth: 2,
        num_components: 2,
        seed: 5,
    });
    let config = ArchConfig::paper();
    let (dag, map) = dag_from_circuit(&circuit);
    let dag = reason::core::regularize(&dag);
    let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();

    let shm = SharedMemory::new();
    let mut device = ReasonDevice::new(config, shm.clone());
    for batch in 0..4u64 {
        let ev: Vec<Option<usize>> = (0..5).map(|v| if v as u64 == batch { Some(1) } else { None }).collect();
        shm.publish_neural(batch, map.inputs_for_evidence(circuit.arities(), &ev));
        let outcome = device.execute_dag(batch, &kernel);
        let expect = circuit.probability(&Evidence::from_values(&ev));
        let published = shm.wait_symbolic(batch)[0];
        assert!((published - expect).abs() < 1e-9, "batch {batch}");
        assert!(outcome.cycles() > 0);
    }
}

#[test]
fn ablations_change_cycles_but_never_results() {
    let circuit = random_mixture_circuit(&StructureConfig {
        num_vars: 8,
        depth: 3,
        num_components: 3,
        seed: 9,
    });
    let (dag, map) = dag_from_circuit(&circuit);
    let dag = reason::core::regularize(&dag);
    let inputs = map.inputs_for_evidence(circuit.arities(), &vec![None; 8]);

    let full = ArchConfig::paper();
    let mut crippled = full;
    crippled.ablation.scheduling = false;
    crippled.ablation.bank_mapping = false;
    crippled.ablation.reconfigurable = false;

    let fast_kernel = ReasonCompiler::new(full).compile(&dag).unwrap();
    let slow_kernel = ReasonCompiler::new(crippled).compile(&dag).unwrap();
    let fast = VliwExecutor::new(full).execute(&fast_kernel.program(&inputs));
    let slow = VliwExecutor::new(crippled).execute(&slow_kernel.program(&inputs));
    assert!((fast.output - slow.output).abs() < 1e-12, "ablations must be timing-only");
    assert!(slow.cycles > fast.cycles, "removing every technique must cost cycles");
}
