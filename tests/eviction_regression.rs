//! Pinned eviction-policy regression: cost-aware eviction must beat
//! plain LRU on a recompile-heavy serving trace.
//!
//! The trace is the pattern that motivated the policy: a couple of
//! expensive knowledge bases stay hot forever while bursts of cheap
//! one-shot formulas stream past between their accesses. Under LRU the
//! streamers churn the recency order and push the expensive artifacts
//! out right before every re-access; the cost-aware score
//! (`bytes × EWMA recompile seconds`) lets the streamers evict each
//! other instead. The counts below are exact and deterministic — a
//! revert of [`EvictionPolicy::CostAware`] (or of the default policy)
//! fails this file, it cannot drift quietly.

use std::sync::Arc;

use reason::pc::{compile_cnf_with_stats, CompileConfig, Dnnf, DnnfBuffer, Evidence, WmcWeights};
use reason::sat::gen::random_ksat;
use reason::serve::{CircuitStore, EvictionPolicy, FormulaFingerprint, StoreConfig, StoredCircuit};

/// A compiled artifact over a random satisfiable 8-variable 3-CNF,
/// tagged with the compile cost the store's policy will judge it by.
fn artifact(seed: u64, compile_s: f64) -> (FormulaFingerprint, StoredCircuit) {
    let mut s = seed;
    loop {
        let cnf = random_ksat(8, 20, 3, s);
        let w = WmcWeights::uniform(8);
        let (circuit, stats) = compile_cnf_with_stats(&cnf, &w, &CompileConfig::default());
        if let Some(circuit) = circuit {
            let dnnf = Arc::new(Dnnf::from_circuit(&circuit).unwrap());
            let z = dnnf.probability(&Evidence::empty(8), &mut DnnfBuffer::new());
            let fp = FormulaFingerprint::new(&cnf, &w);
            return (fp, StoredCircuit { dnnf, circuit, z, compile_s, stats });
        }
        s += 1000;
    }
}

/// Replays the trace against one policy. Returns the number of hot-key
/// recompilations (a miss on a key that was already compiled once) and
/// the seconds those recompilations repay.
fn run_trace(policy: EvictionPolicy) -> (u64, f64) {
    const HOT_COMPILE_S: f64 = 0.5;
    const CHEAP_COMPILE_S: f64 = 1e-3;
    let hot: Vec<_> = (0..2).map(|i| artifact(100 + i, HOT_COMPILE_S)).collect();
    let streamers: Vec<_> = (0..12).map(|i| artifact(200 + i, CHEAP_COMPILE_S)).collect();
    let mut store =
        CircuitStore::new(StoreConfig { max_entries: 4, max_bytes: usize::MAX, policy });
    let mut recompiles = 0u64;
    let mut recompile_s = 0.0;
    // First compilations are paid under any policy; they don't count.
    for (fp, art) in &hot {
        store.insert(fp.clone(), art.clone());
    }
    // Each round: a burst of 4 one-shot streamers (enough to churn the
    // whole 4-entry store), then both hot keys are needed again.
    for round in streamers.chunks(4) {
        for (fp, art) in round {
            if store.get(fp).is_none() {
                store.insert(fp.clone(), art.clone());
            }
        }
        for (fp, art) in &hot {
            if store.get(fp).is_none() {
                recompiles += 1;
                recompile_s += art.compile_s;
                store.insert(fp.clone(), art.clone());
            }
        }
    }
    (recompiles, recompile_s)
}

#[test]
fn cost_aware_eviction_beats_lru_on_a_recompile_heavy_trace() {
    let (lru_recompiles, lru_s) = run_trace(EvictionPolicy::Lru);
    let (ca_recompiles, ca_s) = run_trace(EvictionPolicy::CostAware);
    // LRU: every 4-streamer burst fills the store and evicts both hot
    // artifacts, so each of the 3 rounds recompiles both — 6 in total.
    assert_eq!(lru_recompiles, 6, "LRU trace drifted; the burst no longer churns the hot keys");
    assert!((lru_s - 3.0).abs() < 1e-12, "6 recompiles at 0.5 s each, got {lru_s}");
    // Cost-aware: the streamers' scores are ~500x below the hot keys',
    // so the bursts evict each other and the hot keys never recompile.
    assert_eq!(ca_recompiles, 0, "cost-aware eviction must keep the expensive artifacts hot");
    assert_eq!(ca_s, 0.0);
}

#[test]
fn cost_aware_is_the_default_store_policy() {
    // The serving engine relies on the default; a quiet revert to LRU
    // would re-open the recompile churn pinned above.
    assert_eq!(StoreConfig::default().policy, EvictionPolicy::CostAware);
}
