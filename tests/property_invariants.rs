//! Property-based tests (proptest) on the workspace's core invariants.
//!
//! Randomized structures exercise the algebraic properties the REASON
//! stack depends on: satisfiability preservation under preprocessing,
//! semantic preservation under DAG lowering/regularization/compilation,
//! probabilistic normalization, Benes routability, and pipeline-schedule
//! sanity.

use proptest::prelude::*;

use reason::arch::{ArchConfig, BenesNetwork, VliwExecutor};
use reason::compiler::ReasonCompiler;
use reason::core::{dag_from_cnf, regularize};
use reason::hmm::Hmm;
use reason::pc::{compile_cnf, Evidence, WmcWeights};
use reason::sat::{brute_force, CdclSolver, Cnf, CubeAndConquer, CubeConfig, Preprocessor};
use reason::system::{StageCost, TwoLevelPipeline};

/// A random small CNF as DIMACS-style clause lists.
fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let var = 1..=max_vars as i32;
    let lit = (var, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v });
    let clause = prop::collection::vec(lit, 1..=3);
    prop::collection::vec(clause, 1..=max_clauses)
        .prop_map(move |clauses| Cnf::from_clauses(max_vars, clauses))
}

proptest! {
    // 256 cases keeps the whole suite under a few seconds; failures
    // report a replay seed (see third_party/proptest) — pin any that
    // appear as explicit regression tests below the proptest! block.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn preprocessing_preserves_satisfiability(cnf in arb_cnf(8, 20)) {
        let expect = brute_force(&cnf).is_sat();
        let result = Preprocessor::new().run(&cnf);
        let got = match result.decided {
            Some(d) => d,
            None => CdclSolver::new(&result.cnf).solve().is_sat(),
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn preprocessing_models_reconstruct(cnf in arb_cnf(8, 16)) {
        let result = Preprocessor::new().run(&cnf);
        let reduced_model = match result.decided {
            Some(false) => return Ok(()),
            Some(true) => vec![false; cnf.num_vars()],
            None => match CdclSolver::new(&result.cnf).solve() {
                reason::sat::Solution::Sat(m) => m,
                reason::sat::Solution::Unsat => return Ok(()),
            },
        };
        let model = result.reconstruct_model(&reduced_model);
        prop_assert!(cnf.eval(&model));
    }

    #[test]
    fn dag_lowering_matches_cnf_semantics(cnf in arb_cnf(7, 14), bits in 0u32..128) {
        let (dag, _) = dag_from_cnf(&cnf);
        let reg = regularize(&dag);
        let model: Vec<bool> = (0..7).map(|v| bits >> v & 1 == 1).collect();
        let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
        let expect = f64::from(u8::from(cnf.eval(&model)));
        prop_assert_eq!(dag.evaluate_output(&inputs), expect);
        prop_assert_eq!(reg.evaluate_output(&inputs), expect);
        prop_assert!(reg.max_fan_in() <= 2);
    }

    #[test]
    fn compiled_kernels_match_dag_evaluation(cnf in arb_cnf(6, 12), bits in 0u32..64) {
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let config = ArchConfig::paper();
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let inputs: Vec<f64> = (0..6).map(|v| f64::from(bits >> v & 1)).collect();
        let report = VliwExecutor::new(config).execute(&kernel.program(&inputs));
        prop_assert_eq!(report.output, dag.evaluate_output(&inputs));
    }

    #[test]
    fn wmc_circuits_are_probabilities(cnf in arb_cnf(6, 10), p in 0.05f64..0.95) {
        let weights = WmcWeights::new(vec![p; 6]);
        if let Some(circuit) = compile_cnf(&cnf, &weights) {
            let pr = circuit.probability(&Evidence::empty(6));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pr));
            circuit.validate().unwrap();
        }
    }

    #[test]
    fn benes_routes_every_permutation(seed in 0u64..500, logn in 1u32..6) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = 1usize << logn;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        perm.shuffle(&mut rng);
        let net = BenesNetwork::new(n);
        let routing = net.route(&perm).unwrap();
        let out = routing.apply(&(0..n).collect::<Vec<_>>());
        for (i, &o) in perm.iter().enumerate() {
            prop_assert_eq!(out[o], i);
        }
    }

    #[test]
    fn hmm_filtering_normalizes(states in 2usize..5, symbols in 2usize..5, seed in 0u64..100, len in 1usize..12) {
        let hmm = Hmm::random(states, symbols, seed);
        let obs: Vec<usize> = (0..len).map(|t| (t * 7 + seed as usize) % symbols).collect();
        for row in hmm.filter(&obs) {
            let total: f64 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_cube_and_conquer_agrees_with_sequential(cnf in arb_cnf(8, 20)) {
        // The conquer phase's worker knob changes the schedule, never the
        // verdict; the parallel answer selection is deterministic (see
        // CubeAndConquer::solve), so one parallel run fully represents
        // every parallel run.
        let config = CubeConfig { max_depth: 3, ..CubeConfig::default() };
        let seq = CubeAndConquer::new(&cnf, config.clone()).solve();
        let par =
            CubeAndConquer::new(&cnf, CubeConfig { workers: 3, ..config }).solve();
        prop_assert_eq!(seq.solution.is_sat(), par.solution.is_sat());
        if let reason::sat::Solution::Sat(model) = &par.solution {
            prop_assert!(cnf.eval(model));
        }
    }

    #[test]
    fn two_level_pipeline_bounds(costs in prop::collection::vec((0.01f64..2.0, 0.01f64..2.0), 1..20)) {
        let tasks: Vec<StageCost> =
            costs.iter().map(|&(n, s)| StageCost { neural_s: n, symbolic_s: s }).collect();
        let report = TwoLevelPipeline::new().schedule(&tasks);
        // Never worse than serial, never better than the dominant stage.
        prop_assert!(report.pipelined_s <= report.serial_s + 1e-9);
        let neural_total: f64 = tasks.iter().map(|t| t.neural_s).sum();
        let symbolic_total: f64 = tasks.iter().map(|t| t.symbolic_s).sum();
        prop_assert!(report.pipelined_s + 1e-9 >= neural_total.max(symbolic_total));
    }

    #[test]
    fn compiled_wmc_agrees_with_brute_weighted_count(cnf in arb_cnf(8, 16), seed in 0u64..10_000) {
        // Pins the oracle pair the approximate engine is validated
        // against: knowledge compilation (pc::compile) and exhaustive
        // weighted enumeration (sat::brute) must agree on every random
        // small CNF under shared-seed random weights.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let probs: Vec<f64> = (0..8).map(|_| rng.gen_range(0.05..0.95)).collect();
        let exact = reason::sat::weighted_count(&cnf, &probs);
        match compile_cnf(&cnf, &WmcWeights::new(probs)) {
            Some(circuit) => {
                let wmc = circuit.probability(&Evidence::empty(8));
                prop_assert!((wmc - exact).abs() < 1e-9, "compiled {} vs brute {}", wmc, exact);
            }
            None => prop_assert!(exact == 0.0, "UNSAT compile but brute mass {}", exact),
        }
    }

    #[test]
    fn topdown_compiler_matches_brute_up_to_16_vars(n in 4usize..=16, seed in 0u64..10_000) {
        // The component-caching compiler against exhaustive weighted
        // enumeration on random 3-CNF across the whole tractable range,
        // under shared-seed random weights — plus determinism: the same
        // input must compile to the bit-identical circuit every run.
        use rand::{Rng, SeedableRng};
        let m = 2 * n + (seed % 17) as usize;
        let cnf = reason::sat::gen::random_ksat(n, m, 3, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0117);
        let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..0.95)).collect();
        let exact = reason::sat::weighted_count(&cnf, &probs);
        let weights = WmcWeights::new(probs);
        let first = compile_cnf(&cnf, &weights);
        let second = compile_cnf(&cnf, &weights);
        prop_assert_eq!(&first, &second, "compilation must be deterministic across runs");
        match first {
            Some(circuit) => {
                let wmc = circuit.probability(&Evidence::empty(n));
                prop_assert!((wmc - exact).abs() < 1e-9, "compiled {} vs brute {}", wmc, exact);
                prop_assert!(circuit.is_syntactically_deterministic());
            }
            None => prop_assert!(exact == 0.0, "UNSAT compile but brute mass {}", exact),
        }
    }

    #[test]
    fn topdown_and_shannon_compile_the_same_distribution(cnf in arb_cnf(7, 14)) {
        // Old and new compiler must agree query-for-query, not only on
        // the root: every complete assignment gets the same likelihood.
        let weights = WmcWeights::new((0..7).map(|v| 0.25 + 0.07 * v as f64).collect());
        let new = compile_cnf(&cnf, &weights);
        let old = reason::pc::compile_cnf_shannon(&cnf, &weights);
        prop_assert_eq!(new.is_some(), old.is_some());
        if let (Some(new), Some(old)) = (new, old) {
            for bits in 0u32..128 {
                let assignment: Vec<usize> = (0..7).map(|v| (bits >> v & 1) as usize).collect();
                let a = new.log_likelihood(&assignment).exp();
                let b = old.log_likelihood(&assignment).exp();
                prop_assert!((a - b).abs() < 1e-12, "assignment {:07b}: {} vs {}", bits, a, b);
            }
        }
    }

    #[test]
    fn dnnf_arena_evaluation_equals_circuit_wmc(n in 4usize..=16, seed in 0u64..10_000) {
        // The serving layer's flat d-DNNF arena is a 1:1 flattening of
        // the compiled circuit: on random CNFs across the tractable
        // range, WMC, partial-evidence probabilities, marginals, and
        // MPE must agree bit-for-bit with circuit evaluation.
        use rand::{Rng, SeedableRng};
        let m = 2 * n + (seed % 13) as usize;
        let cnf = reason::sat::gen::random_ksat(n, m, 3, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD44F);
        let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..0.95)).collect();
        let Some(circuit) = compile_cnf(&cnf, &WmcWeights::new(probs)) else {
            return Ok(());
        };
        let arena = reason::pc::Dnnf::from_circuit(&circuit).expect("binary universe");
        let mut cbuf = reason::pc::EvalBuffer::new();
        let mut abuf = reason::pc::DnnfBuffer::new();
        // Full marginalization plus a random partial evidence pattern.
        let mut evidence = Evidence::empty(n);
        prop_assert_eq!(
            circuit.log_probability_with(&evidence, &mut cbuf).to_bits(),
            arena.log_probability(&evidence, &mut abuf).to_bits()
        );
        for v in 0..n {
            if rng.gen_bool(0.4) {
                evidence.set(v, usize::from(rng.gen_bool(0.5)));
            }
        }
        let c = circuit.log_probability_with(&evidence, &mut cbuf);
        let a = arena.log_probability(&evidence, &mut abuf);
        prop_assert!(c == a || (c.is_nan() && a.is_nan()), "circuit {} vs arena {}", c, a);
        let var = rng.gen_range(0..n);
        prop_assert_eq!(
            circuit.marginal_with(&evidence, var, &mut cbuf),
            arena.marginal(&evidence, var, &mut abuf)
        );
        let cm = circuit.mpe_with(&evidence, &mut cbuf);
        let am = arena.mpe(&evidence, &mut abuf);
        prop_assert_eq!(cm.assignment, am.assignment);
        prop_assert_eq!(cm.log_prob.to_bits(), am.log_prob.to_bits());
    }

    #[test]
    fn batched_arena_evaluation_equals_per_query_bit_for_bit(n in 4usize..=16, seed in 0u64..10_000) {
        // The structure-of-arrays batch evaluator is a data-layout
        // transformation, not a numerical one: every lane of a mixed
        // WMC/marginal/MPE batch — including duplicated queries, which
        // the packer collapses onto a shared storage lane — must
        // reproduce the single-query DnnfBuffer answer bit-for-bit.
        use rand::{Rng, SeedableRng};
        let m = 2 * n + (seed % 13) as usize;
        let cnf = reason::sat::gen::random_ksat(n, m, 3, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBA7C);
        let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..0.95)).collect();
        let Some(circuit) = compile_cnf(&cnf, &WmcWeights::new(probs)) else {
            return Ok(());
        };
        let arena = reason::pc::Dnnf::from_circuit(&circuit).expect("binary universe");
        let lanes = rng.gen_range(1..=9usize);
        let mut evidences: Vec<Evidence> = (0..lanes)
            .map(|_| {
                let mut ev = Evidence::empty(n);
                for v in 0..n {
                    if rng.gen_bool(0.3) {
                        ev.set(v, usize::from(rng.gen_bool(0.5)));
                    }
                }
                ev
            })
            .collect();
        // Force duplicate lanes so the dedup path is always exercised.
        if lanes >= 2 {
            let src = rng.gen_range(0..lanes - 1);
            evidences[lanes - 1] = evidences[src].clone();
        }
        let batch = reason::pc::DnnfBatch::pack(&evidences);
        prop_assert_eq!(batch.lanes(), lanes);
        let mut sbuf = reason::pc::DnnfBuffer::new();
        let mut bbuf = reason::pc::BatchBuffer::new();
        let logp = arena.log_probability_batch(&batch, &mut bbuf);
        let wmc = arena.wmc_batch(&batch, &mut bbuf);
        let var = rng.gen_range(0..n);
        let marg = arena.marginal_batch(&batch, var, &mut bbuf);
        let mpe = arena.mpe_batch(&batch, &mut bbuf);
        for (lane, ev) in evidences.iter().enumerate() {
            let lp = arena.log_probability(ev, &mut sbuf);
            prop_assert!(
                logp[lane].to_bits() == lp.to_bits()
                    || (logp[lane].is_nan() && lp.is_nan()),
                "lane {}: batched logp {} vs single {}", lane, logp[lane], lp
            );
            prop_assert_eq!(wmc[lane].to_bits(), lp.exp().to_bits());
            let sm = arena.marginal(ev, var, &mut sbuf);
            prop_assert_eq!(&marg[lane], &sm, "lane {} marginal", lane);
            let single = arena.mpe(ev, &mut sbuf);
            prop_assert_eq!(&mpe[lane].assignment, &single.assignment, "lane {} mpe", lane);
            prop_assert_eq!(mpe[lane].log_prob.to_bits(), single.log_prob.to_bits());
        }
    }

    #[test]
    fn circuit_store_roundtrip_preserves_answers_bit_for_bit(n in 4usize..=12, seed in 0u64..10_000) {
        // Insert → evict → recompile through a 1-entry serving store:
        // the recompiled artifact must reproduce the original answers
        // bit-for-bit (eviction costs latency, never correctness).
        use reason::serve::{Answer, QueryKind, ServeConfig, ServeEngine, StoreConfig};
        use rand::{Rng, SeedableRng};
        let m = 2 * n + (seed % 11) as usize;
        let cnf = reason::sat::gen::random_ksat(n, m, 3, seed);
        let weights = WmcWeights::uniform(n);
        if compile_cnf(&cnf, &weights).is_none() {
            return Ok(()); // massless KBs are rejected at registration
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x570E);
        let mut evict_seed = seed ^ 0xE71C7;
        let other = loop {
            let other = reason::sat::gen::random_ksat(6, 13, 3, evict_seed);
            if compile_cnf(&other, &WmcWeights::uniform(6)).is_some() {
                break other;
            }
            evict_seed += 1;
        };
        let mut engine = ServeEngine::new(ServeConfig {
            store: StoreConfig { max_entries: 1, max_bytes: usize::MAX, ..Default::default() },
            ..ServeConfig::default()
        });
        let kb = engine.register("kb", &cnf, weights);
        let mut evidence = Evidence::empty(n);
        evidence.set(rng.gen_range(0..n), usize::from(rng.gen_bool(0.5)));
        let kind = QueryKind::Posterior(evidence);
        let Answer::Exact(first) = engine.query(kb, &kind).unwrap() else { unreachable!() };
        // Fill the 1-entry store with another KB: the first artifact is
        // evicted and the next query recompiles it.
        let filler = engine.register("filler", &other, WmcWeights::uniform(6));
        engine.warm(filler).unwrap();
        prop_assert!(engine.store_stats().evictions >= 1);
        // Stale the live oracle too (add + retract restores the same
        // fingerprint at a new revision), so the next query is a
        // genuine recompile, not a rebuild from the cached circuit.
        engine.add_clause(kb, &[1]);
        engine.retract_clause(kb, engine.kb(kb).num_clauses() - 1);
        let Answer::Exact(again) = engine.query(kb, &kind).unwrap() else { unreachable!() };
        prop_assert_eq!(first.to_bits(), again.to_bits(),
            "evict + recompile changed an answer: {} vs {}", first, again);
    }

    #[test]
    fn approx_brackets_are_well_formed_and_track_brute_truth(cnf in arb_cnf(8, 14), seed in 0u64..1000) {
        // Small-budget Monte-Carlo WMC: the anytime bracket must be
        // well-formed at every checkpoint, and the enumerated truth must
        // sit within the 4σ envelope plus a small absolute slack. (The
        // envelope itself is a confidence interval — a *strict*
        // containment assertion over many thousands of property cases
        // would flake on the expected tail; the slack turns the check
        // into a ~6σ event, negligible at any case count.)
        let est = reason::approx::mc_wmc(
            &cnf,
            &WmcWeights::uniform(8),
            &reason::approx::SampleConfig { samples: 2048, checkpoint: 512, seed },
        );
        prop_assert!(est.lower <= est.estimate && est.estimate <= est.upper);
        for p in est.trace.points() {
            prop_assert!(p.lower <= p.estimate && p.estimate <= p.upper);
            prop_assert!((0.0..=1.0).contains(&p.lower) && (0.0..=1.0).contains(&p.upper));
        }
        let exact = reason::sat::weighted_count(&cnf, &[0.5; 8]);
        prop_assert!(
            exact >= est.lower - 0.02 && exact <= est.upper + 0.02,
            "[{}, {}] (+-0.02) misses brute truth {}", est.lower, est.upper, exact
        );
    }

    #[test]
    fn consistent_ring_remaps_only_the_new_shards_arcs(shards in 1usize..8, seed in 0u64..10_000) {
        // The cluster front-end's placement contract: routing is a pure
        // function of (key, ring parameters) — two rings built from the
        // same parameters agree on every key — and growing the ring by
        // one shard only remaps the keys whose arcs the new shard's
        // virtual points capture (about 1/(N+1) of them), each landing
        // on the new shard. Shrinking is the same statement read
        // backwards: removing shard N only disturbs keys that lived on
        // shard N, so the "movers land on the new shard" assertion
        // covers both directions.
        use rand::{Rng, SeedableRng};
        use reason::serve::{FormulaFingerprint, HashRing};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-2, 3]]);
        let keys: Vec<FormulaFingerprint> = (0..128)
            .map(|_| {
                let probs: Vec<f64> = (0..3).map(|_| rng.gen_range(0.05..0.95)).collect();
                FormulaFingerprint::from_parts(3, cnf.clauses(), &WmcWeights::new(probs))
            })
            .collect();
        let ring = HashRing::new(shards, 32, seed);
        let again = HashRing::new(shards, 32, seed);
        let grown = HashRing::new(shards + 1, 32, seed);
        let mut moved = 0usize;
        for fp in &keys {
            let before = ring.shard_for(fp);
            prop_assert!(before < shards);
            prop_assert_eq!(before, again.shard_for(fp), "routing must be deterministic");
            let after = grown.shard_for(fp);
            if after != before {
                moved += 1;
                prop_assert_eq!(after, shards, "a remapped key may only land on the new shard");
            }
        }
        // The expected remap fraction is 1/(shards+1). Allow twice that
        // plus an absolute slack for the arc-length variance of 32
        // virtual points per shard — many standard deviations above the
        // mean, so the bound never flakes, while any return to modulo
        // placement (which remaps ~half of all keys) still fails it.
        let bound = 2 * keys.len() / (shards + 1) + keys.len() / 8;
        prop_assert!(
            moved <= bound,
            "adding a shard moved {}/{} keys (bound {})", moved, keys.len(), bound
        );
    }

    #[test]
    fn cluster_admission_degrades_soundly_and_loses_no_query(cnf in arb_cnf(8, 14), seed in 0u64..1000) {
        // Pre-dispatch admission may degrade or reject, never lie or
        // lose: every submitted query gets exactly one outcome (rejects
        // included, answerless and flagged), exact answers are
        // bit-identical to an unsharded engine's, and a degraded
        // query's bracket must contain the compiled-oracle truth up to
        // the same statistical slack the approx property above pins.
        use std::time::Duration;
        use reason::pc::CompiledWmc;
        use reason::serve::{
            Admission, Answer, ClusterConfig, Query, QueryKind, Route, ServeCluster, ServeConfig,
            ServeEngine,
        };
        let weights = WmcWeights::uniform(8);
        let oracle = CompiledWmc::new(&cnf, &weights);
        if !oracle.has_mass() {
            return Ok(()); // massless KBs are rejected at registration
        }
        let exact = oracle.wmc();
        let mut config = ClusterConfig::with_shards(2);
        config.engine = ServeConfig { approx_seed: seed, ..ServeConfig::default() };
        let mut cluster = ServeCluster::new(config);
        let kb = cluster.register("kb", &cnf, weights.clone());
        // All four arrive at t = 0 on a cold shard, so the modeled
        // queue fills deterministically: the first deadline is too
        // tight for a cold compile (degrade), the unbounded queries
        // stay exact (the second one warm), and by the last arrival the
        // backlog alone exceeds a 1 µs deadline (reject).
        let queries = [
            Query::with_deadline(QueryKind::Wmc, Duration::from_micros(100)),
            Query::exact(QueryKind::Wmc),
            Query::with_deadline(QueryKind::Wmc, Duration::from_micros(1)),
            Query::exact(QueryKind::Wmc),
        ];
        let arrivals: Vec<_> = queries.iter().map(|q| (kb, q.clone(), 0.0)).collect();
        let report = cluster.serve_at(&arrivals).unwrap();
        prop_assert_eq!(report.outcomes.len(), queries.len(), "no query may vanish");
        let s = report.stats;
        prop_assert_eq!(
            s.exact + s.approx + s.predicted + s.rejected,
            queries.len() as u64,
            "admission counters must account for every query"
        );
        prop_assert_eq!((s.exact, s.approx, s.rejected), (2, 1, 1));
        // The degraded query: an anytime bracket containing the truth.
        let degraded =
            matches!(report.outcomes[0].decision, Admission::Admit(Route::Approx { .. }));
        prop_assert!(degraded, "tight-deadline cold query must degrade to bounds");
        let Some(Answer::Bounds { estimate, lower, upper }) = report.outcomes[0].answer.clone()
        else {
            panic!("degraded query must answer with bounds");
        };
        prop_assert!(lower <= estimate && estimate <= upper);
        prop_assert!(
            exact >= lower - 0.02 && exact <= upper + 0.02,
            "[{}, {}] (+-0.02) misses the compiled oracle {}", lower, upper, exact
        );
        // The reject: flagged, answerless, but still reported.
        let rejected = matches!(report.outcomes[2].decision, Admission::Reject { .. });
        prop_assert!(rejected, "backlogged 1 microsecond deadline must reject");
        prop_assert!(report.outcomes[2].answer.is_none());
        prop_assert!(report.outcomes[2].deadline_miss);
        // The exact admissions: bit-identical to an unsharded engine.
        let mut single = ServeEngine::new(ServeConfig::default());
        let skb = single.register("kb", &cnf, weights);
        let reference = single
            .serve(skb, &[Query::exact(QueryKind::Wmc), Query::exact(QueryKind::Wmc)])
            .unwrap();
        for (cluster_i, single_i) in [(1usize, 0usize), (3, 1)] {
            let (Some(Answer::Exact(a)), Answer::Exact(b)) =
                (&report.outcomes[cluster_i].answer, &reference.outcomes[single_i].answer)
            else {
                panic!("exact admission must answer exactly");
            };
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "sharded exact answer {} differs from unsharded {}", a, b
            );
        }
    }

    #[test]
    fn removing_a_shard_remaps_only_its_own_keys(shards in 2usize..8, dead in 0usize..8, seed in 0u64..10_000) {
        // Failover's routing contract, the shrink direction of the
        // grow property above: dropping a dead shard from the ring
        // only remaps the keys that lived on it — surviving shards
        // never trade keys among themselves, so a failover storm
        // cannot cascade recompiles across healthy shards.
        use rand::{Rng, SeedableRng};
        use reason::serve::{FormulaFingerprint, HashRing};
        let dead = dead % shards;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cnf = Cnf::from_clauses(3, vec![vec![1, 2], vec![-2, 3]]);
        let ring = HashRing::new(shards, 32, seed);
        let shrunk = ring.remove_shard(dead);
        for _ in 0..128 {
            let probs: Vec<f64> = (0..3).map(|_| rng.gen_range(0.05..0.95)).collect();
            let fp = FormulaFingerprint::from_parts(3, cnf.clauses(), &WmcWeights::new(probs));
            let before = ring.shard_for(&fp);
            let after = shrunk.shard_for(&fp);
            prop_assert!(after != dead, "removed shard {} still owns a key", dead);
            if before != dead {
                prop_assert_eq!(
                    after, before,
                    "removing shard {} moved a key from surviving shard {}", dead, before
                );
            }
        }
    }

    #[test]
    fn faulted_cluster_loses_no_query_and_exact_answers_match_oracle(cnf in arb_cnf(8, 14), seed in 0u64..500) {
        // The fault layer's availability contract: under ANY seeded
        // fault plan (crashes, slow shards, compile faults, cache
        // wipes) the cluster loses no query — every submission gets
        // exactly one outcome, every admitted query an answer — and
        // every exact answer that was not degraded by a fault is
        // bit-identical to an unsharded engine's, whether it was
        // served on the home shard, retried, or recompiled on a
        // failover shard. (The breaker's closed → open → half-open →
        // closed walk is pinned separately in `reason_serve::fault`.)
        use std::time::Duration;
        use reason::pc::CompiledWmc;
        use reason::serve::{
            Admission, Answer, ClusterConfig, FaultConfig, FaultPlan, Query, QueryKind, Route,
            ServeCluster, ServeConfig, ServeEngine,
        };
        let weights = WmcWeights::uniform(8);
        if !CompiledWmc::new(&cnf, &weights).has_mass() {
            return Ok(()); // massless KBs are rejected at registration
        }
        let shards = 2 + (seed as usize) % 3;
        let mut config = ClusterConfig::with_shards(shards);
        config.engine = ServeConfig { approx_seed: seed, ..ServeConfig::default() };
        let mut cluster = ServeCluster::new(config);
        let kb = cluster.register("kb", &cnf, weights.clone());
        // A fault plan over the whole workload horizon, seeded from the
        // case seed: any mix of crashes, slowdowns, compile faults and
        // cache wipes the generator can produce.
        cluster.install_fault_domain(FaultPlan::seeded(seed, shards, 8.0), FaultConfig::default());
        let arrivals: Vec<_> = (0..8)
            .map(|i| {
                let q = match i % 3 {
                    0 => Query::exact(QueryKind::Wmc),
                    1 => Query::with_deadline(QueryKind::Wmc, Duration::from_micros(200)),
                    _ => Query::with_deadline(QueryKind::Wmc, Duration::from_millis(10)),
                };
                (kb, q, i as f64)
            })
            .collect();
        let report = cluster.serve_at(&arrivals).unwrap();
        prop_assert_eq!(report.outcomes.len(), arrivals.len(), "no query may vanish");

        let mut single = ServeEngine::new(ServeConfig::default());
        let skb = single.register("kb", &cnf, weights);
        let reference = single.serve(skb, &[Query::exact(QueryKind::Wmc)]).unwrap();
        let Answer::Exact(truth) = reference.outcomes[0].answer else {
            panic!("deadline-free query is exact");
        };
        for outcome in &report.outcomes {
            match outcome.decision {
                Admission::Reject { .. } => {
                    prop_assert!(outcome.answer.is_none());
                    prop_assert!(outcome.deadline_miss, "rejects must be flagged");
                }
                Admission::Admit(route) => {
                    prop_assert!(
                        outcome.answer.is_some(),
                        "admitted query lost under faults: {:?}", outcome
                    );
                    if matches!(route, Route::Exact) && !outcome.degraded_by_fault {
                        let Some(Answer::Exact(z)) = outcome.answer else {
                            panic!("exact admission must answer exactly: {outcome:?}");
                        };
                        prop_assert_eq!(
                            z.to_bits(), truth.to_bits(),
                            "exact answer {} differs from oracle {} (failover={})",
                            z, truth, outcome.failover
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn histogram_merge_matches_single_tally(
        shards in prop::collection::vec(
            prop::collection::vec(-1_000i32..1_000_000, 0..30),
            1..5,
        )
    ) {
        // Cross-shard aggregation contract: per-shard histograms merged
        // into a collector must be indistinguishable from tallying every
        // sample into one histogram — buckets, counts, and (for
        // integer-valued samples, whose f64 sums are exact in any
        // order) the running sum, bit for bit.
        use reason::telemetry::Histogram;
        let merged = Histogram::default();
        let single = Histogram::default();
        for shard in &shards {
            let local = Histogram::default();
            for &v in shard {
                local.record(f64::from(v));
                single.record(f64::from(v));
            }
            merged.merge(&local);
        }
        let (a, b) = (merged.snapshot(), single.snapshot());
        prop_assert_eq!(&a.buckets, &b.buckets);
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(a.nan, b.nan);
        prop_assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "sum {} vs {}", a.sum, b.sum);
    }

    #[test]
    fn stage_breakdown_partitions_modeled_latency_exactly(
        cnf in arb_cnf(8, 14), seed in 0u64..500, faulted in any::<bool>()
    ) {
        // The attribution contract behind `reason-eval trace`:
        // queue_s + compile_s + exec_s IS the modeled latency — not
        // within a tolerance, but bit for bit — for every outcome,
        // with or without an active fault plan (failover recompiles
        // and retry backoff must flow into the same partition).
        use std::time::Duration;
        use reason::pc::CompiledWmc;
        use reason::serve::{
            ClusterConfig, FaultConfig, FaultPlan, Query, QueryKind, ServeCluster, ServeConfig,
        };
        let weights = WmcWeights::uniform(8);
        if !CompiledWmc::new(&cnf, &weights).has_mass() {
            return Ok(()); // massless KBs are rejected at registration
        }
        let shards = 2 + (seed as usize) % 3;
        let mut config = ClusterConfig::with_shards(shards);
        config.engine = ServeConfig { approx_seed: seed, ..ServeConfig::default() };
        let mut cluster = ServeCluster::new(config);
        let kb = cluster.register("kb", &cnf, weights);
        if faulted {
            cluster.install_fault_domain(
                FaultPlan::seeded(seed, shards, 8.0),
                FaultConfig::default(),
            );
        }
        let arrivals: Vec<_> = (0..8)
            .map(|i| {
                let q = match i % 3 {
                    0 => Query::exact(QueryKind::Wmc),
                    1 => Query::with_deadline(QueryKind::Wmc, Duration::from_micros(200)),
                    _ => Query::with_deadline(QueryKind::Wmc, Duration::from_millis(10)),
                };
                (kb, q, i as f64)
            })
            .collect();
        let report = cluster.serve_at(&arrivals).unwrap();
        prop_assert_eq!(report.outcomes.len(), arrivals.len());
        for outcome in &report.outcomes {
            prop_assert_eq!(
                outcome.stage.total().to_bits(),
                outcome.modeled_latency_s.to_bits(),
                "stage partition must be exact (faulted={}): {:?}", faulted, outcome
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Seed-pinned regressions.
//
// The randomized properties above report a replay seed on failure; any
// such failure gets pinned here as a concrete deterministic case so it
// can never silently regress. The cases below additionally pin the
// boundary shapes the random generator reaches only rarely (unit
// clauses, duplicate/contradictory literals, single-variable formulas,
// the smallest Benes network, length-1 HMM filtering).
// ---------------------------------------------------------------------------

/// Every engine and the full DAG→VLIW stack on a fixed contradictory
/// formula: (x1) ∧ (¬x1) plus satisfiable padding.
#[test]
fn pinned_contradiction_is_unsat_through_preprocessing() {
    let cnf = Cnf::from_clauses(3, vec![vec![1], vec![-1], vec![2, 3], vec![-2, 3]]);
    assert!(!brute_force(&cnf).is_sat());
    let result = Preprocessor::new().run(&cnf);
    let got = match result.decided {
        Some(d) => d,
        None => CdclSolver::new(&result.cnf).solve().is_sat(),
    };
    assert!(!got, "preprocessing must preserve UNSAT");
}

/// Duplicate and tautological literals in one clause must not confuse
/// DAG lowering: (x1 ∨ x1 ∨ ¬x1) is a tautology, the formula reduces to
/// the remaining clauses.
#[test]
fn pinned_tautological_clause_lowering_matches_eval() {
    let cnf = Cnf::from_clauses(3, vec![vec![1, 1, -1], vec![2, -3]]);
    let (dag, _) = dag_from_cnf(&cnf);
    let reg = regularize(&dag);
    for bits in 0u32..8 {
        let model: Vec<bool> = (0..3).map(|v| bits >> v & 1 == 1).collect();
        let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
        let expect = f64::from(u8::from(cnf.eval(&model)));
        assert_eq!(dag.evaluate_output(&inputs), expect, "model {bits:03b}");
        assert_eq!(reg.evaluate_output(&inputs), expect, "regularized, model {bits:03b}");
    }
}

/// The single-variable formula (x1) through compilation and execution:
/// the smallest kernel the compiler must handle.
#[test]
fn pinned_single_variable_kernel_executes() {
    let cnf = Cnf::from_clauses(1, vec![vec![1]]);
    let (dag, _) = dag_from_cnf(&cnf);
    let dag = regularize(&dag);
    let config = ArchConfig::paper();
    let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
    let exec = VliwExecutor::new(config);
    assert_eq!(exec.execute(&kernel.program(&[1.0])).output, 1.0);
    assert_eq!(exec.execute(&kernel.program(&[0.0])).output, 0.0);
}

/// The 2×2 Benes network must route both permutations.
#[test]
fn pinned_smallest_benes_routes_identity_and_swap() {
    let net = BenesNetwork::new(2);
    for perm in [vec![0usize, 1], vec![1usize, 0]] {
        let routing = net.route(&perm).unwrap();
        let out = routing.apply(&[0usize, 1]);
        for (i, &o) in perm.iter().enumerate() {
            assert_eq!(out[o], i, "perm {perm:?}");
        }
    }
}

/// WMC on a fixed formula with known exact weighted count:
/// (x1 ∨ x2) with p = 0.5 each ⇒ probability 0.75.
#[test]
fn pinned_wmc_matches_hand_computed_probability() {
    let cnf = Cnf::from_clauses(2, vec![vec![1, 2]]);
    let weights = WmcWeights::new(vec![0.5; 2]);
    let circuit = compile_cnf(&cnf, &weights).expect("tiny formula compiles");
    let pr = circuit.probability(&Evidence::empty(2));
    assert!((pr - 0.75).abs() < 1e-12, "got {pr}");
    circuit.validate().unwrap();
}

/// Length-1 observation sequences exercise the filter's base case.
#[test]
fn pinned_hmm_filter_normalizes_on_single_observation() {
    let hmm = Hmm::random(3, 4, 2024);
    for symbol in 0..4 {
        let rows = hmm.filter(&[symbol]);
        assert_eq!(rows.len(), 1);
        let total: f64 = rows[0].iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "symbol {symbol}: total {total}");
    }
}
