//! Property-based tests (proptest) on the workspace's core invariants.
//!
//! Randomized structures exercise the algebraic properties the REASON
//! stack depends on: satisfiability preservation under preprocessing,
//! semantic preservation under DAG lowering/regularization/compilation,
//! probabilistic normalization, Benes routability, and pipeline-schedule
//! sanity.

use proptest::prelude::*;

use reason::arch::{ArchConfig, BenesNetwork, VliwExecutor};
use reason::compiler::ReasonCompiler;
use reason::core::{dag_from_cnf, regularize};
use reason::hmm::Hmm;
use reason::pc::{compile_cnf, Evidence, WmcWeights};
use reason::sat::{brute_force, CdclSolver, Cnf, Preprocessor};
use reason::system::{StageCost, TwoLevelPipeline};

/// A random small CNF as DIMACS-style clause lists.
fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let var = 1..=max_vars as i32;
    let lit = (var, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v });
    let clause = prop::collection::vec(lit, 1..=3);
    prop::collection::vec(clause, 1..=max_clauses)
        .prop_map(move |clauses| Cnf::from_clauses(max_vars, clauses))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn preprocessing_preserves_satisfiability(cnf in arb_cnf(8, 20)) {
        let expect = brute_force(&cnf).is_sat();
        let result = Preprocessor::new().run(&cnf);
        let got = match result.decided {
            Some(d) => d,
            None => CdclSolver::new(&result.cnf).solve().is_sat(),
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn preprocessing_models_reconstruct(cnf in arb_cnf(8, 16)) {
        let result = Preprocessor::new().run(&cnf);
        let reduced_model = match result.decided {
            Some(false) => return Ok(()),
            Some(true) => vec![false; cnf.num_vars()],
            None => match CdclSolver::new(&result.cnf).solve() {
                reason::sat::Solution::Sat(m) => m,
                reason::sat::Solution::Unsat => return Ok(()),
            },
        };
        let model = result.reconstruct_model(&reduced_model);
        prop_assert!(cnf.eval(&model));
    }

    #[test]
    fn dag_lowering_matches_cnf_semantics(cnf in arb_cnf(7, 14), bits in 0u32..128) {
        let (dag, _) = dag_from_cnf(&cnf);
        let reg = regularize(&dag);
        let model: Vec<bool> = (0..7).map(|v| bits >> v & 1 == 1).collect();
        let inputs: Vec<f64> = model.iter().map(|&b| f64::from(b)).collect();
        let expect = f64::from(u8::from(cnf.eval(&model)));
        prop_assert_eq!(dag.evaluate_output(&inputs), expect);
        prop_assert_eq!(reg.evaluate_output(&inputs), expect);
        prop_assert!(reg.max_fan_in() <= 2);
    }

    #[test]
    fn compiled_kernels_match_dag_evaluation(cnf in arb_cnf(6, 12), bits in 0u32..64) {
        let (dag, _) = dag_from_cnf(&cnf);
        let dag = regularize(&dag);
        let config = ArchConfig::paper();
        let kernel = ReasonCompiler::new(config).compile(&dag).unwrap();
        let inputs: Vec<f64> = (0..6).map(|v| f64::from(bits >> v & 1)).collect();
        let report = VliwExecutor::new(config).execute(&kernel.program(&inputs));
        prop_assert_eq!(report.output, dag.evaluate_output(&inputs));
    }

    #[test]
    fn wmc_circuits_are_probabilities(cnf in arb_cnf(6, 10), p in 0.05f64..0.95) {
        let weights = WmcWeights::new(vec![p; 6]);
        if let Some(circuit) = compile_cnf(&cnf, &weights) {
            let pr = circuit.probability(&Evidence::empty(6));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pr));
            circuit.validate().unwrap();
        }
    }

    #[test]
    fn benes_routes_every_permutation(seed in 0u64..500, logn in 1u32..6) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = 1usize << logn;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        perm.shuffle(&mut rng);
        let net = BenesNetwork::new(n);
        let routing = net.route(&perm).unwrap();
        let out = routing.apply(&(0..n).collect::<Vec<_>>());
        for (i, &o) in perm.iter().enumerate() {
            prop_assert_eq!(out[o], i);
        }
    }

    #[test]
    fn hmm_filtering_normalizes(states in 2usize..5, symbols in 2usize..5, seed in 0u64..100, len in 1usize..12) {
        let hmm = Hmm::random(states, symbols, seed);
        let obs: Vec<usize> = (0..len).map(|t| (t * 7 + seed as usize) % symbols).collect();
        for row in hmm.filter(&obs) {
            let total: f64 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn two_level_pipeline_bounds(costs in prop::collection::vec((0.01f64..2.0, 0.01f64..2.0), 1..20)) {
        let tasks: Vec<StageCost> =
            costs.iter().map(|&(n, s)| StageCost { neural_s: n, symbolic_s: s }).collect();
        let report = TwoLevelPipeline::new().schedule(&tasks);
        // Never worse than serial, never better than the dominant stage.
        prop_assert!(report.pipelined_s <= report.serial_s + 1e-9);
        let neural_total: f64 = tasks.iter().map(|t| t.neural_s).sum();
        let symbolic_total: f64 = tasks.iter().map(|t| t.symbolic_s).sum();
        prop_assert!(report.pipelined_s + 1e-9 >= neural_total.max(symbolic_total));
    }
}
