//! Circuit-size regression guard for the knowledge compiler.
//!
//! The top-down component-caching compiler's acceptance bar (PR 4) has
//! two halves, both pinned here on fixed seeds:
//!
//! 1. **never larger than the legacy baseline** — on structured rule
//!    sets and fixed random instances, the new compiler's node count
//!    must not exceed the static-order Shannon expansion's;
//! 2. **absolute budgets** — compilation is deterministic, so the node
//!    counts measured when this guard was written are hard ceilings;
//!    any future compiler change that inflates a circuit past them
//!    fails CI instead of silently regressing.
//!
//! Budgets are the exact counts measured at pin time — a change that
//! *shrinks* circuits keeps passing (and should then re-pin), a change
//! that grows any of them must justify itself.

use reason::pc::{compile_cnf, compile_cnf_shannon, WmcWeights};
use reason::sat::gen::{graph_coloring, random_ksat};
use reason::sat::Cnf;

/// An implication chain `x1 → x2 → … → xn`.
fn chain_cnf(num_vars: usize) -> Cnf {
    Cnf::from_clauses(num_vars, (1..num_vars as i32).map(|i| vec![-i, i + 1]).collect())
}

#[test]
fn structured_chains_stay_under_budget_and_below_shannon() {
    // (instance, pinned node budget for the top-down compiler)
    for (n, budget) in [(12usize, 61usize), (64, 347)] {
        let cnf = chain_cnf(n);
        let w = WmcWeights::uniform(n);
        let new = compile_cnf(&cnf, &w).expect("chains are satisfiable");
        let old = compile_cnf_shannon(&cnf, &w).expect("chains are satisfiable");
        assert!(
            new.num_nodes() <= old.num_nodes(),
            "chain n={n}: top-down {} nodes exceeds shannon {}",
            new.num_nodes(),
            old.num_nodes()
        );
        assert!(
            new.num_nodes() <= budget,
            "chain n={n}: {} nodes exceeds pinned budget {budget}",
            new.num_nodes()
        );
    }
}

#[test]
fn fixed_random_seeds_never_exceed_shannon() {
    // Random 3-SAT across fixed seeds: old/new must agree on
    // satisfiability and the new compiler must never emit more nodes.
    for seed in [1u64, 5, 9] {
        for n in [10usize, 12, 14] {
            let cnf = random_ksat(n, 2 * n + 6, 3, seed);
            let w = WmcWeights::uniform(n);
            match (compile_cnf(&cnf, &w), compile_cnf_shannon(&cnf, &w)) {
                (Some(new), Some(old)) => assert!(
                    new.num_nodes() <= old.num_nodes(),
                    "n={n} seed={seed}: top-down {} nodes vs shannon {}",
                    new.num_nodes(),
                    old.num_nodes()
                ),
                (None, None) => {}
                (new, old) => panic!(
                    "n={n} seed={seed}: satisfiability disagreement \
                     (topdown {:?} vs shannon {:?})",
                    new.map(|c| c.num_nodes()),
                    old.map(|c| c.num_nodes())
                ),
            }
        }
    }
}

#[test]
fn pinned_random_instances_stay_under_budget() {
    // (n, m, seed, pinned top-down node budget) — measured at pin time;
    // compilation is deterministic, so these are exact today.
    for (n, m, seed, budget) in
        [(10usize, 26usize, 1u64, 60usize), (12, 30, 5, 143), (14, 34, 9, 124)]
    {
        let cnf = random_ksat(n, m, 3, seed);
        let new = compile_cnf(&cnf, &WmcWeights::uniform(n)).expect("pinned seeds are SAT");
        assert!(
            new.num_nodes() <= budget,
            "n={n} seed={seed}: {} nodes exceeds pinned budget {budget}",
            new.num_nodes()
        );
    }
}

#[test]
fn structured_coloring_instances_stay_under_budget() {
    // Graph-coloring encodings at n = 54 and n = 72 variables — the
    // structured n ≥ 60 scale the legacy compiler never reached. Only
    // the top-down compiler runs here; budgets pin its output size.
    for (nodes, edges, seed, budget) in [(18usize, 27usize, 1u64, 809usize), (24, 36, 42, 1092)] {
        let cnf = graph_coloring(nodes, edges, 3, seed);
        let w = WmcWeights::uniform(cnf.num_vars());
        let new = compile_cnf(&cnf, &w).expect("pinned colorings are satisfiable");
        assert!(
            new.num_nodes() <= budget,
            "coloring {nodes}x{edges} seed={seed}: {} nodes exceeds pinned budget {budget}",
            new.num_nodes()
        );
    }
}
